//! Reproduce one cell of the §IV-A validation: run a technique over the
//! dummynet rig, capture the trace, and check every verdict against
//! ground truth — the workflow the authors used to establish 99.99%
//! sample accuracy.
//!
//! ```sh
//! cargo run --example validate_rig -- [fwd%] [rev%] [samples]
//! ```

use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::validate::validate_run;
use reorder_core::{technique, Session, TestKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let fwd: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0) / 100.0;
    let rev: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5.0) / 100.0;
    let samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    println!(
        "rig: dummynet swap fwd {:.1}% rev {:.1}%, {} samples per test",
        fwd * 100.0,
        rev * 100.0,
        samples
    );
    println!();
    println!(
        "{:<20} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "test", "fwd-chk", "fwd-acc", "fwd-err", "rev-chk", "rev-acc", "rev-err"
    );
    println!("{}", "-".repeat(84));

    for (which, kind) in [
        TestKind::SingleConnectionReversed,
        TestKind::DualConnection,
        TestKind::Syn,
    ]
    .into_iter()
    .enumerate()
    {
        let name = kind.label();
        let mut sc = scenario::validation_rig(fwd, rev, 0xCAFE + which as u64);
        let cfg = TestConfig::samples(samples);
        let run = {
            let mut session = Session::new(&mut sc.prober, sc.target, 80);
            technique(kind, cfg).execute(&mut session)
        }
        .expect("measurement");
        let rep = validate_run(
            &run,
            &sc.merged_server_rx(),
            &sc.merged_server_tx(),
            &sc.prober_trace(),
        );
        println!(
            "{:<20} {:>8} {:>7.2}% {:>+8} | {:>8} {:>7.2}% {:>+8}",
            name,
            rep.fwd.checked,
            rep.fwd.accuracy() * 100.0,
            rep.fwd.count_error(),
            rep.rev.checked,
            rep.rev.accuracy() * 100.0,
            rep.rev.count_error(),
        );
        if !rep.fwd.disagreements.is_empty() || !rep.rev.disagreements.is_empty() {
            println!(
                "    disagreeing samples: fwd {:?} rev {:?}",
                rep.fwd.disagreements, rep.rev.disagreements
            );
        }
    }
    println!();
    println!("'chk' = determinate samples cross-checked against the capture trace;");
    println!("'err' = (reorder events reported) - (reorder events in the trace).");
}
