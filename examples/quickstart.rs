//! Quickstart: measure one-way reordering on a controlled path.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the §IV-A rig (probe — modified dummynet — FreeBSD-style web
//! server) with a 10% forward / 3% reverse adjacent-swap probability,
//! runs all four techniques, and prints per-direction estimates with
//! 95% Wilson intervals.

use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::techniques::{
    DataTransferTest, DualConnectionTest, SingleConnectionTest, SynTest,
};
use reorder_core::MeasurementRun;

fn report(name: &str, run: &MeasurementRun) {
    let fwd = run.fwd_estimate();
    let rev = run.rev_estimate();
    let (flo, fhi) = fwd.wilson_ci(1.96);
    let (rlo, rhi) = rev.wilson_ci(1.96);
    println!(
        "{name:<22} fwd {:>5.1}% [{:>4.1}%, {:>5.1}%] ({}/{})   rev {:>5.1}% [{:>4.1}%, {:>5.1}%] ({}/{})",
        fwd.rate() * 100.0,
        flo * 100.0,
        fhi * 100.0,
        fwd.reordered,
        fwd.total,
        rev.rate() * 100.0,
        rlo * 100.0,
        rhi * 100.0,
        rev.reordered,
        rev.total,
    );
}

fn main() {
    let (fwd_swap, rev_swap, seed) = (0.10, 0.03, 2002);
    println!(
        "path under test: dummynet adjacent-swap {:.1}% fwd / {:.1}% rev (seed {seed})",
        fwd_swap * 100.0,
        rev_swap * 100.0
    );
    println!();

    let cfg = TestConfig::samples(200);

    let mut sc = scenario::validation_rig(fwd_swap, rev_swap, seed);
    let run = SingleConnectionTest::reversed(cfg)
        .run(&mut sc.prober, sc.target, 80)
        .expect("single connection test");
    report("single connection", &run);

    let mut sc = scenario::validation_rig(fwd_swap, rev_swap, seed + 1);
    let run = DualConnectionTest::new(cfg)
        .run(&mut sc.prober, sc.target, 80)
        .expect("dual connection test");
    report("dual connection", &run);

    let mut sc = scenario::validation_rig(fwd_swap, rev_swap, seed + 2);
    let run = SynTest::new(cfg)
        .run(&mut sc.prober, sc.target, 80)
        .expect("syn test");
    report("syn", &run);

    let mut sc = scenario::validation_rig(fwd_swap, rev_swap, seed + 3);
    let run = DataTransferTest::new(TestConfig::default())
        .run(&mut sc.prober, sc.target, 80)
        .expect("data transfer test");
    report("data transfer", &run);

    println!();
    println!("note: the transfer test sees only the reverse path, and the single");
    println!("connection test shown here is the reversed (delayed-ACK-proof) variant.");
}
