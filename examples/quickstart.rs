//! Quickstart: measure one-way reordering on a controlled path.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the §IV-A rig (probe — modified dummynet — FreeBSD-style web
//! server) with a 10% forward / 3% reverse adjacent-swap probability,
//! iterates the technique registry — every test behind the one
//! `Technique` trait — and prints per-direction estimates with 95%
//! Wilson intervals from the unified `Measurement` report.

use reorder::core::{Measurement, Measurer, Session, TestConfig, TestKind};
use reorder_core::scenario;

fn report(m: &Measurement) {
    let (flo, fhi) = m.fwd.wilson_ci(1.96);
    let (rlo, rhi) = m.rev.wilson_ci(1.96);
    println!(
        "{:<22} fwd {:>5.1}% [{:>4.1}%, {:>5.1}%] ({}/{})   rev {:>5.1}% [{:>4.1}%, {:>5.1}%] ({}/{})",
        m.kind.to_string(),
        m.fwd.rate() * 100.0,
        flo * 100.0,
        fhi * 100.0,
        m.fwd.reordered,
        m.fwd.total,
        m.rev.rate() * 100.0,
        rlo * 100.0,
        rhi * 100.0,
        m.rev.reordered,
        m.rev.total,
    );
}

fn main() {
    let (fwd_swap, rev_swap, seed) = (0.10, 0.03, 2002);
    println!(
        "path under test: dummynet adjacent-swap {:.1}% fwd / {:.1}% rev (seed {seed})",
        fwd_swap * 100.0,
        rev_swap * 100.0
    );
    println!();

    // Every registry entry, on its own realization of the same path.
    for (i, kind) in TestKind::all().into_iter().enumerate() {
        let cfg = if kind == TestKind::DataTransfer {
            TestConfig::default() // object size sets the sample count
        } else {
            TestConfig::samples(200)
        };
        let mut sc = scenario::validation_rig(fwd_swap, rev_swap, seed + i as u64);
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        let m = Measurer::new(kind)
            .with_config(cfg)
            .run(&mut session)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        report(&m);
    }

    println!();
    println!("note: the transfer test sees only the reverse path; the in-order");
    println!("`single` variant is delayed-ACK-blind in the reverse direction, which");
    println!("is exactly why the registry also carries `single-rev`.");
}
