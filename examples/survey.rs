//! Survey a population of simulated Internet hosts, the way §IV-B
//! surveyed 50 real ones — now through the `reorder-survey` campaign
//! engine: the population generator draws the hosts, a work-stealing
//! pool fans them out across cores, the pipeline IPID-validates each
//! host and picks the right technique (dual where amenable, SYN
//! fallback, transfer baseline), and the streaming aggregator renders
//! the campaign summary.
//!
//! ```sh
//! cargo run --release --example survey -- [hosts] [workers]
//! ```

use reorder::survey::{run_campaign, CampaignConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let hosts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);

    let cfg = CampaignConfig {
        hosts,
        workers,
        seed: 77,
        samples: 15,
        ..CampaignConfig::default()
    };
    let out = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink, no error");

    println!(
        "{:<22} {:<12} {:<13} {:>9} {:>9} {:>9} {:>9}",
        "host", "personality", "verdict", "technique", "fwd", "rev", "baseline"
    );
    println!("{}", "-".repeat(91));
    for r in &out.reports {
        let show = |e: reorder::core::metrics::ReorderEstimate| {
            if e.total == 0 {
                format!("{:>9}", "-")
            } else {
                format!("{:>8.1}%", e.rate() * 100.0)
            }
        };
        println!(
            "{:<22} {:<12} {:<13} {:>9} {} {} {}",
            r.spec.name,
            r.spec.personality.name,
            r.verdict.map_or("probe-failed", |v| v.label()),
            r.technique,
            show(r.fwd),
            show(r.rev),
            show(r.baseline_rev.unwrap_or_default()),
        );
    }
    println!();
    print!("{}", out.summary.render());
    println!(
        "('non-monotonic' = IPID validation rejected the host — random IPIDs or a \
         load balancer — so the SYN test measured it instead.)"
    );
    // Scheduler counters vary run to run; keep stdout byte-identical.
    eprintln!(
        "campaign: {} worker(s), {} steal(s)",
        out.stats.workers, out.stats.steals
    );
}
