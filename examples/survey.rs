//! Survey a population of simulated Internet hosts, the way §IV-B
//! surveyed 50 real ones: cycle all four tests round-robin over each
//! host, skip tests the host defeats (random IPIDs, load balancers,
//! redirect-sized objects), and print a per-host scorecard.
//!
//! ```sh
//! cargo run --example survey -- [hosts] [rounds]
//! ```

use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::techniques::{
    DataTransferTest, DualConnectionTest, SingleConnectionTest, SynTest,
};
use reorder_core::ProbeError;

fn main() {
    let mut args = std::env::args().skip(1);
    let hosts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let specs = scenario::population(4, hosts.saturating_sub(4), 77);
    let cfg = TestConfig::samples(15);
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "host", "single", "dual", "syn", "transfer", "verdict"
    );
    println!("{}", "-".repeat(78));

    for (i, spec) in specs.iter().enumerate() {
        let mut single = (0usize, 0usize);
        let mut dual = (0usize, 0usize);
        let mut syn = (0usize, 0usize);
        let mut transfer = (0usize, 0usize);
        let mut dual_note = "";
        let mut transfer_note = "";
        for round in 0..rounds {
            let seed = 0x50_0000 + (i * 100 + round) as u64;
            let mut sc = scenario::internet_host(spec, seed);
            if let Ok(r) = SingleConnectionTest::reversed(cfg).run(&mut sc.prober, sc.target, 80) {
                single.0 += r.fwd_reordered();
                single.1 += r.fwd_determinate();
            }
            let mut sc = scenario::internet_host(spec, seed + 1);
            match DualConnectionTest::new(cfg).run(&mut sc.prober, sc.target, 80) {
                Ok(r) => {
                    dual.0 += r.fwd_reordered();
                    dual.1 += r.fwd_determinate();
                }
                Err(ProbeError::HostUnsuitable(_)) => dual_note = "excluded",
                Err(_) => {}
            }
            let mut sc = scenario::internet_host(spec, seed + 2);
            if let Ok(r) = SynTest::new(cfg).run(&mut sc.prober, sc.target, 80) {
                syn.0 += r.fwd_reordered();
                syn.1 += r.fwd_determinate();
            }
            let mut sc = scenario::internet_host(spec, seed + 3);
            match DataTransferTest::new(TestConfig::default()).run(&mut sc.prober, sc.target, 80) {
                Ok(r) => {
                    transfer.0 += r.rev_reordered();
                    transfer.1 += r.rev_determinate();
                }
                Err(ProbeError::HostUnsuitable(_)) => transfer_note = "too small",
                Err(_) => {}
            }
        }
        let show = |(x, n): (usize, usize), note: &str| {
            if !note.is_empty() {
                format!("{note:>9}")
            } else if n == 0 {
                format!("{:>9}", "-")
            } else {
                format!("{:>8.1}%", x as f64 / n as f64 * 100.0)
            }
        };
        let verdict = if single.0 + syn.0 + dual.0 + transfer.0 > 0 {
            "reorders"
        } else {
            "clean"
        };
        println!(
            "{:<26} {} {} {} {} {:>10}",
            spec.name,
            show(single, ""),
            show(dual, dual_note),
            show(syn, ""),
            show(transfer, transfer_note),
            verdict
        );
    }
    println!();
    println!("single/dual/syn columns: forward-path rate; transfer: reverse-path rate.");
    println!("'excluded' = IPID validation rejected the host (random IPIDs or load balancer).");
}
