//! Predict protocol impact from a measured reordering process (§I +
//! §IV-C): how often TCP's fast retransmit misfires on this path, what
//! an adaptive dupthresh buys, and how deep a VoIP playout buffer must
//! be.
//!
//! ```sh
//! cargo run --release --example impact
//! ```

use reorder_core::impact::{observe_stream, tcp, voip};
use reorder_core::scenario;
use reorder_netsim::pipes::CrossTraffic;
use std::time::Duration;

fn main() {
    // The path: a 2-way packet-striped backbone hop (the §IV-C model).
    let mut sc = scenario::striped_path(CrossTraffic::backbone(), 7);
    println!("path: 2-way striped 1 Gbit/s link with Poisson cross traffic\n");

    // A bulk-transfer-like stream: 3000 x 1500B packets, back-to-back.
    let obs = observe_stream(&mut sc, 3000, Duration::from_micros(12), 1500);
    let order = obs.arrival_order();
    println!(
        "bulk stream: {} packets sent, {:.2}% lost",
        obs.sent,
        obs.loss_fraction() * 100.0
    );
    for thresh in [1usize, 2, 3, 4] {
        let s = tcp::spurious_fast_retransmits(&order, thresh);
        println!(
            "  dupthresh {thresh}: {s} spurious fast retransmits \
             (goodput retained ~{:.0}% at window 64)",
            tcp::relative_goodput(s as f64 / order.len() as f64, 64.0) * 100.0
        );
    }
    let a = tcp::adaptive_fast_retransmits(&order, 3);
    println!(
        "  adaptive dupthresh (Blanton-Allman style): {} spurious, settles at {}\n",
        a.spurious, a.final_dupthresh
    );

    // A voice stream: 20ms frames.
    let mut sc = scenario::striped_path(CrossTraffic::backbone(), 8);
    let obs = observe_stream(&mut sc, 1500, Duration::from_millis(20), 200);
    println!("voice stream: 20 ms frames, 200 B each");
    for depth in [0u64, 20, 50, 100] {
        println!(
            "  playout depth {:>3} us -> {:.2}% of frames unusable",
            depth,
            voip::unusable_fraction(&obs, Duration::from_micros(depth)) * 100.0
        );
    }
    if let Some(d) = voip::min_depth_for(&obs, 0.001) {
        println!("  minimum depth for 99.9% playable: {} us", d.as_micros());
    }
}
