//! Measure the time-domain distribution of a path's reordering process
//! (§IV-C): sweep the inter-packet gap, plot the exchange probability,
//! and use the profile to predict how differently sized packets fare.
//!
//! ```sh
//! cargo run --release --example gap_profile -- [samples-per-point]
//! ```

use reorder_core::metrics::GapProfile;
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::{Measurer, Session, TestKind};
use reorder_netsim::pipes::CrossTraffic;
use std::time::Duration;

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let gaps_us: Vec<u64> = vec![0, 5, 10, 15, 20, 30, 40, 50, 75, 100, 150, 200, 300];

    println!("gap sweep over a 2-way striped 1 Gbit/s path ({samples} samples/point)");
    println!();
    println!("{:>8}  {:>7}  bar", "gap(us)", "rate");

    let mut profile = GapProfile::default();
    for &gap in &gaps_us {
        let mut sc = scenario::striped_path(CrossTraffic::backbone(), 4242 + gap);
        let cfg = TestConfig {
            samples,
            gap: Duration::from_micros(gap),
            pace: Duration::from_millis(2),
            reply_timeout: Duration::from_millis(900),
            ..TestConfig::default()
        };
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        let est = Measurer::new(TestKind::DualConnection)
            .with_config(cfg)
            .run(&mut session)
            .expect("amenable host")
            .fwd;
        profile.push(Duration::from_micros(gap), est);
        let bar = "#".repeat((est.rate() * 400.0).round() as usize);
        println!("{:>8}  {:>6.2}%  {}", gap, est.rate() * 100.0, bar);
    }

    println!();
    println!("predictions from the measured profile (leading-edge spacing =");
    println!("serialization time at 1 Gbit/s):");
    for (label, bytes) in [
        ("40B ACK", 40usize),
        ("576B segment", 576),
        ("1500B MTU", 1500),
    ] {
        println!(
            "  back-to-back {label:<13} -> exchange probability {:>5.2}%",
            profile.predict_for_size(bytes, 1_000_000_000) * 100.0
        );
    }
    println!();
    println!("\"we can infer that, during bulk data transfer, full-sized data");
    println!(" packets are less likely to be reordered than streams of");
    println!(" compressed acknowledgment packets.\" (§IV-C)");
}
