//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — a warmup pass followed by a
//! timed measurement pass, reporting mean time per iteration and
//! throughput. Good enough to compare hot paths locally; not a
//! replacement for the real crate's analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Honor a benchmark-name filter passed on the command line
    /// (`cargo bench -- <filter>`); harness flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    /// Run a standalone benchmark (its own single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut g = self.benchmark_group(id.name.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of measurement samples (advisory here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare how much work one iteration performs, enabling
    /// throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            let mut b = Bencher::default();
            f(&mut b);
            b.report(&full, self.throughput);
        }
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            let mut b = Bencher::default();
            f(&mut b, input);
            b.report(&full, self.throughput);
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times a closure: warmup, then a measurement window.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`, recording the mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: establish a per-iteration estimate.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measurement: fixed wall-clock budget, batched.
        let target = ((MEASURE.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / target as f64;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.mean_ns == 0.0 {
            return;
        }
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / self.mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / self.mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{name:<50} {:>12.1} ns/iter{rate}", self.mean_ns);
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A name/parameter pair, displayed as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Define a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
