//! Offline stand-in for the subset of the `bytes` 1.x API this
//! workspace uses: [`Bytes`] as a cheaply-clonable shared byte buffer,
//! [`BytesMut`] as a growable byte buffer, plus the [`BufMut`] write
//! helpers. [`Bytes`] is `Arc`-backed (clone and `slice` are refcount
//! bumps, never copies); [`BytesMut`] is a plain `Vec<u8>`.

#![forbid(unsafe_code)]

use core::ops::{Deref, DerefMut, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply clonable, immutable slice of shared bytes.
///
/// Cloning (and [`Bytes::slice`]) bumps a refcount instead of copying
/// the payload — the property the packet simulator relies on to make
/// per-hop forwarding and trace taps allocation-free. Constructing a
/// `Bytes` from owned or borrowed bytes copies once; every view after
/// that is zero-copy.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

fn empty_arc() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

impl Bytes {
    /// New empty buffer. Does not allocate (a process-wide empty
    /// allocation is shared), so empty payloads stay free to build.
    pub fn new() -> Self {
        Bytes {
            data: empty_arc(),
            start: 0,
            end: 0,
        }
    }

    /// Copy `src` into a fresh shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        if src.is_empty() {
            return Bytes::new();
        }
        Bytes {
            end: src.len(),
            data: Arc::from(src),
            start: 0,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when this view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer. Panics when `range` is out
    /// of bounds, matching slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use core::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl core::hash::Hash for Bytes {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        Bytes {
            end: v.len(),
            data: Arc::from(v),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(src: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        Bytes::from(b.inner)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = core::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Growable byte buffer, API-compatible with `bytes::BytesMut` for the
/// operations this workspace performs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Ensure room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Drop all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

/// Write-side helpers, mirroring `bytes::BufMut`. Multi-byte writes are
/// big-endian unless the method name says `_le`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(std::sync::Arc::strong_count(&b.data), 2);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(std::sync::Arc::strong_count(&b.data), 3, "slice is a view");
        assert_eq!(s.slice(..2), Bytes::from(&[2u8, 3]));
    }

    #[test]
    fn bytes_empty_never_allocates_fresh() {
        let a = Bytes::new();
        let b = Bytes::from(Vec::new());
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a, b);
        assert!(std::sync::Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn bytes_compares_with_raw_forms() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b[..], b"abc"[..]);
        assert_eq!(b.len(), 3);
        assert_eq!(format!("{b:?}"), "[97, 98, 99]");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bytes_slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn writes_match_endianness() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u16_le(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u32_le(0x0405_0607);
        b.put_i32_le(-2);
        assert_eq!(
            &b[..],
            &[
                0x01, 0x02, 0x03, 0x03, 0x02, 0x04, 0x05, 0x06, 0x07, 0x07, 0x06, 0x05, 0x04, 0xfe,
                0xff, 0xff, 0xff
            ]
        );
    }

    #[test]
    fn deref_and_conversions() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), b"abc");
        assert_eq!(&b[1..], b"bc");
        let v: Vec<u8> = b.into();
        assert_eq!(v, b"abc");
    }
}
