//! Offline stand-in for the subset of the `bytes` 1.x API this
//! workspace uses: [`BytesMut`] as a growable byte buffer plus the
//! [`BufMut`] write helpers. Backed by a plain `Vec<u8>`; the
//! zero-copy machinery of the real crate is out of scope here.

#![forbid(unsafe_code)]

use core::ops::{Deref, DerefMut};

/// Growable byte buffer, API-compatible with `bytes::BytesMut` for the
/// operations this workspace performs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Ensure room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Drop all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

/// Write-side helpers, mirroring `bytes::BufMut`. Multi-byte writes are
/// big-endian unless the method name says `_le`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, BytesMut};

    #[test]
    fn writes_match_endianness() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u16_le(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u32_le(0x0405_0607);
        b.put_i32_le(-2);
        assert_eq!(
            &b[..],
            &[
                0x01, 0x02, 0x03, 0x03, 0x02, 0x04, 0x05, 0x06, 0x07, 0x07, 0x06, 0x05, 0x04, 0xfe,
                0xff, 0xff, 0xff
            ]
        );
    }

    #[test]
    fn deref_and_conversions() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), b"abc");
        assert_eq!(&b[1..], b"bc");
        let v: Vec<u8> = b.into();
        assert_eq!(v, b"abc");
    }
}
