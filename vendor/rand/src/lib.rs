//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`) and [`SeedableRng::seed_from_u64`].
//!
//! The build environment has no registry access, so the workspace
//! vendors this shim instead of the real crate. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — though the exact output
//! streams are not guaranteed to match the upstream crate.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly over its whole domain
/// (`[0, 1)` for floats) by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw uniformly between `lo` and `hi`; `inclusive` selects
    /// whether `hi` itself can be produced.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let width = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            SmallRng {
                s: [
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u16 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
