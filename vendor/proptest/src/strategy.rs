//! The [`Strategy`] trait and its combinators: value generators for
//! property tests. Unlike the real proptest there are no value trees —
//! strategies generate final values directly and nothing shrinks.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter` retries generation before giving up.
const FILTER_MAX_RETRIES: usize = 1000;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keep only values for which `f` returns true. `whence` names the
    /// precondition in the panic raised if generation keeps missing.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Randomly permute the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { source: self }
    }

    /// Type-erase this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "proptest: prop_filter `{}` rejected {FILTER_MAX_RETRIES} \
             consecutive generated values",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permute in place using Fisher–Yates.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    source: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.source.new_value(rng);
        v.shuffle(rng);
        v
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

// --- Numeric range strategies ----------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- Tuple strategies -------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
