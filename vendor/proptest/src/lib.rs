//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the workspace
//! vendors a miniature property-testing harness with the same surface:
//! the [`proptest!`] macro, strategies ([`strategy::Strategy`] with
//! `prop_map` / `prop_filter` / `prop_flat_map` / `prop_shuffle`,
//! [`strategy::Just`], numeric-range strategies, tuples,
//! [`collection::vec`], [`sample::Index`], [`prop_oneof!`]), the
//! assertion macros, and [`test_runner::Config`].
//!
//! The one deliberate simplification: failing cases are reported but
//! **not shrunk**. Generation is fully deterministic (fixed seed), so a
//! reported failure reproduces exactly on re-run.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `fn` items
/// whose parameters use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one `fn` item at a
/// time, turning its `pat in strategy` parameter list into a tuple
/// strategy driven by the [`test_runner::TestRunner`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but reports the failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports the failure through the runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
}

/// Like `assert_ne!`, but reports the failure through the runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (it does not count toward the case budget)
/// when a generated input fails a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
