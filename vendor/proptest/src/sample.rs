//! Sampling helpers: [`Index`], a length-agnostic collection index.

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An index into a collection of as-yet-unknown size: generated as raw
/// entropy, resolved against a concrete length with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    /// Resolve against a collection of `len` elements (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Strategy producing arbitrary [`Index`] values.
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn new_value(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> Self::Strategy {
        IndexStrategy
    }
}
