//! The [`Arbitrary`] trait and [`any`]: default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`: uniform over the whole domain for
/// primitives, element-wise for arrays.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform strategy over a primitive's full domain.
pub struct AnyPrimitive<T> {
    _marker: PhantomData<T>,
}

/// Generation over the full domain of a primitive type.
pub trait PrimitiveSample: Sized {
    /// Draw one value.
    fn sample(rng: &mut TestRng) -> Self;
}

macro_rules! impl_primitive_int {
    ($($t:ty),*) => {$(
        impl PrimitiveSample for $t {
            fn sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_primitive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PrimitiveSample for bool {
    fn sample(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: PrimitiveSample + Debug> Strategy for AnyPrimitive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: PhantomData }
            }
        }
    )*};
}
impl_arbitrary_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Element-wise strategy for fixed-size arrays.
pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N>
where
    S::Value: Debug,
{
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    type Strategy = ArrayStrategy<T::Strategy, N>;
    fn arbitrary() -> Self::Strategy {
        ArrayStrategy {
            element: T::arbitrary(),
        }
    }
}
