//! Case generation loop, configuration, and failure reporting.

use crate::strategy::Strategy;
use std::fmt;

/// Runner configuration. `ProptestConfig` in the prelude is an alias.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases (via `prop_assume!` or
    /// `prop_filter`) before the run is abandoned.
    pub max_global_rejects: u32,
}

impl Config {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The input did not satisfy a precondition; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A discarded input.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result type the generated test closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generation RNG (SplitMix64). A fixed stream keeps runs
/// reproducible: a failure reported once fails identically on re-run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Start a stream from `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives a strategy through the configured number of cases.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// Runner with the given configuration and the fixed default seed.
    pub fn new(config: Config) -> Self {
        TestRunner {
            config,
            rng: TestRng::new(0x7072_6f70_7465_7374), // "proptest"
        }
    }

    /// Generate and execute cases until `config.cases` succeed. Panics
    /// (failing the enclosing `#[test]`) on the first property
    /// violation, reporting the generated input.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest: too many rejected inputs ({rejected}); \
                             last precondition: {reason}"
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest: property failed after {passed} passing case(s)\n\
                         {reason}\nfailing input: {repr}"
                    );
                }
            }
        }
    }
}
