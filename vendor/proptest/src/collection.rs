//! Collection strategies: [`vec()`] and the [`SizeRange`] bounds type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Inclusive-lower / exclusive-upper bounds on a generated collection's
/// length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
