//! Workspace facade for the packet-reordering measurement toolkit — a
//! reproduction of **"Measuring Packet Reordering"** (J. Bellardo &
//! S. Savage, IMC 2002) in simulation.
//!
//! The real functionality lives in the member crates; this crate
//! re-exports them under one roof and owns the workspace-level
//! integration tests (`tests/`) and examples (`examples/`).
//!
//! * [`wire`] — IPv4/TCP/ICMP encoding, decoding, checksums.
//! * [`netsim`] — deterministic discrete-event network simulator.
//! * [`tcpstack`] — TCP endpoints with OS personalities and IPID generators.
//! * [`core`] — the four measurement techniques, metrics, scenarios.
//! * [`survey`] — the sharded, streaming campaign engine (§IV-B at scale).
//! * [`campaign`] — crash-safe multi-process orchestrator with
//!   checkpoint/resume over the survey engine.
//! * [`mod@bench`] — experiment drivers reproducing the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use reorder_bench as bench;
pub use reorder_campaign as campaign;
pub use reorder_core as core;
pub use reorder_netsim as netsim;
pub use reorder_survey as survey;
pub use reorder_tcpstack as tcpstack;
pub use reorder_wire as wire;
