//! End-to-end integration: statistical recovery of configured rates,
//! gap-profile shape, trace-validated accuracy, and cross-test
//! consistency — the §IV workflow in miniature, spanning all four
//! crates.

use reorder_bench::run_technique as execute;
use reorder_core::metrics::{GapProfile, ReorderEstimate};
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::stats::pair_difference;
use reorder_core::techniques::TestKind;
use reorder_core::validate::validate_run;
use reorder_netsim::pipes::CrossTraffic;
use std::time::Duration;

/// Every technique, measured on the same (statistically) path, must
/// recover the configured swap rate within a tolerance band.
#[test]
fn all_techniques_recover_configured_rate() {
    let p = 0.12;
    let n = 150;
    let tol = 0.06;
    let cfg = TestConfig::samples(n);

    let mut sc = scenario::validation_rig(p, p, 1);
    let single = execute(TestKind::SingleConnectionReversed, &mut sc, cfg).expect("single");
    let mut sc = scenario::validation_rig(p, p, 2);
    let dual = execute(TestKind::DualConnection, &mut sc, cfg).expect("dual");
    let mut sc = scenario::validation_rig(p, p, 3);
    let syn = execute(TestKind::Syn, &mut sc, cfg).expect("syn");

    for (name, run) in [("single", &single), ("dual", &dual), ("syn", &syn)] {
        let f = run.fwd_estimate().rate();
        let r = run.rev_estimate().rate();
        assert!(
            (f - p).abs() < tol,
            "{name}: fwd {f} not within {tol} of {p}"
        );
        assert!(
            (r - p).abs() < tol,
            "{name}: rev {r} not within {tol} of {p}"
        );
    }
}

/// The whole §IV-A loop: measure, capture, validate — accuracy must be
/// perfect on every technique in a deterministic simulator.
#[test]
fn trace_validation_is_exact_for_all_techniques() {
    for (i, kind) in [
        TestKind::SingleConnectionReversed,
        TestKind::DualConnection,
        TestKind::Syn,
        TestKind::DataTransfer,
    ]
    .into_iter()
    .enumerate()
    {
        let which = kind.label();
        let mut sc = scenario::validation_rig(0.2, 0.1, 20 + i as u64);
        let cfg = if kind == TestKind::DataTransfer {
            TestConfig::default()
        } else {
            TestConfig::samples(80)
        };
        let run = execute(kind, &mut sc, cfg).expect("run");
        let rep = validate_run(
            &run,
            &sc.merged_server_rx(),
            &sc.merged_server_tx(),
            &sc.prober_trace(),
        );
        assert_eq!(
            rep.fwd.agree, rep.fwd.checked,
            "{which}: fwd disagreements {:?}",
            rep.fwd.disagreements
        );
        assert_eq!(
            rep.rev.agree, rep.rev.checked,
            "{which}: rev disagreements {:?}",
            rep.rev.disagreements
        );
    }
}

/// The Fig. 7 shape end-to-end: profile decays monotonically (within
/// noise) and the small-vs-large packet prediction is ordered.
#[test]
fn gap_profile_decays() {
    let mut profile = GapProfile::default();
    for (i, gap_us) in [0u64, 25, 50, 100, 250].into_iter().enumerate() {
        let mut sc = scenario::striped_path(CrossTraffic::backbone(), 40 + i as u64);
        let cfg = TestConfig {
            samples: 200,
            gap: Duration::from_micros(gap_us),
            pace: Duration::from_millis(2),
            reply_timeout: Duration::from_millis(900),
            ..TestConfig::default()
        };
        let run = execute(TestKind::DualConnection, &mut sc, cfg).expect("run");
        profile.push(
            Duration::from_micros(gap_us),
            ReorderEstimate::new(run.fwd_reordered(), run.fwd_determinate()),
        );
    }
    let r0 = profile.interpolate(Duration::ZERO);
    let r50 = profile.interpolate(Duration::from_micros(50));
    let r250 = profile.interpolate(Duration::from_micros(250));
    assert!(r0 > 0.05, "back-to-back rate {r0} too low");
    assert!(r0 > r50 + 0.02, "no decay: {r0} vs {r50}");
    assert!(r250 < 0.02, "tail rate {r250} too high");
    assert!(
        profile.predict_for_size(40, 1_000_000_000) > profile.predict_for_size(1500, 1_000_000_000),
        "small packets must be predicted to reorder more"
    );
}

/// §IV-B consistency: two independent techniques measuring the same
/// stationary path support the null hypothesis at 99.9%.
#[test]
fn independent_techniques_agree_statistically() {
    let mut singles = Vec::new();
    let mut syns = Vec::new();
    for round in 0..10u64 {
        let cfg = TestConfig::samples(40);
        let mut sc = scenario::validation_rig(0.1, 0.05, 600 + round);
        singles.push(
            execute(TestKind::SingleConnectionReversed, &mut sc, cfg)
                .expect("single")
                .fwd_estimate()
                .rate(),
        );
        let mut sc = scenario::validation_rig(0.1, 0.05, 700 + round);
        syns.push(
            execute(TestKind::Syn, &mut sc, cfg)
                .expect("syn")
                .fwd_estimate()
                .rate(),
        );
    }
    let pd = pair_difference(&singles, &syns, 0.999);
    assert!(
        pd.supports_null,
        "tests disagree: mean diff {} CI {:?}",
        pd.mean_diff, pd.ci
    );
}

/// Measurements are exactly reproducible from the seed.
#[test]
fn determinism_across_full_stack() {
    let run_once = |seed: u64| {
        let mut sc = scenario::validation_rig(0.25, 0.15, seed);
        let run = execute(TestKind::DualConnection, &mut sc, TestConfig::samples(40)).expect("run");
        (
            run.fwd_reordered(),
            run.rev_reordered(),
            run.fwd_determinate(),
            run.rev_determinate(),
        )
    };
    assert_eq!(run_once(123), run_once(123));
    assert_ne!(run_once(123), run_once(124), "different seeds must differ");
}

/// The population builder plus the survey machinery end-to-end: a
/// clean host measures clean, a reordering host measures dirty, with
/// all tests agreeing on which is which.
#[test]
fn clean_vs_dirty_host_separation() {
    let specs = scenario::population(15, 35, 0xF165);
    let clean = specs
        .iter()
        .find(|s| s.fwd_reorder == 0.0 && s.backends == 1 && s.loss < 0.005)
        .expect("population has a clean host");
    let dirty = specs
        .iter()
        .find(|s| s.fwd_reorder > 0.05 && s.backends == 1)
        .expect("population has a reordering host");
    let cfg = TestConfig::samples(60);

    let mut sc = scenario::internet_host(clean, 1000);
    let clean_rate = execute(TestKind::SingleConnectionReversed, &mut sc, cfg)
        .expect("clean run")
        .fwd_estimate()
        .rate();
    let mut sc = scenario::internet_host(dirty, 1001);
    let dirty_rate = execute(TestKind::SingleConnectionReversed, &mut sc, cfg)
        .expect("dirty run")
        .fwd_estimate()
        .rate();
    assert!(clean_rate < 0.02, "clean host measured {clean_rate}");
    assert!(
        dirty_rate > clean_rate + 0.02,
        "dirty {dirty_rate} vs clean {clean_rate}"
    );
}
