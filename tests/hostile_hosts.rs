//! Failure-injection integration tests: the techniques against the
//! hosts and middleboxes that defeat them — exactly the practical
//! hazards §III catalogs. A measurement tool is defined as much by what
//! it refuses to report as by what it reports.

use reorder_bench::run_technique as execute;
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::techniques::{IpidVerdict, TestKind};
use reorder_core::{technique, ProbeError, Session};
use reorder_tcpstack::{HostPersonality, IpidScheme};

/// Random-IPID and zero-IPID hosts must be refused by the dual test —
/// never silently mismeasured.
#[test]
fn dual_test_refuses_every_bad_ipid_scheme() {
    for (p, expect) in [
        (HostPersonality::openbsd3(), IpidVerdict::NonMonotonic),
        (HostPersonality::linux24(), IpidVerdict::ConstantZero),
        (HostPersonality::hardened(), IpidVerdict::NonMonotonic),
    ] {
        let name = p.name;
        let mut sc = scenario::validation_rig_with(0.0, 0.0, p, 11_000);
        let verdict = {
            let mut session = Session::new(&mut sc.prober, sc.target, 80);
            technique(TestKind::DualConnection, TestConfig::samples(5))
                .probe_amenability(&mut session)
                .expect("amenability probe")
        };
        assert_eq!(verdict, expect, "{name}");
        // And execute() must hard-refuse.
        let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::openbsd3(), 11_001);
        match execute(TestKind::DualConnection, &mut sc, TestConfig::samples(5)) {
            Err(ProbeError::HostUnsuitable(_)) => {}
            other => panic!("expected refusal, got {other:?}"),
        }
    }
}

/// Behind a per-flow load balancer the dual test usually splits across
/// backends and must detect it; the SYN test must keep working and
/// measure the true rate.
#[test]
fn load_balancer_defeats_dual_but_not_syn() {
    let mut dual_rejections = 0;
    for seed in 0..8u64 {
        let mut sc =
            scenario::load_balanced(0.3, 0.0, 4, HostPersonality::freebsd4(), 12_000 + seed);
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        if matches!(
            technique(TestKind::DualConnection, TestConfig::samples(5))
                .probe_amenability(&mut session),
            Ok(IpidVerdict::NonMonotonic)
        ) {
            dual_rejections += 1;
        }
    }
    assert!(
        dual_rejections >= 5,
        "dual test should reject most LB trials ({dual_rejections}/8)"
    );

    let mut sc = scenario::load_balanced(0.3, 0.0, 4, HostPersonality::freebsd4(), 12_100);
    let run = execute(TestKind::Syn, &mut sc, TestConfig::samples(100)).expect("syn through LB");
    let rate = run.fwd_estimate().rate();
    assert!(
        (0.15..=0.45).contains(&rate),
        "SYN test rate {rate} should track the true 30%"
    );
}

/// A pathological per-packet balancer breaks the SYN test's same-flow
/// assumption: the two SYNs reach different backends and both answer
/// with SYN/ACKs. The test must not crash and mostly yields samples
/// it cannot classify cleanly — and the measured rate becomes garbage,
/// which is exactly why per-packet balancing is called pathological.
#[test]
fn per_packet_balancer_survived() {
    use reorder_netsim::pipes::{BalanceMode, LoadBalancer, DOWN, UP};
    use reorder_netsim::{LinkParams, Mailbox, Port, Simulator};
    use reorder_tcpstack::{TcpHost, TcpHostConfig};

    let mut sim = Simulator::new(13_000);
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let fwd = sim.add_node(Box::new(reorder_netsim::pipes::Forwarder::new()));
    let lb = sim.add_node(Box::new(LoadBalancer::new(BalanceMode::PerPacket, 2)));
    sim.connect(me, Port(0), fwd, UP, LinkParams::lan());
    sim.connect(fwd, DOWN, lb, Port(0), LinkParams::lan());
    for b in 0..2 {
        let host = TcpHost::new(
            TcpHostConfig::web_server(scenario::TARGET_ADDR, HostPersonality::freebsd4()),
            13_001 + b,
        );
        let node = sim.add_node(Box::new(host));
        sim.connect(lb, Port(1 + b as usize), node, Port(0), LinkParams::lan());
    }
    let mut prober = reorder_core::Prober::new(sim, me, queue, scenario::PROBE_ADDR);
    // Must complete without panicking; classification quality is
    // undefined by design.
    let mut session = Session::new(&mut prober, scenario::TARGET_ADDR, 80);
    let run = technique(TestKind::Syn, TestConfig::samples(20))
        .execute(&mut session)
        .expect("syn over per-packet LB");
    assert_eq!(run.samples.len(), 20);
}

/// Heavy loss: all techniques must terminate, discard correctly, and
/// never report negative-confidence garbage.
#[test]
fn heavy_loss_terminates_all_techniques() {
    let cfg = TestConfig::samples(15);
    let mut sc = scenario::lossy_rig(0.3, 0.3, 14_000);
    match execute(TestKind::SingleConnectionReversed, &mut sc, cfg) {
        Ok(run) => {
            assert!(run.fwd_determinate() <= run.samples.len());
        }
        Err(e) => {
            // Acceptable: handshake or resync may exhaust retries.
            assert!(
                matches!(e, ProbeError::Timeout { .. }),
                "unexpected error {e:?}"
            );
        }
    }
    let mut sc = scenario::lossy_rig(0.3, 0.3, 14_001);
    match execute(TestKind::DualConnection, &mut sc, cfg) {
        Ok(run) => {
            // Discards happen; every determinate verdict is still sound.
            assert!(run.fwd_determinate() <= run.samples.len());
        }
        Err(e) => assert!(matches!(e, ProbeError::Timeout { .. })),
    }
    let mut sc = scenario::lossy_rig(0.3, 0.3, 14_002);
    let run = execute(TestKind::Syn, &mut sc, cfg).expect("syn survives loss by discarding");
    assert_eq!(run.samples.len(), 15);
}

/// Hosts that filter ICMP and silence closed ports (hardened) still
/// support the single connection test; sites with one-packet objects
/// defeat the transfer test.
#[test]
fn hardened_and_tiny_object_hosts() {
    let mut sc = scenario::validation_rig_with(0.15, 0.0, HostPersonality::hardened(), 15_000);
    let run = execute(
        TestKind::SingleConnectionReversed,
        &mut sc,
        TestConfig::samples(60),
    )
    .expect("single against hardened host");
    let rate = run.fwd_estimate().rate();
    assert!((0.05..0.3).contains(&rate), "rate {rate}");

    let spec = scenario::HostSpec {
        object_size: 128, // fits one clamped segment
        ..scenario::HostSpec::clean("redirector", HostPersonality::freebsd4())
    };
    let mut sc = scenario::internet_host(&spec, 15_001);
    match execute(TestKind::DataTransfer, &mut sc, TestConfig::default()) {
        Err(ProbeError::HostUnsuitable(_)) => {}
        other => panic!("expected HostUnsuitable, got {other:?}"),
    }
}

/// A closed port answers RST; probing it must fail fast with
/// ConnectionReset, not hang.
#[test]
fn closed_port_fails_fast() {
    let mut sc = scenario::validation_rig(0.0, 0.0, 16_000);
    let before = sc.prober.now();
    let err = {
        let mut session = Session::new(&mut sc.prober, sc.target, 7777);
        technique(TestKind::SingleConnection, TestConfig::samples(5))
            .execute(&mut session)
            .unwrap_err()
    };
    assert_eq!(err, ProbeError::ConnectionReset);
    let elapsed = sc.prober.now() - before;
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "should fail fast, took {elapsed:?}"
    );
}

/// Sanity: the population generator emits every hostile personality so
/// the survey experiments actually exercise these paths.
#[test]
fn population_contains_hostile_hosts() {
    let specs = scenario::population(15, 35, 0xF165);
    assert!(specs
        .iter()
        .any(|s| s.personality.ipid == IpidScheme::ConstantZero));
    assert!(specs
        .iter()
        .any(|s| s.personality.ipid == IpidScheme::Random));
    assert!(specs.iter().any(|s| s.backends > 1));
    assert!(specs.iter().any(|s| s.object_size < 512));
}
