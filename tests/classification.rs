//! E8 — exhaustive classification matrices for every technique
//! (Figs. 1, 2 and 4): for each controllable delivery order and each
//! host personality, the test must produce exactly the verdict the
//! paper's protocol analysis predicts.
//!
//! Delivery order is controlled with deterministic dummynet settings:
//! swap probability 0 (in order) or 1 (always exchanged), per
//! direction.

use reorder_bench::run_technique as execute;
use reorder_core::sample::{Order, TestConfig};
use reorder_core::scenario;
use reorder_core::techniques::TestKind;
use reorder_tcpstack::HostPersonality;

const N: usize = 12;

fn cfg() -> TestConfig {
    // Pace beyond the dummynet's 50 ms hold timeout so a packet held at
    // the end of one sample (e.g. the SYN test's politeness traffic) is
    // flushed before the next sample's pair enters the pipe; otherwise
    // an odd packet count per sample makes the p=1 swap pairing
    // alternate across samples.
    let mut c = TestConfig::samples(N);
    c.pace = std::time::Duration::from_millis(60);
    c
}

/// Expect every determinate verdict in the run to equal `expected`, and
/// at least `min_det` determinate samples.
fn expect_all(run: &reorder_core::MeasurementRun, dir: &str, expected: Order, min_det: usize) {
    let verdicts: Vec<Order> = run
        .samples
        .iter()
        .map(|s| match dir {
            "fwd" => s.outcome.fwd,
            _ => s.outcome.rev,
        })
        .filter(|o| o.is_determinate())
        .collect();
    assert!(
        verdicts.len() >= min_det,
        "{dir}: only {} determinate of {} samples",
        verdicts.len(),
        run.samples.len()
    );
    assert!(
        verdicts.iter().all(|&v| v == expected),
        "{dir}: expected all {expected:?}, got {verdicts:?}"
    );
}

// --- Single Connection Test (Fig. 1) ------------------------------------

#[test]
fn single_fig1_matrix() {
    // (fwd_swap, rev_swap, expected fwd, expected rev)
    // The reversed variant keeps both ACKs back-to-back so the reverse
    // direction is exercisable with the swap pipe.
    let cases = [
        (0.0, 0.0, Order::Ordered, Order::Ordered),
        (1.0, 0.0, Order::Reordered, Order::Ordered),
        (0.0, 1.0, Order::Ordered, Order::Reordered),
    ];
    for (i, (f, r, ef, er)) in cases.into_iter().enumerate() {
        let mut sc = scenario::validation_rig(f, r, 9100 + i as u64);
        let run = execute(TestKind::SingleConnectionReversed, &mut sc, cfg()).expect("run");
        expect_all(&run, "fwd", ef, N / 2);
        expect_all(&run, "rev", er, N / 2);
    }
    // (1,1) is special: the forward exchange delivers the pair in
    // hole-filling order, so the second ACK rides the remote's delayed
    // ACK timer — the reply pair is now spread hundreds of ms apart and
    // an adjacent-swap process cannot exchange it. Forward stays fully
    // classified; reverse legitimately reads Ordered.
    let mut sc = scenario::validation_rig(1.0, 1.0, 9104);
    let run = execute(TestKind::SingleConnectionReversed, &mut sc, cfg()).expect("run");
    expect_all(&run, "fwd", Order::Reordered, N / 2);
    expect_all(&run, "rev", Order::Ordered, N / 2);
}

#[test]
fn single_in_order_variant_forward_matrix() {
    // The in-order variant classifies the forward path identically.
    for (i, (f, ef)) in [(0.0, Order::Ordered), (1.0, Order::Reordered)]
        .into_iter()
        .enumerate()
    {
        let mut sc = scenario::validation_rig(f, 0.0, 9200 + i as u64);
        let run = execute(TestKind::SingleConnection, &mut sc, cfg()).expect("run");
        expect_all(&run, "fwd", ef, N / 2);
    }
}

// --- Dual Connection Test (Fig. 2) ---------------------------------------

#[test]
fn dual_fig2_matrix() {
    let cases = [
        (0.0, 0.0, Order::Ordered, Order::Ordered),
        (1.0, 0.0, Order::Reordered, Order::Ordered),
        (0.0, 1.0, Order::Ordered, Order::Reordered),
        (1.0, 1.0, Order::Reordered, Order::Reordered),
    ];
    for (i, (f, r, ef, er)) in cases.into_iter().enumerate() {
        let mut sc = scenario::validation_rig(f, r, 9300 + i as u64);
        let run = execute(TestKind::DualConnection, &mut sc, cfg()).expect("run");
        expect_all(&run, "fwd", ef, N / 2);
        expect_all(&run, "rev", er, N / 2);
    }
}

// --- SYN Test (Fig. 4), across second-SYN personalities ------------------

#[test]
fn syn_fig4_matrix_across_personalities() {
    let personalities = [
        HostPersonality::freebsd4(),    // RstAlways
        HostPersonality::linux22(),     // SpecCompliant
        HostPersonality::windows2000(), // DualRst
    ];
    let cases = [
        (0.0, 0.0, Order::Ordered, Order::Ordered),
        (1.0, 0.0, Order::Reordered, Order::Ordered),
        (0.0, 1.0, Order::Ordered, Order::Reordered),
    ];
    for (pi, p) in personalities.into_iter().enumerate() {
        for (ci, (f, r, ef, er)) in cases.into_iter().enumerate() {
            let mut sc =
                scenario::validation_rig_with(f, r, p.clone(), 9400 + (pi * 10 + ci) as u64);
            let run = execute(TestKind::Syn, &mut sc, cfg()).expect("run");
            expect_all(&run, "fwd", ef, N / 2);
            expect_all(&run, "rev", er, N / 2);
        }
    }
}

#[test]
fn syn_ignore_second_personality_forward_only() {
    // Hosts that ignore the second SYN still yield forward verdicts via
    // the SYN/ACK's acknowledgment number, but never reverse verdicts.
    for (i, (f, ef)) in [(0.0, Order::Ordered), (1.0, Order::Reordered)]
        .into_iter()
        .enumerate()
    {
        let mut sc =
            scenario::validation_rig_with(f, 0.0, HostPersonality::hardened(), 9500 + i as u64);
        let run = execute(TestKind::Syn, &mut sc, cfg()).expect("run");
        expect_all(&run, "fwd", ef, N / 2);
        assert_eq!(run.rev_determinate(), 0);
    }
}

// --- Data Transfer Test (§III-E) ------------------------------------------

#[test]
fn transfer_reverse_only_matrix() {
    let mut sc = scenario::validation_rig(0.0, 0.0, 9600);
    let run = execute(TestKind::DataTransfer, &mut sc, TestConfig::default()).expect("run");
    expect_all(&run, "rev", Order::Ordered, 40);
    assert_eq!(run.fwd_determinate(), 0, "no forward verdicts ever");

    let mut sc = scenario::validation_rig(0.0, 1.0, 9601);
    let run = execute(TestKind::DataTransfer, &mut sc, TestConfig::default()).expect("run");
    // With p=1 every adjacent in-flight pair is exchanged; bursts of 2
    // segments per window mean intra-burst pairs all swap. At least
    // 40% of the adjacent-arrival pairs must show as reordered.
    assert!(
        run.rev_estimate().rate() > 0.4,
        "rate {}",
        run.rev_estimate().rate()
    );
}

// --- Delayed-ACK ambiguity (§III-B) ---------------------------------------

#[test]
fn delayed_ack_blindness_and_antidote() {
    // A stack that delays even hole-filling ACKs blinds the in-order
    // variant completely…
    let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::windows2000(), 9700);
    let run = execute(TestKind::SingleConnection, &mut sc, cfg()).expect("run");
    assert_eq!(run.fwd_determinate(), 0);
    // …while the reversed variant restores visibility for pairs that
    // arrive in the sent order (out-of-order at the receiver ⇒
    // immediate dup ACK, always).
    let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::windows2000(), 9701);
    let run = execute(TestKind::SingleConnectionReversed, &mut sc, cfg()).expect("run");
    expect_all(&run, "fwd", Order::Ordered, N / 2);
    // But when the network exchanges the pair, the receiver sees
    // hole-filling order, the ACK-collapsing stack emits a single
    // cumulative ACK, and the test must report Indeterminate — the
    // §III-B "lone ack 4 is ambiguous" rule (it cannot be told apart
    // from a reverse-path loss).
    let mut sc = scenario::validation_rig_with(1.0, 0.0, HostPersonality::windows2000(), 9702);
    let run = execute(TestKind::SingleConnectionReversed, &mut sc, cfg()).expect("run");
    assert_eq!(
        run.fwd_determinate(),
        0,
        "exchanged pairs against an ACK-collapsing stack are ambiguous"
    );
}
