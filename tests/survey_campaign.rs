//! End-to-end campaign test through the facade: the engine's verdicts
//! and estimates must line up with the generated ground truth, across
//! every layer (population → scheduler → pipeline → aggregation).

use reorder::core::techniques::{IpidVerdict, TestKind};
use reorder::survey::{run_campaign, shard_bounds, CampaignConfig, TechniqueChoice};
use reorder::tcpstack::IpidScheme;

#[test]
fn campaign_verdicts_track_ground_truth() {
    let cfg = CampaignConfig {
        hosts: 60,
        workers: 2,
        seed: 0xCAFE,
        samples: 6,
        baseline: false,
        ..CampaignConfig::default()
    };
    let out = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink");
    assert_eq!(out.reports.len(), 60);
    assert_eq!(out.summary.hosts, 60);

    // Ground truth drives the amenability verdict for the clear-cut
    // IPID schemes (unbalanced hosts, successful probes).
    let mut checked = 0;
    for r in &out.reports {
        let Some(v) = r.verdict else { continue };
        if r.spec.backends > 1 {
            continue; // either verdict defensible (Fig. 3)
        }
        match r.spec.personality.ipid {
            IpidScheme::ConstantZero => {
                assert_eq!(v, IpidVerdict::ConstantZero, "{}", r.spec.name);
                checked += 1;
            }
            IpidScheme::Random => {
                assert_eq!(v, IpidVerdict::NonMonotonic, "{}", r.spec.name);
                checked += 1;
            }
            _ => {}
        }
    }
    assert!(
        checked > 0,
        "population must include zero/random IPID hosts"
    );

    // Auto-selection: amenable hosts measured by dual, the rest by syn
    // (or nothing, if every round failed).
    for r in &out.reports {
        match (r.verdict, r.technique) {
            (Some(IpidVerdict::Amenable), t) => assert!(t == "dual" || t == "syn" || t == "none"),
            (_, t) => assert!(t == "syn" || t == "none", "{}: {t}", r.spec.name),
        }
    }

    // Pooled totals are exactly the sum of per-host counts.
    let fwd_reordered: usize = out.reports.iter().map(|r| r.fwd.reordered).sum();
    let fwd_total: usize = out.reports.iter().map(|r| r.fwd.total).sum();
    assert_eq!(out.summary.fwd_pooled.reordered, fwd_reordered);
    assert_eq!(out.summary.fwd_pooled.total, fwd_total);
}

#[test]
fn forced_technique_applies_to_every_host() {
    let cfg = CampaignConfig {
        hosts: 10,
        workers: 2,
        seed: 3,
        samples: 5,
        technique: TechniqueChoice::Fixed(TestKind::Syn),
        baseline: false,
        ..CampaignConfig::default()
    };
    let out = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink");
    assert!(out
        .reports
        .iter()
        .all(|r| r.technique == "syn" || r.technique == "none"));
}

/// The façade-level `--shard` contract: per-host reports of a sharded
/// campaign are exactly the same slice of the unsharded campaign's
/// reports (ids, verdicts, estimates — not just line counts).
#[test]
fn sharded_reports_are_a_slice_of_the_whole() {
    let cfg = |shard| CampaignConfig {
        hosts: 24,
        workers: 2,
        seed: 0xD0,
        samples: 4,
        baseline: false,
        shard,
        ..CampaignConfig::default()
    };
    let whole = run_campaign(&cfg(None), None::<&mut Vec<u8>>).expect("no sink");
    for k in 1..=3 {
        let part = run_campaign(&cfg(Some((k, 3))), None::<&mut Vec<u8>>).expect("no sink");
        let (lo, hi) = shard_bounds(24, k, 3);
        assert_eq!(part.reports.len(), hi - lo);
        for (r, w) in part.reports.iter().zip(&whole.reports[lo..hi]) {
            assert_eq!(r.id, w.id);
            assert_eq!(r.verdict, w.verdict);
            assert_eq!(r.technique, w.technique);
            assert_eq!(r.fwd, w.fwd);
            assert_eq!(r.rev, w.rev);
        }
    }
}
