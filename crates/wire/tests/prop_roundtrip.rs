//! Property tests: encode/decode roundtrips, decoder totality on
//! arbitrary bytes, and checksum/serial-arithmetic invariants.

use bytes::BytesMut;
use proptest::prelude::*;
use reorder_wire::{
    checksum, IcmpHeader, IpId, Ipv4Addr4, Ipv4Header, Packet, PacketBuilder, Protocol, SeqNum,
    TcpFlags, TcpHeader, TcpOption,
};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr4> {
    any::<[u8; 4]>().prop_map(Ipv4Addr4)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..64).prop_map(TcpFlags)
}

fn arb_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        any::<u16>().prop_map(TcpOption::Mss),
        (0u8..15).prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 1..4).prop_map(|v| {
            TcpOption::Sack(v.into_iter().map(|(a, b)| (SeqNum(a), SeqNum(b))).collect())
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamp(a, b)),
        // Unknown kinds, avoiding the reserved ones we interpret (0,1,2,3,4,5,8).
        (9u8..=255, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(k, d)| TcpOption::Unknown(k, d)),
    ]
}

fn arb_tcp_header() -> impl Strategy<Value = TcpHeader> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        arb_flags(),
        any::<u16>(),
        proptest::collection::vec(arb_option(), 0..4),
    )
        .prop_map(|(sp, dp, seq, ack, flags, window, options)| TcpHeader {
            src_port: sp,
            dst_port: dp,
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags,
            window,
            urgent: 0,
            options,
        })
        .prop_filter("options must fit in 40 bytes", |h| h.header_len() <= 60)
}

fn arb_ip_header() -> impl Strategy<Value = Ipv4Header> {
    (
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        any::<u8>(),
        1u8..=255,
        any::<bool>(),
    )
        .prop_map(|(src, dst, ident, dscp, ttl, df)| Ipv4Header {
            dscp_ecn: dscp,
            ident: IpId(ident),
            dont_frag: df,
            more_frags: false,
            frag_offset: 0,
            ttl,
            protocol: Protocol::Tcp,
            src,
            dst,
            options: Vec::new(),
        })
}

proptest! {
    #[test]
    fn tcp_packet_roundtrips(
        ip in arb_ip_header(),
        tcp in arb_tcp_header(),
        data in proptest::collection::vec(any::<u8>(), 0..1200),
    ) {
        let pkt = Packet {
            ip,
            payload: reorder_wire::Payload::Tcp { header: tcp, data: data.into() },
        };
        let bytes = pkt.encode();
        prop_assert_eq!(bytes.len(), pkt.wire_len());
        let back = Packet::decode(&bytes).unwrap();
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn icmp_packet_roundtrips(
        src in arb_addr(),
        dst in arb_addr(),
        ident in any::<u16>(),
        seq in any::<u16>(),
        ipid in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let pkt = PacketBuilder::icmp_echo(ident, seq)
            .src(src, 0)
            .dst(dst, 0)
            .ipid(ipid)
            .data(data)
            .build();
        let back = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(back, pkt);
    }

    /// Decoders must be total: arbitrary bytes never panic.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::decode(&bytes);
        let _ = Ipv4Header::decode(&bytes);
        let _ = IcmpHeader::decode(&bytes);
        let _ = TcpHeader::decode(&bytes, Ipv4Addr4::new(1,2,3,4), Ipv4Addr4::new(5,6,7,8));
    }

    /// Single-bit corruption anywhere in an encoded packet is detected by
    /// some checksum (IP header bits by the IP checksum, the rest by
    /// TCP's), except bits the checksums genuinely cannot see — for our
    /// encoder there are none, since every byte is covered.
    #[test]
    fn bit_flip_is_detected(
        ip in arb_ip_header(),
        tcp in arb_tcp_header(),
        data in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in any::<proptest::sample::Index>(),
    ) {
        let pkt = Packet {
            ip,
            payload: reorder_wire::Payload::Tcp { header: tcp, data: data.into() },
        };
        let mut bytes = pkt.encode();
        let nbits = bytes.len() * 8;
        let bit = flip_bit.index(nbits);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match Packet::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => {
                // One's-complement checksums cannot distinguish 0x0000
                // from 0xffff in the checksum field itself, and flips in
                // length/version fields can surface as different errors.
                // If decode succeeded the packet must differ from the
                // original only in ways invisible on the wire: re-encoding
                // must reproduce the mutated bytes.
                prop_assert_eq!(decoded.encode(), bytes);
            }
        }
    }

    #[test]
    fn seqnum_ordering_is_antisymmetric(a in any::<u32>(), delta in 1u32..0x7fff_ffff) {
        let x = SeqNum(a);
        let y = x + delta;
        prop_assert!(x < y);
        prop_assert!(y > x);
        prop_assert_eq!(x.distance_to(y), delta as i32);
        prop_assert_eq!(y.distance_to(x), -(delta as i32));
    }

    #[test]
    fn ipid_ordering_is_antisymmetric(a in any::<u16>(), delta in 1u16..0x7fff) {
        let x = IpId(a);
        let y = x + delta;
        prop_assert!(x.before(y));
        prop_assert!(!y.before(x));
    }

    #[test]
    fn checksum_incremental_update_is_exact(
        mut words in proptest::collection::vec(any::<u16>(), 4..20),
        idx in any::<proptest::sample::Index>(),
        new in any::<u16>(),
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let old_ck = checksum::internet(&bytes);
        let i = idx.index(words.len());
        let old = words[i];
        words[i] = new;
        let bytes2: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        prop_assert_eq!(
            checksum::incremental_update(old_ck, old, new),
            checksum::internet(&bytes2)
        );
    }

    #[test]
    fn checksum_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..6),
    ) {
        let whole = checksum::internet(&data);
        let mut positions: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        positions.sort_unstable();
        positions.dedup();
        let mut acc = checksum::Accumulator::new();
        let mut prev = 0;
        for p in positions {
            acc.add_bytes(&data[prev..p]);
            prev = p;
        }
        acc.add_bytes(&data[prev..]);
        prop_assert_eq!(acc.finish(), whole);
    }
}

#[test]
fn builder_doc_example_encodes_and_decodes() {
    let pkt = PacketBuilder::tcp()
        .src(Ipv4Addr4::new(10, 0, 0, 1), 4000)
        .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
        .seq(1)
        .ack(0)
        .flags(TcpFlags::SYN)
        .ipid(0x1234)
        .build();
    let mut buf = BytesMut::new();
    buf.extend_from_slice(&pkt.encode());
    assert_eq!(Packet::decode(&buf).unwrap(), pkt);
}
