//! Whole-datagram model: an IPv4 header plus a typed payload, with a
//! fluent [`PacketBuilder`] used throughout the probing code.

use crate::error::WireError;
use crate::icmp::IcmpHeader;
use crate::ipid::IpId;
use crate::ipv4::{Ipv4Addr4, Ipv4Header, Protocol};
use crate::seq::SeqNum;
use crate::tcp::{TcpFlags, TcpHeader, TcpOption};
use bytes::{Bytes, BytesMut};

/// Typed payload of an IPv4 datagram.
///
/// Payload bytes are [`Bytes`]: cloning a packet (per-hop forwarding,
/// trace taps, capture snapshots) bumps a refcount instead of copying
/// the application data, so the simulation hot path stays
/// allocation-free per hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A TCP segment: header plus application data.
    Tcp {
        /// TCP header (checksummed against the enclosing IP addresses).
        header: TcpHeader,
        /// Application payload bytes (shared, copy-on-construct).
        data: Bytes,
    },
    /// An ICMP message: header plus echo payload.
    Icmp {
        /// ICMP header.
        header: IcmpHeader,
        /// Payload bytes (shared, copy-on-construct).
        data: Bytes,
    },
    /// An uninterpreted payload (unsupported protocol).
    Raw(Bytes),
}

/// A complete IPv4 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Network-layer header.
    pub ip: Ipv4Header,
    /// Transport payload.
    pub payload: Payload,
}

/// The 4-tuple that identifies a TCP flow — exactly the key a per-flow
/// load balancer hashes (§III-D), and the key the prober uses to match
/// replies to connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Addr4,
    /// Source port.
    pub src_port: u16,
    /// Destination address.
    pub dst: Ipv4Addr4,
    /// Destination port.
    pub dst_port: u16,
}

impl FlowKey {
    /// The flow key for the opposite direction.
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
        }
    }

    /// A stable, endianness-independent hash of the 4-tuple (FNV-1a).
    /// Load balancers use this to pin flows to backends; keeping it
    /// in-crate makes the pinning reproducible across platforms.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in self.src.0 {
            feed(b);
        }
        for b in self.src_port.to_be_bytes() {
            feed(b);
        }
        for b in self.dst.0 {
            feed(b);
        }
        for b in self.dst_port.to_be_bytes() {
            feed(b);
        }
        h
    }
}

impl Packet {
    /// The flow key, if this is a TCP packet.
    pub fn flow(&self) -> Option<FlowKey> {
        match &self.payload {
            Payload::Tcp { header, .. } => Some(FlowKey {
                src: self.ip.src,
                src_port: header.src_port,
                dst: self.ip.dst,
                dst_port: header.dst_port,
            }),
            _ => None,
        }
    }

    /// The TCP header, if this is a TCP packet.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.payload {
            Payload::Tcp { header, .. } => Some(header),
            _ => None,
        }
    }

    /// The TCP payload bytes, if this is a TCP packet.
    pub fn tcp_data(&self) -> Option<&[u8]> {
        match &self.payload {
            Payload::Tcp { data, .. } => Some(data),
            _ => None,
        }
    }

    /// The ICMP header, if this is an ICMP packet.
    pub fn icmp(&self) -> Option<&IcmpHeader> {
        match &self.payload {
            Payload::Icmp { header, .. } => Some(header),
            _ => None,
        }
    }

    /// Total encoded length in bytes, including the IP header. This is
    /// the length the simulator uses for serialization delay, so it must
    /// match `encode().len()` exactly (asserted by property tests).
    pub fn wire_len(&self) -> usize {
        self.ip.header_len()
            + match &self.payload {
                Payload::Tcp { header, data } => header.header_len() + data.len(),
                Payload::Icmp { data, .. } => crate::icmp::MIN_HEADER_LEN + data.len(),
                Payload::Raw(data) => data.len(),
            }
    }

    /// Encode to wire bytes with all checksums valid.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out.to_vec()
    }

    /// Encode into (the end of) `out`, reserving exactly the wire
    /// length up front. Callers on a hot path reuse one cleared buffer
    /// across packets instead of allocating per encode.
    pub fn encode_into(&self, out: &mut BytesMut) {
        out.reserve(self.wire_len());
        // Every sub-encoder appends relative to the buffer's current
        // end, so header and payload share the single reservation.
        self.ip.encode(self.wire_len() - self.ip.header_len(), out);
        match &self.payload {
            Payload::Tcp { header, data } => header.encode(self.ip.src, self.ip.dst, data, out),
            Payload::Icmp { header, data } => header.encode(data, out),
            Payload::Raw(data) => out.extend_from_slice(data),
        }
    }

    /// Decode from wire bytes, verifying every checksum.
    pub fn decode(buf: &[u8]) -> Result<Packet, WireError> {
        let (ip, total_len) = Ipv4Header::decode(buf)?;
        let body = &buf[ip.header_len()..total_len];
        let payload = match ip.protocol {
            Protocol::Tcp => {
                let (header, off) = TcpHeader::decode(body, ip.src, ip.dst)?;
                Payload::Tcp {
                    header,
                    data: Bytes::copy_from_slice(&body[off..]),
                }
            }
            Protocol::Icmp => {
                let (header, off) = IcmpHeader::decode(body)?;
                Payload::Icmp {
                    header,
                    data: Bytes::copy_from_slice(&body[off..]),
                }
            }
            Protocol::Other(_) => Payload::Raw(Bytes::copy_from_slice(body)),
        };
        Ok(Packet { ip, payload })
    }
}

/// Fluent builder for probe packets.
///
/// ```
/// use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};
/// let probe = PacketBuilder::tcp()
///     .src(Ipv4Addr4::new(10, 0, 0, 1), 33000)
///     .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
///     .seq(2).ack(700)
///     .flags(TcpFlags::ACK | TcpFlags::PSH)
///     .data(b"A".to_vec())
///     .build();
/// assert_eq!(probe.tcp_data().unwrap(), b"A");
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    ip: Ipv4Header,
    tcp: Option<TcpHeader>,
    icmp: Option<IcmpHeader>,
    data: Bytes,
}

impl PacketBuilder {
    /// Start a TCP packet.
    pub fn tcp() -> Self {
        PacketBuilder {
            ip: Ipv4Header {
                protocol: Protocol::Tcp,
                ..Ipv4Header::default()
            },
            tcp: Some(TcpHeader::default()),
            icmp: None,
            data: Bytes::new(),
        }
    }

    /// Start an ICMP echo request packet.
    pub fn icmp_echo(ident: u16, seq: u16) -> Self {
        PacketBuilder {
            ip: Ipv4Header {
                protocol: Protocol::Icmp,
                ..Ipv4Header::default()
            },
            tcp: None,
            icmp: Some(IcmpHeader::echo_request(ident, seq)),
            data: Bytes::new(),
        }
    }

    /// Set source address (and port, for TCP).
    pub fn src(mut self, addr: Ipv4Addr4, port: u16) -> Self {
        self.ip.src = addr;
        if let Some(t) = &mut self.tcp {
            t.src_port = port;
        }
        self
    }

    /// Set destination address (and port, for TCP).
    pub fn dst(mut self, addr: Ipv4Addr4, port: u16) -> Self {
        self.ip.dst = addr;
        if let Some(t) = &mut self.tcp {
            t.dst_port = port;
        }
        self
    }

    /// Set the IP identification field.
    pub fn ipid(mut self, id: impl Into<IpId>) -> Self {
        self.ip.ident = id.into();
        self
    }

    /// Set the IP TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ip.ttl = ttl;
        self
    }

    /// Set the TCP sequence number.
    pub fn seq(mut self, seq: impl Into<SeqNum>) -> Self {
        if let Some(t) = &mut self.tcp {
            t.seq = seq.into();
        }
        self
    }

    /// Set the TCP acknowledgment number (and the ACK flag).
    pub fn ack(mut self, ack: impl Into<SeqNum>) -> Self {
        if let Some(t) = &mut self.tcp {
            t.ack = ack.into();
            t.flags = t.flags.union(TcpFlags::ACK);
        }
        self
    }

    /// Set the TCP flags (replacing any previously set).
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        if let Some(t) = &mut self.tcp {
            t.flags = flags;
        }
        self
    }

    /// Set the advertised receive window.
    pub fn window(mut self, window: u16) -> Self {
        if let Some(t) = &mut self.tcp {
            t.window = window;
        }
        self
    }

    /// Append a TCP option.
    pub fn option(mut self, opt: TcpOption) -> Self {
        if let Some(t) = &mut self.tcp {
            t.options.push(opt);
        }
        self
    }

    /// Set the payload bytes. Accepts owned bytes or an existing
    /// [`Bytes`] view (the latter is zero-copy, so a sender can slice
    /// one shared object buffer into many packets).
    pub fn data(mut self, data: impl Into<Bytes>) -> Self {
        self.data = data.into();
        self
    }

    /// Pad the packet payload so the total wire length is at least
    /// `target` bytes (used to study size-dependent reordering, §IV-C).
    pub fn pad_to(mut self, target: usize) -> Self {
        let tcp_hlen = self.tcp.as_ref().map_or(0, TcpHeader::header_len);
        let icmp_hlen = if self.icmp.is_some() {
            crate::icmp::MIN_HEADER_LEN
        } else {
            0
        };
        let base = self.ip.header_len() + tcp_hlen + icmp_hlen + self.data.len();
        if target > base {
            let mut grown = Vec::with_capacity(self.data.len() + target - base);
            grown.extend_from_slice(&self.data);
            grown.extend(std::iter::repeat_n(0, target - base));
            self.data = Bytes::from(grown);
        }
        self
    }

    /// Finalize into a [`Packet`].
    pub fn build(self) -> Packet {
        let payload = if let Some(header) = self.tcp {
            Payload::Tcp {
                header,
                data: self.data,
            }
        } else if let Some(header) = self.icmp {
            Payload::Icmp {
                header,
                data: self.data,
            }
        } else {
            Payload::Raw(self.data)
        };
        Packet {
            ip: self.ip,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_packet() -> Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(10, 0, 0, 1), 1234)
            .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
            .seq(100)
            .ack(200)
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .ipid(0x42)
            .data(b"abc".to_vec())
            .build()
    }

    #[test]
    fn tcp_roundtrip() {
        let p = tcp_packet();
        let bytes = p.encode();
        let back = Packet::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn wire_len_matches_encode() {
        let p = tcp_packet();
        assert_eq!(p.wire_len(), p.encode().len());
        let icmp = PacketBuilder::icmp_echo(1, 2)
            .src(Ipv4Addr4::new(1, 1, 1, 1), 0)
            .dst(Ipv4Addr4::new(2, 2, 2, 2), 0)
            .data(vec![0; 48])
            .build();
        assert_eq!(icmp.wire_len(), icmp.encode().len());
    }

    #[test]
    fn minimum_tcp_probe_is_40_bytes() {
        // "the other tests consist of minimum sized packets of roughly
        // 40 bytes" — a bare ACK probe must be exactly 20 + 20.
        let p = PacketBuilder::tcp()
            .src(Ipv4Addr4::new(1, 0, 0, 1), 1)
            .dst(Ipv4Addr4::new(1, 0, 0, 2), 2)
            .seq(0)
            .flags(TcpFlags::ACK)
            .build();
        assert_eq!(p.wire_len(), 40);
    }

    #[test]
    fn pad_to_grows_small_packets_only() {
        let p = PacketBuilder::tcp()
            .src(Ipv4Addr4::new(1, 0, 0, 1), 1)
            .dst(Ipv4Addr4::new(1, 0, 0, 2), 2)
            .pad_to(1500)
            .build();
        assert_eq!(p.wire_len(), 1500);
        let q = PacketBuilder::tcp()
            .src(Ipv4Addr4::new(1, 0, 0, 1), 1)
            .dst(Ipv4Addr4::new(1, 0, 0, 2), 2)
            .data(vec![0; 100])
            .pad_to(40)
            .build();
        assert_eq!(q.wire_len(), 140);
    }

    #[test]
    fn flow_key_and_reverse() {
        let p = tcp_packet();
        let f = p.flow().unwrap();
        assert_eq!(f.src_port, 1234);
        assert_eq!(f.dst_port, 80);
        let r = f.reversed();
        assert_eq!(r.src, f.dst);
        assert_eq!(r.dst_port, 1234);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn stable_hash_distinguishes_ports() {
        let p = tcp_packet();
        let f = p.flow().unwrap();
        let mut g = f;
        g.src_port += 1;
        assert_ne!(f.stable_hash(), g.stable_hash());
        assert_eq!(f.stable_hash(), f.stable_hash());
    }

    #[test]
    fn icmp_roundtrip() {
        let p = PacketBuilder::icmp_echo(77, 3)
            .src(Ipv4Addr4::new(9, 9, 9, 9), 0)
            .dst(Ipv4Addr4::new(8, 8, 8, 8), 0)
            .ipid(900)
            .data(vec![1, 2, 3, 4])
            .build();
        let back = Packet::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
        assert!(back.flow().is_none());
        assert_eq!(back.icmp().unwrap().ident, 77);
    }

    #[test]
    fn accessors_none_for_wrong_protocol() {
        let p = PacketBuilder::icmp_echo(1, 1).build();
        assert!(p.tcp().is_none());
        assert!(p.tcp_data().is_none());
        let t = tcp_packet();
        assert!(t.icmp().is_none());
    }
}
