//! Wrap-around-safe TCP sequence number arithmetic (RFC 793 / RFC 1982).
//!
//! The Single Connection Test reasons about sequence numbers that
//! straddle a deliberately-created hole; all comparisons must behave
//! correctly when the 32-bit space wraps mid-measurement.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A TCP sequence number: a point on the 32-bit circle.
///
/// Ordering is *serial-number arithmetic*: `a < b` iff the signed
/// distance from `a` to `b` is positive, which is well-defined when the
/// two numbers are within half the space of each other (always true for
/// the window sizes used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Construct from a raw wire value.
    pub const fn new(v: u32) -> Self {
        SeqNum(v)
    }

    /// Raw wire value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Signed circular distance from `self` to `other` (how many bytes
    /// `other` is ahead of `self`).
    pub fn distance_to(self, other: SeqNum) -> i32 {
        other.0.wrapping_sub(self.0) as i32
    }

    /// `self <= x < self + len` on the circle.
    pub fn contains(self, len: u32, x: SeqNum) -> bool {
        let off = x.0.wrapping_sub(self.0);
        off < len
    }

    /// The immediately following sequence number.
    pub fn next(self) -> SeqNum {
        self + 1
    }
}

impl PartialOrd for SeqNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SeqNum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance_to(*other).cmp(&0).reverse()
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = i32;
    /// Signed circular distance `self - rhs`.
    fn sub(self, rhs: SeqNum) -> i32 {
        rhs.distance_to(self)
    }
}

impl From<u32> for SeqNum {
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(SeqNum(1) < SeqNum(2));
        assert!(SeqNum(100) > SeqNum(2));
        assert_eq!(SeqNum(7), SeqNum(7));
    }

    #[test]
    fn wraparound_ordering() {
        let before = SeqNum(u32::MAX - 1);
        let after = SeqNum(3); // 5 bytes later, across the wrap
        assert!(before < after);
        assert!(after > before);
        assert_eq!(before.distance_to(after), 5);
        assert_eq!(after - before, 5);
        assert_eq!(before - after, -5);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(SeqNum(u32::MAX) + 1, SeqNum(0));
        assert_eq!(SeqNum(u32::MAX) + 10, SeqNum(9));
        assert_eq!(SeqNum(0) - 1, SeqNum(u32::MAX));
    }

    #[test]
    fn contains_window() {
        let base = SeqNum(u32::MAX - 2);
        // Window of 10 bytes starting 2 before the wrap.
        assert!(base.contains(10, SeqNum(u32::MAX - 2)));
        assert!(base.contains(10, SeqNum(0)));
        assert!(base.contains(10, SeqNum(6)));
        assert!(!base.contains(10, SeqNum(7)));
        assert!(!base.contains(10, SeqNum(u32::MAX - 3)));
    }

    #[test]
    fn next_is_plus_one() {
        assert_eq!(SeqNum(41).next(), SeqNum(42));
        assert_eq!(SeqNum(u32::MAX).next(), SeqNum(0));
    }

    #[test]
    fn sort_uses_serial_order() {
        let mut v = vec![SeqNum(3), SeqNum(u32::MAX), SeqNum(0), SeqNum(1)];
        v.sort();
        assert_eq!(v, vec![SeqNum(u32::MAX), SeqNum(0), SeqNum(1), SeqNum(3)]);
    }
}
