//! IPv4 header encode/decode (RFC 791).
//!
//! Only the fields the measurement tools exercise are modeled richly
//! (identification, flags/fragment offset, protocol, TTL, addresses);
//! options are carried opaquely. Decoding verifies the header checksum.

use crate::checksum;
use crate::error::WireError;
use crate::ipid::IpId;
use bytes::{BufMut, BytesMut};
use std::fmt;

/// Minimum (and, without options, actual) IPv4 header length in bytes.
pub const MIN_HEADER_LEN: usize = 20;

/// An IPv4 address. A thin wrapper (rather than `std::net::Ipv4Addr`) so
/// the simulator can treat addresses as plain keys and construct them in
/// `const` contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr4(pub [u8; 4]);

impl Ipv4Addr4 {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr4([a, b, c, d])
    }

    /// The unspecified address 0.0.0.0.
    pub const UNSPECIFIED: Ipv4Addr4 = Ipv4Addr4([0; 4]);

    /// Big-endian u32 form (useful for hashing and checksums).
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Build from a big-endian u32.
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Addr4(v.to_be_bytes())
    }
}

impl fmt::Display for Ipv4Addr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol numbers this toolkit understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1), used by the Bennett baseline.
    Icmp,
    /// TCP (6), used by all four measurement tests.
    Tcp,
    /// Anything else, carried opaquely.
    Other(u8),
}

impl Protocol {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            other => Protocol::Other(other),
        }
    }
}

/// A decoded IPv4 header (options carried opaquely, rarely present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Identification field — the star of the Dual Connection Test.
    pub ident: IpId,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
    /// Raw options bytes (already padded to a multiple of 4).
    pub options: Vec<u8>,
}

impl Default for Ipv4Header {
    fn default() -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            ident: IpId(0),
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            protocol: Protocol::Tcp,
            src: Ipv4Addr4::UNSPECIFIED,
            dst: Ipv4Addr4::UNSPECIFIED,
            options: Vec::new(),
        }
    }
}

impl Ipv4Header {
    /// Header length in bytes (20 + options).
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len()
    }

    /// Encode this header followed by nothing; `payload_len` sets the
    /// total-length field. The checksum is computed and written.
    pub fn encode(&self, payload_len: usize, out: &mut BytesMut) {
        let hlen = self.header_len();
        debug_assert_eq!(hlen % 4, 0, "options must be padded");
        debug_assert!(hlen / 4 <= 0xf, "header too long");
        let total_len = hlen + payload_len;
        debug_assert!(total_len <= 0xffff, "datagram too long");

        let start = out.len();
        out.put_u8(0x40 | (hlen / 4) as u8);
        out.put_u8(self.dscp_ecn);
        out.put_u16(total_len as u16);
        out.put_u16(self.ident.raw());
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.dont_frag {
            flags_frag |= 0x4000;
        }
        if self.more_frags {
            flags_frag |= 0x2000;
        }
        out.put_u16(flags_frag);
        out.put_u8(self.ttl);
        out.put_u8(self.protocol.to_u8());
        out.put_u16(0); // checksum placeholder
        out.put_slice(&self.src.0);
        out.put_slice(&self.dst.0);
        out.put_slice(&self.options);

        let ck = checksum::internet(&out[start..start + hlen]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decode a header from the front of `buf`. Returns the header and
    /// the *total length* field value, so the caller can locate the
    /// payload (`&buf[header_len..total_len]`). Verifies the checksum.
    pub fn decode(buf: &[u8]) -> Result<(Ipv4Header, usize), WireError> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: MIN_HEADER_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::BadField {
                layer: "ipv4",
                field: "version",
                value: u32::from(version),
            });
        }
        let hlen = usize::from(buf[0] & 0x0f) * 4;
        if hlen < MIN_HEADER_LEN {
            return Err(WireError::BadField {
                layer: "ipv4",
                field: "ihl",
                value: (hlen / 4) as u32,
            });
        }
        if buf.len() < hlen {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: hlen,
                available: buf.len(),
            });
        }
        let carried = u16::from_be_bytes([buf[10], buf[11]]);
        let computed = checksum::internet(&buf[..hlen]);
        if computed != 0 {
            // Recompute what the checksum *should* be for the error report.
            let mut zeroed = buf[..hlen].to_vec();
            zeroed[10] = 0;
            zeroed[11] = 0;
            return Err(WireError::BadChecksum {
                layer: "ipv4",
                expected: carried,
                computed: checksum::internet(&zeroed),
            });
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < hlen {
            return Err(WireError::BadField {
                layer: "ipv4",
                field: "total_length",
                value: total_len as u32,
            });
        }
        if buf.len() < total_len {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: total_len,
                available: buf.len(),
            });
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok((
            Ipv4Header {
                dscp_ecn: buf[1],
                ident: IpId(u16::from_be_bytes([buf[4], buf[5]])),
                dont_frag: flags_frag & 0x4000 != 0,
                more_frags: flags_frag & 0x2000 != 0,
                frag_offset: flags_frag & 0x1fff,
                ttl: buf[8],
                protocol: Protocol::from_u8(buf[9]),
                src: Ipv4Addr4([buf[12], buf[13], buf[14], buf[15]]),
                dst: Ipv4Addr4([buf[16], buf[17], buf[18], buf[19]]),
                options: buf[MIN_HEADER_LEN..hlen].to_vec(),
            },
            total_len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0x10,
            ident: IpId(0xabcd),
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 57,
            protocol: Protocol::Tcp,
            src: Ipv4Addr4::new(10, 1, 2, 3),
            dst: Ipv4Addr4::new(192, 168, 0, 9),
            options: Vec::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(11, &mut buf);
        buf.put_slice(&[0u8; 11]); // payload
        let (back, total) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(total, 31);
    }

    #[test]
    fn checksum_detects_corruption() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(0, &mut buf);
        buf[8] ^= 0xff; // flip TTL
        match Ipv4Header::decode(&buf) {
            Err(WireError::BadChecksum { layer: "ipv4", .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            Ipv4Header::decode(&[0x45; 5]),
            Err(WireError::Truncated { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = BytesMut::new();
        sample().encode(0, &mut buf);
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(WireError::BadField {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut buf = BytesMut::new();
        sample().encode(0, &mut buf);
        buf[0] = 0x44; // ihl = 16 bytes < 20
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(WireError::BadField { field: "ihl", .. })
        ));
    }

    #[test]
    fn total_length_shorter_than_buffer_is_honored() {
        // Ethernet-style trailing padding: decode reports the true total.
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(4, &mut buf);
        buf.put_slice(&[1, 2, 3, 4]);
        buf.put_slice(&[0u8; 7]); // padding
        let (_, total) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(total, 24);
    }

    #[test]
    fn options_roundtrip() {
        let mut h = sample();
        h.options = vec![1, 1, 1, 1]; // four NOPs
        let mut buf = BytesMut::new();
        h.encode(0, &mut buf);
        let (back, _) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(back.options, vec![1, 1, 1, 1]);
        assert_eq!(back.header_len(), 24);
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut h = sample();
        h.dont_frag = false;
        h.more_frags = true;
        h.frag_offset = 0x123;
        let mut buf = BytesMut::new();
        h.encode(0, &mut buf);
        let (back, _) = Ipv4Header::decode(&buf).unwrap();
        assert!(!back.dont_frag);
        assert!(back.more_frags);
        assert_eq!(back.frag_offset, 0x123);
    }

    #[test]
    fn addr_display_and_u32() {
        let a = Ipv4Addr4::new(1, 2, 3, 4);
        assert_eq!(a.to_string(), "1.2.3.4");
        assert_eq!(Ipv4Addr4::from_u32(a.to_u32()), a);
    }
}
