//! # reorder-wire
//!
//! Wire formats for the packet-reordering measurement toolkit.
//!
//! This crate implements the subset of IPv4, TCP and ICMP that the
//! measurement techniques of *Measuring Packet Reordering* (Bellardo &
//! Savage, IMC 2002) manipulate directly:
//!
//! * [`Ipv4Header`] — including the **identification field (IPID)** whose
//!   generation discipline the Dual Connection Test exploits,
//! * [`TcpHeader`] — sequence/acknowledgment numbers, flags and the
//!   options (MSS, window scale, SACK) the tests read and clamp,
//! * [`IcmpHeader`] — echo request/reply, used by the Bennett et al.
//!   baseline,
//! * wrap-around-safe arithmetic for 32-bit TCP sequence numbers
//!   ([`SeqNum`]) and the 16-bit IPID space ([`IpId`]),
//! * the Internet checksum ([`checksum`]) with incremental update.
//!
//! All encode/decode paths write into caller-provided buffers and every
//! decoder is a total function over arbitrary input: malformed input
//! yields a [`WireError`], never a panic. Decoders are exercised by
//! fuzz-style property tests.
//!
//! ```
//! use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};
//!
//! let pkt = PacketBuilder::tcp()
//!     .src(Ipv4Addr4::new(10, 0, 0, 1), 4000)
//!     .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
//!     .seq(1).ack(0)
//!     .flags(TcpFlags::SYN)
//!     .ipid(0x1234)
//!     .build();
//! let bytes = pkt.encode();
//! let back = reorder_wire::Packet::decode(&bytes).unwrap();
//! assert_eq!(pkt, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod icmp;
pub mod ipid;
pub mod ipv4;
pub mod packet;
pub mod seq;
pub mod tcp;

pub use bytes::Bytes;
pub use error::WireError;
pub use icmp::{IcmpHeader, IcmpType};
pub use ipid::IpId;
pub use ipv4::{Ipv4Addr4, Ipv4Header, Protocol};
pub use packet::{FlowKey, Packet, PacketBuilder, Payload};
pub use seq::SeqNum;
pub use tcp::{TcpFlags, TcpHeader, TcpOption};
