//! ICMP echo request/reply (RFC 792) — the probe primitive of the
//! Bennett et al. baseline that this paper's techniques supersede.

use crate::checksum;
use crate::error::WireError;
use bytes::{BufMut, BytesMut};

/// Minimum ICMP header length (echo messages).
pub const MIN_HEADER_LEN: usize = 8;

/// ICMP message types this toolkit understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Echo request (8).
    EchoRequest,
    /// Destination unreachable (3); carried opaquely.
    DestUnreachable,
    /// Any other type.
    Other(u8),
}

impl IcmpType {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            other => IcmpType::Other(other),
        }
    }
}

/// An ICMP echo-style message header. For echo request/reply the
/// rest-of-header is (identifier, sequence); for other types the two
/// 16-bit words are carried through uninterpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Code (0 for echo).
    pub code: u8,
    /// Identifier (echo) or first rest-of-header word.
    pub ident: u16,
    /// Sequence number (echo) or second rest-of-header word. The Bennett
    /// baseline orders replies by this field.
    pub seq: u16,
}

impl IcmpHeader {
    /// Build an echo request with the given identifier and sequence.
    pub fn echo_request(ident: u16, seq: u16) -> Self {
        IcmpHeader {
            icmp_type: IcmpType::EchoRequest,
            code: 0,
            ident,
            seq,
        }
    }

    /// Build the matching echo reply.
    pub fn reply_to(&self) -> Self {
        IcmpHeader {
            icmp_type: IcmpType::EchoReply,
            code: 0,
            ident: self.ident,
            seq: self.seq,
        }
    }

    /// Encode header + payload with a valid checksum.
    pub fn encode(&self, payload: &[u8], out: &mut BytesMut) {
        let start = out.len();
        out.put_u8(self.icmp_type.to_u8());
        out.put_u8(self.code);
        out.put_u16(0); // checksum placeholder
        out.put_u16(self.ident);
        out.put_u16(self.seq);
        out.put_slice(payload);
        let ck = checksum::internet(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decode from `buf` (spanning the whole ICMP message). Returns the
    /// header and payload offset. Verifies the checksum.
    pub fn decode(buf: &[u8]) -> Result<(IcmpHeader, usize), WireError> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "icmp",
                needed: MIN_HEADER_LEN,
                available: buf.len(),
            });
        }
        if checksum::internet(buf) != 0 {
            let carried = u16::from_be_bytes([buf[2], buf[3]]);
            let mut zeroed = buf.to_vec();
            zeroed[2] = 0;
            zeroed[3] = 0;
            return Err(WireError::BadChecksum {
                layer: "icmp",
                expected: carried,
                computed: checksum::internet(&zeroed),
            });
        }
        Ok((
            IcmpHeader {
                icmp_type: IcmpType::from_u8(buf[0]),
                code: buf[1],
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                seq: u16::from_be_bytes([buf[6], buf[7]]),
            },
            MIN_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let h = IcmpHeader::echo_request(0x1234, 7);
        let mut buf = BytesMut::new();
        h.encode(b"ping-payload", &mut buf);
        let (back, off) = IcmpHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(&buf[off..], b"ping-payload");
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpHeader::echo_request(42, 99);
        let rep = req.reply_to();
        assert_eq!(rep.icmp_type, IcmpType::EchoReply);
        assert_eq!(rep.ident, 42);
        assert_eq!(rep.seq, 99);
    }

    #[test]
    fn corruption_detected() {
        let h = IcmpHeader::echo_request(1, 2);
        let mut buf = BytesMut::new();
        h.encode(&[], &mut buf);
        buf[6] ^= 0x01;
        assert!(matches!(
            IcmpHeader::decode(&buf),
            Err(WireError::BadChecksum { layer: "icmp", .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            IcmpHeader::decode(&[8, 0, 0]),
            Err(WireError::Truncated { layer: "icmp", .. })
        ));
    }

    #[test]
    fn type_wire_values() {
        for t in [
            IcmpType::EchoReply,
            IcmpType::EchoRequest,
            IcmpType::DestUnreachable,
            IcmpType::Other(0x7f),
        ] {
            assert_eq!(IcmpType::from_u8(t.to_u8()), t);
        }
    }
}
