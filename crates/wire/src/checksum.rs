//! The Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! Used by the IPv4 header, TCP (with pseudo-header) and ICMP. The
//! measurement tools must emit correctly-checksummed probes — remote
//! stacks silently drop anything else — and the capture analyzer verifies
//! checksums when establishing ground truth.

/// One's-complement sum accumulator for the Internet checksum.
///
/// Feed arbitrary byte slices with [`Accumulator::add_bytes`]; odd-length
/// slices are handled per RFC 1071 by padding the final byte with zero
/// *only at finish time for the final fragment*, so callers must feed
/// even-length chunks except for the last one. In this crate every layer
/// feeds a single contiguous slice, so the restriction never bites.
#[derive(Debug, Default, Clone, Copy)]
pub struct Accumulator {
    sum: u32,
    /// Carried odd byte from a previous `add_bytes` call, if any.
    pending: Option<u8>,
}

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        debug_assert!(self.pending.is_none(), "add_u16 after odd-length add_bytes");
        self.sum += u32::from(word);
    }

    /// Add a big-endian 32-bit word (as two 16-bit words).
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Add a byte slice, handling a straddling odd byte from the previous
    /// call so that arbitrary chunking produces the same checksum as one
    /// contiguous slice.
    pub fn add_bytes(&mut self, mut bytes: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = bytes.split_first() {
                self.sum += u32::from(u16::from_be_bytes([hi, lo]));
                bytes = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Fold carries and return the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the Internet checksum of a contiguous byte slice.
pub fn internet(bytes: &[u8]) -> u16 {
    let mut acc = Accumulator::new();
    acc.add_bytes(bytes);
    acc.finish()
}

/// Verify a slice whose checksum field is already in place: a correct
/// packet sums (including the embedded checksum) to zero.
pub fn verify(bytes: &[u8]) -> bool {
    internet(bytes) == 0
}

/// RFC 1624 incremental checksum update: given the old checksum and an
/// old/new 16-bit field value, return the new checksum without re-summing
/// the packet. Used by simulated middleboxes that rewrite single fields
/// (e.g. a NAT-ish load balancer rewriting the destination address).
pub fn incremental_update(old_checksum: u16, old_field: u16, new_field: u16) -> u16 {
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    let mut sum = u32::from(!old_checksum) + u32::from(!old_field) + u32::from(new_field);
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(internet(&data), !0xddf2u16);
    }

    #[test]
    fn zero_filled_buffer_checksums_to_ffff() {
        assert_eq!(internet(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0xab] is treated as the word 0xab00.
        assert_eq!(internet(&[0xab]), !0xab00u16);
    }

    #[test]
    fn empty_slice() {
        assert_eq!(internet(&[]), 0xffff);
    }

    #[test]
    fn verify_roundtrip() {
        let mut pkt = vec![
            0x45, 0x00, 0x00, 0x14, 0xde, 0xad, 0x00, 0x00, 0x40, 0x06, 0, 0, 1, 2, 3, 4, 5, 6, 7,
            8,
        ];
        let ck = internet(&pkt);
        pkt[10] = (ck >> 8) as u8;
        pkt[11] = ck as u8;
        assert!(verify(&pkt));
        pkt[0] ^= 0x01;
        assert!(!verify(&pkt));
    }

    #[test]
    fn chunked_equals_contiguous() {
        let data: Vec<u8> = (0u16..97).map(|x| (x * 31 % 251) as u8).collect();
        let whole = internet(&data);
        // Feed in awkward odd-sized chunks.
        let mut acc = Accumulator::new();
        for chunk in data.chunks(3) {
            acc.add_bytes(chunk);
        }
        assert_eq!(acc.finish(), whole);

        let mut acc = Accumulator::new();
        acc.add_bytes(&data[..1]);
        acc.add_bytes(&data[1..]);
        assert_eq!(acc.finish(), whole);
    }

    #[test]
    fn incremental_matches_recompute() {
        let mut pkt = vec![0u8; 20];
        for (i, b) in pkt.iter_mut().enumerate() {
            *b = (i * 7 + 1) as u8;
        }
        // Zero out a checksum field at offset 10..12, compute, then mutate
        // the word at offset 4..6 and compare incremental vs full.
        pkt[10] = 0;
        pkt[11] = 0;
        let old_ck = internet(&pkt);
        let old_field = u16::from_be_bytes([pkt[4], pkt[5]]);
        let new_field = 0xbeef;
        pkt[4] = 0xbe;
        pkt[5] = 0xef;
        let new_ck = internet(&pkt);
        assert_eq!(incremental_update(old_ck, old_field, new_field), new_ck);
    }

    #[test]
    fn add_u32_equals_bytes() {
        let mut a = Accumulator::new();
        a.add_u32(0xdead_beef);
        let mut b = Accumulator::new();
        b.add_bytes(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(a.finish(), b.finish());
    }
}
