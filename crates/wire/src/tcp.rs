//! TCP header encode/decode (RFC 793), including the options the
//! measurement tools read or clamp (MSS, window scale, SACK, timestamps).
//!
//! The TCP checksum covers a pseudo-header, so encoding and verification
//! take the IP source/destination addresses as parameters.

use crate::checksum::Accumulator;
use crate::error::WireError;
use crate::ipv4::Ipv4Addr4;
use crate::seq::SeqNum;
use bytes::{BufMut, BytesMut};
use std::fmt;

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
///
/// A tiny bitflags implementation — pulled in-crate to stay within the
/// allowed dependency set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN: sender is done sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Set union.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// Whether every flag in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag in `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A decoded TCP option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2). The Data Transfer Test advertises a
    /// clamped MSS to force small segments.
    Mss(u16),
    /// Window scale shift (kind 3).
    WindowScale(u8),
    /// SACK permitted (kind 4).
    SackPermitted,
    /// SACK blocks (kind 5) — used by the Bennett-style baseline metric.
    Sack(Vec<(SeqNum, SeqNum)>),
    /// Timestamps (kind 8): TSval, TSecr.
    Timestamp(u32, u32),
    /// Any other option, carried opaquely (kind, payload).
    Unknown(u8, Vec<u8>),
}

impl TcpOption {
    fn encoded_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack(blocks) => 2 + blocks.len() * 8,
            TcpOption::Timestamp(..) => 10,
            TcpOption::Unknown(_, data) => 2 + data.len(),
        }
    }

    fn encode(&self, out: &mut BytesMut) {
        match self {
            TcpOption::Mss(mss) => {
                out.put_u8(2);
                out.put_u8(4);
                out.put_u16(*mss);
            }
            TcpOption::WindowScale(shift) => {
                out.put_u8(3);
                out.put_u8(3);
                out.put_u8(*shift);
            }
            TcpOption::SackPermitted => {
                out.put_u8(4);
                out.put_u8(2);
            }
            TcpOption::Sack(blocks) => {
                out.put_u8(5);
                out.put_u8((2 + blocks.len() * 8) as u8);
                for (left, right) in blocks {
                    out.put_u32(left.raw());
                    out.put_u32(right.raw());
                }
            }
            TcpOption::Timestamp(val, ecr) => {
                out.put_u8(8);
                out.put_u8(10);
                out.put_u32(*val);
                out.put_u32(*ecr);
            }
            TcpOption::Unknown(kind, data) => {
                out.put_u8(*kind);
                out.put_u8((2 + data.len()) as u8);
                out.put_slice(data);
            }
        }
    }
}

/// A decoded TCP header plus its options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: SeqNum,
    /// Acknowledgment number (meaningful when ACK flag set).
    pub ack: SeqNum,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Advertised receive window (unscaled wire value).
    pub window: u16,
    /// Urgent pointer (carried, unused by this toolkit).
    pub urgent: u16,
    /// Options in wire order.
    pub options: Vec<TcpOption>,
}

impl Default for TcpHeader {
    fn default() -> Self {
        TcpHeader {
            src_port: 0,
            dst_port: 0,
            seq: SeqNum(0),
            ack: SeqNum(0),
            flags: TcpFlags::EMPTY,
            window: 65535,
            urgent: 0,
            options: Vec::new(),
        }
    }
}

impl TcpHeader {
    /// Length of the encoded header including padded options.
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(TcpOption::encoded_len).sum();
        MIN_HEADER_LEN + opt_len.div_ceil(4) * 4
    }

    /// Find the MSS option, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Find the SACK blocks, if present.
    pub fn sack_blocks(&self) -> Option<&[(SeqNum, SeqNum)]> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Sack(blocks) => Some(blocks.as_slice()),
            _ => None,
        })
    }

    /// Encode header + `payload` with a valid checksum over the
    /// pseudo-header for `src`/`dst`.
    pub fn encode(&self, src: Ipv4Addr4, dst: Ipv4Addr4, payload: &[u8], out: &mut BytesMut) {
        let hlen = self.header_len();
        debug_assert!(hlen / 4 <= 0xf, "too many TCP options");
        let start = out.len();
        out.put_u16(self.src_port);
        out.put_u16(self.dst_port);
        out.put_u32(self.seq.raw());
        out.put_u32(self.ack.raw());
        out.put_u8(((hlen / 4) as u8) << 4);
        out.put_u8(self.flags.0);
        out.put_u16(self.window);
        out.put_u16(0); // checksum placeholder
        out.put_u16(self.urgent);
        for opt in &self.options {
            opt.encode(out);
        }
        // Pad options to a 4-byte boundary with EOL (0).
        while !(out.len() - start).is_multiple_of(4) {
            out.put_u8(0);
        }
        out.put_slice(payload);

        let seg_len = out.len() - start;
        let mut acc = Accumulator::new();
        pseudo_header(&mut acc, src, dst, seg_len);
        acc.add_bytes(&out[start..]);
        let ck = acc.finish();
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decode a TCP segment (`buf` spans exactly the TCP header +
    /// payload). Returns the header and the payload offset. The checksum
    /// is verified against the pseudo-header.
    pub fn decode(
        buf: &[u8],
        src: Ipv4Addr4,
        dst: Ipv4Addr4,
    ) -> Result<(TcpHeader, usize), WireError> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "tcp",
                needed: MIN_HEADER_LEN,
                available: buf.len(),
            });
        }
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < MIN_HEADER_LEN {
            return Err(WireError::BadField {
                layer: "tcp",
                field: "data_offset",
                value: (data_off / 4) as u32,
            });
        }
        if buf.len() < data_off {
            return Err(WireError::Truncated {
                layer: "tcp",
                needed: data_off,
                available: buf.len(),
            });
        }
        // Verify checksum over pseudo-header + whole segment.
        let mut acc = Accumulator::new();
        pseudo_header(&mut acc, src, dst, buf.len());
        acc.add_bytes(buf);
        if acc.finish() != 0 {
            let carried = u16::from_be_bytes([buf[16], buf[17]]);
            let mut zeroed = buf.to_vec();
            zeroed[16] = 0;
            zeroed[17] = 0;
            let mut acc = Accumulator::new();
            pseudo_header(&mut acc, src, dst, buf.len());
            acc.add_bytes(&zeroed);
            return Err(WireError::BadChecksum {
                layer: "tcp",
                expected: carried,
                computed: acc.finish(),
            });
        }
        let options = decode_options(&buf[MIN_HEADER_LEN..data_off])?;
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: SeqNum(u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]])),
                ack: SeqNum(u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]])),
                flags: TcpFlags(buf[13] & 0x3f),
                window: u16::from_be_bytes([buf[14], buf[15]]),
                urgent: u16::from_be_bytes([buf[18], buf[19]]),
                options,
            },
            data_off,
        ))
    }
}

fn pseudo_header(acc: &mut Accumulator, src: Ipv4Addr4, dst: Ipv4Addr4, seg_len: usize) {
    acc.add_u32(src.to_u32());
    acc.add_u32(dst.to_u32());
    acc.add_u16(6); // protocol TCP
    acc.add_u16(seg_len as u16);
}

fn decode_options(mut buf: &[u8]) -> Result<Vec<TcpOption>, WireError> {
    let mut opts = Vec::new();
    while let Some((&kind, rest)) = buf.split_first() {
        match kind {
            0 => break, // EOL: remainder is padding
            1 => {
                buf = rest; // NOP — not materialized; it's pure padding
                continue;
            }
            _ => {}
        }
        let Some(&len) = rest.first() else {
            return Err(WireError::BadOption { kind, len: 0 });
        };
        let len = usize::from(len);
        if len < 2 || buf.len() < len {
            return Err(WireError::BadOption {
                kind,
                len: len as u8,
            });
        }
        let body = &buf[2..len];
        let opt = match (kind, body.len()) {
            (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
            (3, 1) => TcpOption::WindowScale(body[0]),
            (4, 0) => TcpOption::SackPermitted,
            (5, n) if n % 8 == 0 => {
                let blocks = body
                    .chunks_exact(8)
                    .map(|c| {
                        (
                            SeqNum(u32::from_be_bytes([c[0], c[1], c[2], c[3]])),
                            SeqNum(u32::from_be_bytes([c[4], c[5], c[6], c[7]])),
                        )
                    })
                    .collect();
                TcpOption::Sack(blocks)
            }
            (8, 8) => TcpOption::Timestamp(
                u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
            ),
            (2 | 3 | 4 | 5 | 8, _) => {
                return Err(WireError::BadOption {
                    kind,
                    len: len as u8,
                })
            }
            _ => TcpOption::Unknown(kind, body.to_vec()),
        };
        opts.push(opt);
        buf = &buf[len..];
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr4 = Ipv4Addr4::new(1, 2, 3, 4);
    const DST: Ipv4Addr4 = Ipv4Addr4::new(5, 6, 7, 8);

    fn sample() -> TcpHeader {
        TcpHeader {
            src_port: 4321,
            dst_port: 80,
            seq: SeqNum(0xdead_beef),
            ack: SeqNum(0x0102_0304),
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 8192,
            urgent: 0,
            options: vec![
                TcpOption::Mss(536),
                TcpOption::SackPermitted,
                TcpOption::WindowScale(3),
            ],
        }
    }

    #[test]
    fn roundtrip_with_options_and_payload() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, b"hello", &mut buf);
        let (back, off) = TcpHeader::decode(&buf, SRC, DST).unwrap();
        assert_eq!(back, h);
        assert_eq!(&buf[off..], b"hello");
    }

    #[test]
    fn roundtrip_no_options() {
        let h = TcpHeader {
            options: vec![],
            ..sample()
        };
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, &[], &mut buf);
        assert_eq!(buf.len(), MIN_HEADER_LEN);
        let (back, off) = TcpHeader::decode(&buf, SRC, DST).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, MIN_HEADER_LEN);
    }

    #[test]
    fn checksum_binds_pseudo_header() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, b"x", &mut buf);
        // Decoding with a different destination must fail the checksum.
        assert!(matches!(
            TcpHeader::decode(&buf, SRC, Ipv4Addr4::new(9, 9, 9, 9)),
            Err(WireError::BadChecksum { layer: "tcp", .. })
        ));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, b"payload", &mut buf);
        let n = buf.len();
        buf[n - 1] ^= 0x40;
        assert!(matches!(
            TcpHeader::decode(&buf, SRC, DST),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn sack_blocks_roundtrip() {
        let h = TcpHeader {
            options: vec![TcpOption::Sack(vec![
                (SeqNum(100), SeqNum(200)),
                (SeqNum(300), SeqNum(400)),
            ])],
            ..sample()
        };
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, &[], &mut buf);
        let (back, _) = TcpHeader::decode(&buf, SRC, DST).unwrap();
        assert_eq!(
            back.sack_blocks().unwrap(),
            &[(SeqNum(100), SeqNum(200)), (SeqNum(300), SeqNum(400))]
        );
    }

    #[test]
    fn timestamp_roundtrip() {
        let h = TcpHeader {
            options: vec![TcpOption::Timestamp(0x11223344, 0x55667788)],
            ..sample()
        };
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, &[], &mut buf);
        let (back, _) = TcpHeader::decode(&buf, SRC, DST).unwrap();
        assert_eq!(back.options, h.options);
    }

    #[test]
    fn unknown_option_roundtrip() {
        let h = TcpHeader {
            options: vec![TcpOption::Unknown(0xfe, vec![1, 2, 3])],
            ..sample()
        };
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, &[], &mut buf);
        let (back, _) = TcpHeader::decode(&buf, SRC, DST).unwrap();
        assert_eq!(back.options, h.options);
    }

    #[test]
    fn malformed_option_len_rejected() {
        let h = TcpHeader {
            options: vec![],
            ..sample()
        };
        let mut buf = BytesMut::new();
        h.encode(SRC, DST, &[], &mut buf);
        // Manually splice a bad option: claim data_offset includes 4 bytes
        // of options, put kind=2 len=10 (truncated).
        let mut raw = buf.to_vec();
        raw[12] = 6 << 4; // 24-byte header
        raw.splice(20..20, [2u8, 10, 0, 0]);
        // Fix checksum so we reach option parsing.
        raw[16] = 0;
        raw[17] = 0;
        let mut acc = Accumulator::new();
        super::pseudo_header(&mut acc, SRC, DST, raw.len());
        acc.add_bytes(&raw);
        let ck = acc.finish();
        raw[16..18].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            TcpHeader::decode(&raw, SRC, DST),
            Err(WireError::BadOption { kind: 2, .. })
        ));
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "-");
        assert_eq!(TcpFlags::RST.to_string(), "RST");
    }

    #[test]
    fn flags_set_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
        assert!(f.intersects(TcpFlags::ACK | TcpFlags::RST));
        assert!(!f.intersects(TcpFlags::FIN));
    }

    #[test]
    fn mss_accessor() {
        assert_eq!(sample().mss(), Some(536));
        let h = TcpHeader {
            options: vec![],
            ..sample()
        };
        assert_eq!(h.mss(), None);
    }
}
