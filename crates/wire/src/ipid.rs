//! The 16-bit IP identification (IPID) space.
//!
//! The Dual Connection Test (§III-C of the paper) infers the order in
//! which a remote host *transmitted* two packets from their IPID values,
//! under the hypothesis that the host uses the traditional
//! single-global-counter generator. Because the space is only 16 bits it
//! wraps quickly (a busy server wraps in seconds), so all comparisons use
//! serial-number arithmetic, and the paper's validation step must
//! tolerate benign wraparound while still flagging random generators.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Add;

/// An IP identification field value: a point on the 16-bit circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IpId(pub u16);

impl IpId {
    /// Construct from a raw wire value.
    pub const fn new(v: u16) -> Self {
        IpId(v)
    }

    /// Raw wire value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Signed circular distance from `self` to `other`: positive iff
    /// `other` was generated later by a monotone counter, assuming fewer
    /// than 2^15 packets were sent in between. This is the exact quantity
    /// the paper's "difference of the IPID values between each pair of
    /// adjacent packets" analysis compares (§III-C).
    pub fn distance_to(self, other: IpId) -> i16 {
        other.0.wrapping_sub(self.0) as i16
    }

    /// Whether a monotone counter would emit `self` strictly before
    /// `other` (modulo wraparound, which "is easily detected" per §III-A).
    pub fn before(self, other: IpId) -> bool {
        self.distance_to(other) > 0
    }
}

impl PartialOrd for IpId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IpId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance_to(*other).cmp(&0).reverse()
    }
}

impl Add<u16> for IpId {
    type Output = IpId;
    fn add(self, rhs: u16) -> IpId {
        IpId(self.0.wrapping_add(rhs))
    }
}

impl From<u16> for IpId {
    fn from(v: u16) -> Self {
        IpId(v)
    }
}

impl fmt::Display for IpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_order() {
        assert!(IpId(1).before(IpId(2)));
        assert!(!IpId(2).before(IpId(1)));
        assert!(!IpId(5).before(IpId(5)));
    }

    #[test]
    fn wraparound_order() {
        let a = IpId(0xfffe);
        let b = IpId(0x0003); // 5 increments later across the wrap
        assert!(a.before(b));
        assert!(!b.before(a));
        assert_eq!(a.distance_to(b), 5);
        assert_eq!(b.distance_to(a), -5);
    }

    #[test]
    fn half_space_is_the_horizon() {
        let a = IpId(0);
        assert!(a.before(IpId(0x7fff)));
        // Exactly half the space away is "behind" by convention
        // (distance is i16::MIN, negative).
        assert!(!a.before(IpId(0x8000)));
    }

    #[test]
    fn add_wraps() {
        assert_eq!(IpId(0xffff) + 1, IpId(0));
        assert_eq!(IpId(0xfff0) + 0x20, IpId(0x0010));
    }

    #[test]
    fn ord_sorts_serially() {
        let mut v = vec![IpId(2), IpId(0xffff), IpId(0), IpId(1)];
        v.sort();
        assert_eq!(v, vec![IpId(0xffff), IpId(0), IpId(1), IpId(2)]);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(IpId(0xbeef).to_string(), "0xbeef");
    }
}
