//! Error type shared by all decoders in this crate.

use std::fmt;

/// Error produced when decoding a malformed packet.
///
/// Decoders never panic on arbitrary input; they classify the failure so
/// callers (e.g. a capture analyzer walking a hostile trace) can account
/// for malformed frames instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header requires.
    Truncated {
        /// Protocol layer that was being decoded.
        layer: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A version or header-length field has an unsupported value.
    BadField {
        /// Protocol layer that was being decoded.
        layer: &'static str,
        /// Name of the offending field.
        field: &'static str,
        /// Raw value observed.
        value: u32,
    },
    /// The checksum did not verify.
    BadChecksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
        /// Checksum carried by the packet.
        expected: u16,
        /// Checksum computed over the received bytes.
        computed: u16,
    },
    /// A TCP option was malformed (bad length, truncated, ...).
    BadOption {
        /// Option kind byte.
        kind: u8,
        /// Option length byte, if one was present.
        len: u8,
    },
    /// The IP protocol number is not one this crate understands.
    UnsupportedProtocol(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer}: truncated packet (need {needed} bytes, have {available})"
            ),
            WireError::BadField {
                layer,
                field,
                value,
            } => {
                write!(f, "{layer}: unsupported value {value:#x} in field {field}")
            }
            WireError::BadChecksum {
                layer,
                expected,
                computed,
            } => write!(
                f,
                "{layer}: checksum mismatch (carried {expected:#06x}, computed {computed:#06x})"
            ),
            WireError::BadOption { kind, len } => {
                write!(f, "tcp: malformed option kind {kind} len {len}")
            }
            WireError::UnsupportedProtocol(p) => write!(f, "ip: unsupported protocol {p}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("ipv4"));
        assert!(s.contains("20"));
        assert!(s.contains('3'));
    }

    #[test]
    fn checksum_error_formats_hex() {
        let e = WireError::BadChecksum {
            layer: "tcp",
            expected: 0xbeef,
            computed: 0x1234,
        };
        let s = e.to_string();
        assert!(s.contains("0xbeef"));
        assert!(s.contains("0x1234"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            WireError::UnsupportedProtocol(99),
            WireError::UnsupportedProtocol(99)
        );
        assert_ne!(
            WireError::UnsupportedProtocol(99),
            WireError::UnsupportedProtocol(98)
        );
    }
}
