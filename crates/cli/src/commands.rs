//! Subcommand implementations.

use crate::args::{ArgError, Args};
use reorder_core::metrics::ReorderEstimate;
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{self, Scenario};
use reorder_core::techniques::{
    DataTransferTest, DualConnectionTest, SingleConnectionTest, SynTest,
};
use reorder_core::validate::validate_run;
use reorder_core::{MeasurementRun, ProbeError};
use reorder_netsim::pipes::{ArqConfig, CrossTraffic};
use reorder_tcpstack::HostPersonality;
use std::time::Duration;

fn personality(name: &str) -> Result<HostPersonality, ArgError> {
    Ok(match name {
        "freebsd4" => HostPersonality::freebsd4(),
        "linux22" => HostPersonality::linux22(),
        "linux24" => HostPersonality::linux24(),
        "openbsd3" => HostPersonality::openbsd3(),
        "solaris8" => HostPersonality::solaris8(),
        "windows2000" => HostPersonality::windows2000(),
        "hardened" => HostPersonality::hardened(),
        other => return Err(ArgError(format!("unknown personality `{other}`"))),
    })
}

fn fmt_estimate(label: &str, e: ReorderEstimate) -> String {
    let (lo, hi) = e.wilson_ci(1.96);
    format!(
        "{label}: {:.2}% [{:.2}%, {:.2}%] ({}/{})",
        e.rate() * 100.0,
        lo * 100.0,
        hi * 100.0,
        e.reordered,
        e.total
    )
}

fn run_technique(
    technique: &str,
    sc: &mut Scenario,
    cfg: TestConfig,
) -> Result<MeasurementRun, ProbeError> {
    match technique {
        "single" => SingleConnectionTest::reversed(cfg).run(&mut sc.prober, sc.target, 80),
        "dual" => DualConnectionTest::new(cfg).run(&mut sc.prober, sc.target, 80),
        "syn" => SynTest::new(cfg).run(&mut sc.prober, sc.target, 80),
        "transfer" => {
            DataTransferTest::new(TestConfig::default()).run(&mut sc.prober, sc.target, 80)
        }
        other => Err(ProbeError::HostUnsuitable(format!(
            "unknown technique `{other}`"
        ))),
    }
}

/// `reorder measure`.
pub fn measure(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "technique",
        "fwd",
        "rev",
        "samples",
        "gap-us",
        "personality",
        "lb",
        "seed",
    ])?;
    let technique = args.get("technique").unwrap_or("single").to_string();
    let fwd: f64 = args.get_or("fwd", 0.10)?;
    let rev: f64 = args.get_or("rev", 0.05)?;
    let samples: usize = args.get_or("samples", 100)?;
    let gap_us: u64 = args.get_or("gap-us", 0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let backends: usize = args.get_or("lb", 1)?;
    let pers = personality(args.get("personality").unwrap_or("freebsd4"))?;

    let mut sc = if backends > 1 {
        scenario::load_balanced(fwd, rev, backends, pers, seed)
    } else {
        scenario::validation_rig_with(fwd, rev, pers, seed)
    };
    let cfg = TestConfig {
        samples,
        gap: Duration::from_micros(gap_us),
        ..TestConfig::default()
    };
    println!(
        "path: swap fwd {:.1}% / rev {:.1}%, {} backend(s), seed {}",
        fwd * 100.0,
        rev * 100.0,
        backends,
        seed
    );
    match run_technique(&technique, &mut sc, cfg) {
        Ok(run) => {
            println!("technique: {technique}, {} samples", run.samples.len());
            println!("  {}", fmt_estimate("forward", run.fwd_estimate()));
            println!("  {}", fmt_estimate("reverse", run.rev_estimate()));
            Ok(())
        }
        Err(e) => Err(ArgError(format!("measurement failed: {e}"))),
    }
}

/// `reorder profile`.
pub fn profile(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["mechanism", "samples", "max-us", "step-us", "seed", "csv"])?;
    let mechanism = args.get("mechanism").unwrap_or("striping").to_string();
    let samples: usize = args.get_or("samples", 300)?;
    let max_us: u64 = args.get_or("max-us", 300)?;
    let step_us: u64 = args.get_or("step-us", 25)?.max(1);
    let seed: u64 = args.get_or("seed", 1)?;
    let csv = args.switch("csv");

    if csv {
        println!("gap_us,reordered,samples,rate");
    } else {
        println!("gap profile over `{mechanism}` path ({samples} samples/point)");
        println!("{:>8} {:>8}  bar", "gap(us)", "rate");
    }
    let mut gap = 0;
    while gap <= max_us {
        let mut sc = match mechanism.as_str() {
            "striping" => scenario::striped_path(CrossTraffic::backbone(), seed + gap),
            "multipath" => scenario::multipath_path(Duration::from_micros(80), seed + gap),
            "arq" => scenario::wireless_path(ArqConfig::default(), seed + gap),
            other => return Err(ArgError(format!("unknown mechanism `{other}`"))),
        };
        let cfg = TestConfig {
            samples,
            gap: Duration::from_micros(gap),
            pace: Duration::from_millis(2),
            reply_timeout: Duration::from_millis(900),
        };
        let run = DualConnectionTest::new(cfg)
            .run(&mut sc.prober, sc.target, 80)
            .map_err(|e| ArgError(format!("measurement failed at gap {gap}us: {e}")))?;
        let est = run.fwd_estimate();
        if csv {
            println!("{gap},{},{},{:.6}", est.reordered, est.total, est.rate());
        } else {
            println!(
                "{gap:>8} {:>7.2}%  {}",
                est.rate() * 100.0,
                "#".repeat((est.rate() * 300.0).round() as usize)
            );
        }
        gap += step_us;
    }
    Ok(())
}

/// `reorder survey`.
pub fn survey(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["hosts", "rounds", "seed"])?;
    let hosts: usize = args.get_or("hosts", 10)?;
    let rounds: usize = args.get_or("rounds", 3)?;
    let seed: u64 = args.get_or("seed", 77)?;
    let specs = scenario::population(hosts.min(15), hosts.saturating_sub(15), seed);
    println!("{:<26} {:>9} {:>9} {:>9}", "host", "fwd", "rev", "status");
    for (i, spec) in specs.iter().take(hosts).enumerate() {
        let cfg = TestConfig::samples(15);
        let mut fwd = ReorderEstimate::new(0, 0);
        let mut rev = ReorderEstimate::new(0, 0);
        let mut failures = 0;
        for round in 0..rounds {
            let mut sc = scenario::internet_host(spec, seed + (i * 100 + round) as u64);
            match SingleConnectionTest::reversed(cfg).run(&mut sc.prober, sc.target, 80) {
                Ok(run) => {
                    fwd = fwd.merge(&run.fwd_estimate());
                    rev = rev.merge(&run.rev_estimate());
                }
                Err(_) => failures += 1,
            }
        }
        println!(
            "{:<26} {:>8.2}% {:>8.2}% {:>9}",
            spec.name,
            fwd.rate() * 100.0,
            rev.rate() * 100.0,
            if failures == rounds {
                "unreachable"
            } else {
                "ok"
            }
        );
    }
    Ok(())
}

/// `reorder validate`.
pub fn validate(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["fwd", "rev", "samples", "seed"])?;
    let fwd: f64 = args.get_or("fwd", 0.10)?;
    let rev: f64 = args.get_or("rev", 0.05)?;
    let samples: usize = args.get_or("samples", 100)?;
    let seed: u64 = args.get_or("seed", 1)?;
    for technique in ["single", "dual", "syn"] {
        let mut sc = scenario::validation_rig(fwd, rev, seed);
        let run = run_technique(technique, &mut sc, TestConfig::samples(samples))
            .map_err(|e| ArgError(format!("{technique}: {e}")))?;
        let rep = validate_run(
            &run,
            &sc.merged_server_rx(),
            &sc.merged_server_tx(),
            &sc.prober_trace(),
        );
        println!(
            "{technique:<9} fwd: {}/{} verdicts match trace (err {:+}); rev: {}/{} (err {:+})",
            rep.fwd.agree,
            rep.fwd.checked,
            rep.fwd.count_error(),
            rep.rev.agree,
            rep.rev.checked,
            rep.rev.count_error(),
        );
    }
    Ok(())
}

/// `reorder pcap`.
pub fn pcap(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["out", "fwd", "rev", "samples", "seed"])?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out FILE is required".into()))?
        .to_string();
    let fwd: f64 = args.get_or("fwd", 0.10)?;
    let rev: f64 = args.get_or("rev", 0.05)?;
    let samples: usize = args.get_or("samples", 50)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut sc = scenario::validation_rig(fwd, rev, seed);
    let run = SingleConnectionTest::reversed(TestConfig::samples(samples))
        .run(&mut sc.prober, sc.target, 80)
        .map_err(|e| ArgError(format!("measurement failed: {e}")))?;
    let trace = sc.merged_server_rx();
    reorder_netsim::pcap::write_pcap(&trace, std::path::Path::new(&out))
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!(
        "wrote {} packets (server-side receive trace of {} samples) to {out}",
        trace.len(),
        run.samples.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn measure_runs_and_reports() {
        measure(&parse("measure --samples 20 --seed 3")).expect("measure");
    }

    #[test]
    fn measure_rejects_unknown_option() {
        assert!(measure(&parse("measure --bogus 1")).is_err());
    }

    #[test]
    fn measure_dual_against_openbsd_fails_cleanly() {
        let e = measure(&parse(
            "measure --technique dual --personality openbsd3 --samples 5",
        ))
        .unwrap_err();
        assert!(e.0.contains("unsuitable") || e.0.contains("non-monotonic"));
    }

    #[test]
    fn personality_names_resolve() {
        for n in [
            "freebsd4",
            "linux22",
            "linux24",
            "openbsd3",
            "solaris8",
            "windows2000",
            "hardened",
        ] {
            personality(n).unwrap();
        }
        assert!(personality("beos").is_err());
    }

    #[test]
    fn validate_command_runs() {
        validate(&parse("validate --samples 20 --seed 5")).expect("validate");
    }

    #[test]
    fn profile_command_runs_small() {
        profile(&parse(
            "profile --mechanism multipath --samples 30 --max-us 50 --step-us 50",
        ))
        .expect("profile");
    }

    #[test]
    fn survey_command_runs_small() {
        survey(&parse("survey --hosts 3 --rounds 1")).expect("survey");
    }

    #[test]
    fn pcap_requires_out() {
        assert!(pcap(&parse("pcap")).is_err());
    }

    #[test]
    fn pcap_writes_file() {
        let path = std::env::temp_dir().join("reorder_cli_test.pcap");
        let cmd = format!("pcap --out {} --samples 5 --seed 2", path.display());
        pcap(&parse(&cmd)).expect("pcap");
        let bytes = std::fs::read(&path).unwrap();
        assert!(reorder_netsim::pcap::parse_pcap(&bytes).unwrap().len() > 10);
        let _ = std::fs::remove_file(&path);
    }
}
