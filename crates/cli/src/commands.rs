//! Subcommand implementations.

use crate::args::{ArgError, Args};
use reorder_campaign::{
    atomic_write, AtomicFile, CampaignOptions, CampaignSpec, InProcessRunner, ProcessRunner,
    ShardRunner,
};
use reorder_core::metrics::ReorderEstimate;
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{self, SimVersion};
use reorder_core::validate::validate_run;
use reorder_core::{technique, Measurer, Session, TestKind};
use reorder_netsim::pipes::{ArqConfig, CrossTraffic};
use reorder_survey::{
    run_campaign, Budget, CampaignConfig, CampaignTelemetry, PopulationModel, ShardAggregator,
    ShardState, TechniqueChoice, TelemetryMode,
};
use reorder_tcpstack::HostPersonality;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn personality(name: &str) -> Result<HostPersonality, ArgError> {
    Ok(match name {
        "freebsd4" => HostPersonality::freebsd4(),
        "linux22" => HostPersonality::linux22(),
        "linux24" => HostPersonality::linux24(),
        "openbsd3" => HostPersonality::openbsd3(),
        "solaris8" => HostPersonality::solaris8(),
        "windows2000" => HostPersonality::windows2000(),
        "hardened" => HostPersonality::hardened(),
        other => return Err(ArgError(format!("unknown personality `{other}`"))),
    })
}

/// The techniques `measure` accepts (no `auto` — a canned rig has no
/// amenability question). Parsing goes through `TestKind::from_str`,
/// the registry's one string-keyed entry point; an unknown value is an
/// [`ArgError`] listing the accepted set, never silently ignored. Both
/// single-connection variants are explicit: `single` is the in-order
/// variant, `single-rev` the delayed-ACK-proof reversed one.
fn measure_technique(name: &str) -> Result<TestKind, ArgError> {
    name.parse()
        .map_err(|e: reorder_core::UnknownTestKind| ArgError(e.to_string()))
}

fn fmt_estimate(label: &str, e: ReorderEstimate) -> String {
    let (lo, hi) = e.wilson_ci(1.96);
    format!(
        "{label}: {:.2}% [{:.2}%, {:.2}%] ({}/{})",
        e.rate() * 100.0,
        lo * 100.0,
        hi * 100.0,
        e.reordered,
        e.total
    )
}

/// `reorder measure`.
pub fn measure(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "technique",
        "fwd",
        "rev",
        "samples",
        "gap-us",
        "personality",
        "lb",
        "seed",
    ])?;
    let kind = measure_technique(args.get("technique").unwrap_or("single"))?;
    let fwd: f64 = args.get_or("fwd", 0.10)?;
    let rev: f64 = args.get_or("rev", 0.05)?;
    let samples: usize = args.get_or("samples", 100)?;
    let gap_us: u64 = args.get_or("gap-us", 0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let backends: usize = args.get_or("lb", 1)?;
    let pers = personality(args.get("personality").unwrap_or("freebsd4"))?;

    let mut sc = if backends > 1 {
        scenario::load_balanced(fwd, rev, backends, pers, seed)
    } else {
        scenario::validation_rig_with(fwd, rev, pers, seed)
    };
    let cfg = if kind == TestKind::DataTransfer {
        TestConfig::default() // object size, not `samples`, sets the count
    } else {
        TestConfig {
            samples,
            gap: Duration::from_micros(gap_us),
            ..TestConfig::default()
        }
    };
    println!(
        "path: swap fwd {:.1}% / rev {:.1}%, {} backend(s), seed {}",
        fwd * 100.0,
        rev * 100.0,
        backends,
        seed
    );
    let mut session = Session::new(&mut sc.prober, sc.target, 80);
    match Measurer::new(kind).with_config(cfg).run(&mut session) {
        Ok(m) => {
            println!("technique: {kind}, {} samples", m.samples);
            println!("  {}", fmt_estimate("forward", m.fwd));
            println!("  {}", fmt_estimate("reverse", m.rev));
            Ok(())
        }
        Err(e) => Err(ArgError(format!("measurement failed: {e}"))),
    }
}

/// Parse `--sim-version` (campaign format v1 = replayed cross
/// traffic, v2 = stationary O(1) draws; default 2).
fn parse_sim_version(args: &Args) -> Result<SimVersion, ArgError> {
    args.get("sim-version")
        .map_or(Ok(SimVersion::default()), |v| v.parse().map_err(ArgError))
}

/// Parse `--workers` for every worker-taking command: `auto` (the
/// default — resolve to all available cores via
/// `std::thread::available_parallelism`) or a positive thread count.
/// `0` and anything unparseable get an error naming the accepted
/// forms rather than being silently coerced.
fn parse_workers(args: &Args) -> Result<usize, ArgError> {
    match args.get("workers") {
        // A bare `--workers` parses as a switch; don't let it silently
        // mean auto.
        None if args.switch("workers") => Err(ArgError(
            "--workers needs a value (accepted: auto | positive thread count)".into(),
        )),
        None | Some("auto") => Ok(0), // engine convention: 0 = all cores
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ArgError(format!(
                "invalid --workers `{v}` (accepted: auto | positive thread count)"
            ))),
        },
    }
}

/// `reorder profile`. Sweep points are independent path realizations
/// (each gap seeds its own scenario), so the sweep fans out across
/// `--workers` threads; results print in gap order regardless of
/// completion order, making the output identical to a serial sweep.
pub fn profile(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "mechanism",
        "samples",
        "max-us",
        "step-us",
        "seed",
        "sim-version",
        "workers",
        "csv",
    ])?;
    let mechanism = args.get("mechanism").unwrap_or("striping").to_string();
    if !["striping", "multipath", "arq"].contains(&mechanism.as_str()) {
        return Err(ArgError(format!("unknown mechanism `{mechanism}`")));
    }
    let samples: usize = args.get_or("samples", 300)?;
    let max_us: u64 = args.get_or("max-us", 300)?;
    let step_us: u64 = args.get_or("step-us", 25)?.max(1);
    let seed: u64 = args.get_or("seed", 1)?;
    let sim_version = parse_sim_version(args)?;
    let workers = parse_workers(args)?;
    let csv = args.switch("csv");

    if csv {
        println!("gap_us,reordered,samples,rate");
    } else {
        println!("gap profile over `{mechanism}` path ({samples} samples/point)");
        println!("{:>8} {:>8}  bar", "gap(us)", "rate");
    }
    let gaps: Vec<u64> = (0..=max_us / step_us).map(|i| i * step_us).collect();
    let mechanism = &mechanism;
    let mut sweep_err: Option<ArgError> = None;
    reorder_survey::scheduler::run_sharded(
        gaps.len(),
        workers,
        |_| {
            |i: usize| -> Result<ReorderEstimate, String> {
                let gap = gaps[i];
                let mut sc = match mechanism.as_str() {
                    "striping" => scenario::striped_path_with(
                        2,
                        1_000_000_000,
                        CrossTraffic::backbone(),
                        HostPersonality::freebsd4(),
                        sim_version,
                        seed + gap,
                    ),
                    "multipath" => scenario::multipath_path(Duration::from_micros(80), seed + gap),
                    "arq" => scenario::wireless_path(ArqConfig::default(), seed + gap),
                    _ => unreachable!("mechanism validated above"),
                };
                let cfg = TestConfig {
                    samples,
                    gap: Duration::from_micros(gap),
                    pace: Duration::from_millis(2),
                    reply_timeout: Duration::from_millis(900),
                    ..TestConfig::default()
                };
                let mut session = Session::new(&mut sc.prober, sc.target, 80);
                Measurer::new(TestKind::DualConnection)
                    .with_config(cfg)
                    .run(&mut session)
                    .map(|m| m.fwd)
                    .map_err(|e| format!("measurement failed at gap {gap}us: {e}"))
            }
        },
        |i, outcome| {
            let gap = gaps[i];
            match outcome {
                Ok(est) => {
                    if csv {
                        println!("{gap},{},{},{:.6}", est.reordered, est.total, est.rate());
                    } else {
                        println!(
                            "{gap:>8} {:>7.2}%  {}",
                            est.rate() * 100.0,
                            "#".repeat((est.rate() * 300.0).round() as usize)
                        );
                    }
                    std::ops::ControlFlow::Continue(())
                }
                Err(e) => {
                    sweep_err = Some(ArgError(e));
                    std::ops::ControlFlow::Break(())
                }
            }
        },
    );
    match sweep_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Parse `--shard K/N` ("2/4"): 1-based shard K of N. The engine's
/// contiguous split guarantees that concatenating the JSONL outputs of
/// shards 1..=N reproduces the unsharded report byte-for-byte. Every
/// rejection — missing `/`, non-integers, `N = 0`, `K = 0`, `K > N` —
/// names the accepted form, mirroring [`parse_workers`].
fn parse_shard(s: &str) -> Result<(usize, usize), ArgError> {
    let bad = || {
        ArgError(format!(
            "invalid --shard `{s}` (accepted: K/N, the 1-based shard K of N \
             with 1 <= K <= N, e.g. 2/4)"
        ))
    };
    let (k, n) = s.split_once('/').ok_or_else(bad)?;
    let k: usize = k.trim().parse().map_err(|_| bad())?;
    let n: usize = n.trim().parse().map_err(|_| bad())?;
    if n >= 1 && (1..=n).contains(&k) {
        Ok((k, n))
    } else {
        Err(bad())
    }
}

/// Parse a comma-separated list of µs gaps ("0,100,300").
fn parse_gaps(s: &str) -> Result<Vec<u64>, ArgError> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse()
                .map_err(|_| ArgError(format!("invalid gap `{t}` in --gaps-us (want µs integers)")))
        })
        .collect()
}

/// The `--jsonl` sink: stdout streams directly, files stage through an
/// [`AtomicFile`] so an interrupted survey leaves the previous report
/// (or nothing) rather than a truncated, valid-looking prefix.
enum JsonlSink {
    Stdout(std::io::BufWriter<std::io::Stdout>),
    File(AtomicFile),
}

impl std::io::Write for JsonlSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            JsonlSink::Stdout(w) => w.write(buf),
            JsonlSink::File(w) => w.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            JsonlSink::Stdout(w) => w.flush(),
            JsonlSink::File(w) => w.flush(),
        }
    }
}

/// `reorder survey` — the sharded campaign engine (`reorder-survey`)
/// run over a generated host population. Output on stdout is
/// byte-identical across reruns and worker counts for a fixed seed;
/// timing goes to stderr.
pub fn survey(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "hosts",
        "workers",
        "rounds",
        "samples",
        "seed",
        "technique",
        "jsonl",
        "gaps-us",
        "no-baseline",
        "no-reuse",
        "no-pool",
        "amenability-only",
        "per-host",
        "shard",
        "shard-state",
        "sim-version",
        "chaos",
        "host-deadline-ms",
        "host-retries",
        "host-backoff-ms",
        "telemetry",
        "metrics",
        "progress",
    ])?;
    let metrics = args.get("metrics");
    let telemetry = match args.get("telemetry") {
        Some(name) => {
            let mode = TelemetryMode::parse(name).map_err(ArgError)?;
            if metrics.is_some() && !mode.is_enabled() {
                return Err(ArgError(
                    "--metrics needs telemetry: drop `--telemetry off` or pass summary/full"
                        .to_string(),
                ));
            }
            mode
        }
        // `--metrics` without an explicit mode means "measure, cheaply".
        None if metrics.is_some() => TelemetryMode::Summary,
        None => TelemetryMode::Off,
    };
    let cfg = CampaignConfig {
        hosts: args.get_or("hosts", 50)?,
        workers: parse_workers(args)?,
        rounds: args.get_or("rounds", 1)?,
        samples: args.get_or("samples", 15)?,
        seed: args.get_or("seed", 77)?,
        technique: TechniqueChoice::parse(args.get("technique").unwrap_or("auto"))
            .map_err(ArgError)?,
        baseline: !args.switch("no-baseline"),
        reuse: !args.switch("no-reuse"),
        pool: !args.switch("no-pool"),
        amenability_only: args.switch("amenability-only"),
        gaps_us: parse_gaps(args.get("gaps-us").unwrap_or(""))?,
        sim_version: parse_sim_version(args)?,
        shard: args.get("shard").map(parse_shard).transpose()?,
        // Only the `--per-host` table reads `out.reports`; without it
        // (and without `--jsonl`) the engine takes the funnel-free
        // sharded-fold path and never materialises per-host reports.
        keep_reports: args.switch("per-host"),
        telemetry,
        progress: args.switch("progress"),
        model: PopulationModel {
            chaos_ppm: parse_chaos(args)?,
            ..Default::default()
        },
        budget: {
            let (deadline_ms, retries, backoff_ms) = parse_budget(args)?;
            Budget {
                deadline: Duration::from_millis(deadline_ms),
                max_retries: retries,
                backoff: Duration::from_millis(backoff_ms),
            }
        },
    };

    let started = std::time::Instant::now();
    // `--jsonl -` streams the per-host lines to stdout; human-facing
    // output (per-host table, summary) then moves to stderr so the
    // JSONL stream stays machine-parseable byte-for-byte.
    let jsonl_on_stdout = args.get("jsonl") == Some("-");
    let mut sink: Option<JsonlSink> = match args.get("jsonl") {
        Some("-") => Some(JsonlSink::Stdout(
            std::io::BufWriter::new(std::io::stdout()),
        )),
        Some(path) => Some(JsonlSink::File(
            AtomicFile::create(Path::new(path))
                .map_err(|e| ArgError(format!("creating {path}: {e}")))?,
        )),
        None => None,
    };
    let out = run_campaign(&cfg, sink.as_mut())
        .map_err(|e| ArgError(format!("writing JSONL report: {e}")))?;
    match sink {
        Some(JsonlSink::Stdout(mut w)) => {
            use std::io::Write as _;
            w.flush()
                .map_err(|e| ArgError(format!("writing JSONL report: {e}")))?;
        }
        // The file only appears once every line is in it.
        Some(JsonlSink::File(f)) => f
            .commit()
            .map_err(|e| ArgError(format!("writing JSONL report: {e}")))?,
        None => {}
    }
    let wall = started.elapsed();

    // `--shard-state` turns this invocation into a campaign worker: the
    // sealed exact state goes to the file (atomically), and the human
    // rendering is suppressed — the orchestrator merges and renders.
    let shard_state = args.get("shard-state");
    if let Some(path) = shard_state {
        let (shard, shards) = cfg.shard.unwrap_or((1, 1));
        let state = ShardState {
            shard,
            shards,
            agg: ShardAggregator {
                summary: out.summary.clone(),
                events: out.events,
            },
            telemetry: out.telemetry.merged(),
            steals: out.stats.steals,
        };
        atomic_write(Path::new(path), format!("{}\n", state.to_json()).as_bytes())
            .map_err(|e| ArgError(format!("writing shard state {path}: {e}")))?;
    }

    let mut human = String::new();
    if args.switch("per-host") {
        use std::fmt::Write as _;
        let _ = writeln!(
            human,
            "{:<22} {:<12} {:<13} {:>10} {:>9} {:>9} {:>12}",
            "host", "personality", "verdict", "technique", "fwd", "rev", "status"
        );
        for r in &out.reports {
            let _ = writeln!(
                human,
                "{:<22} {:<12} {:<13} {:>10} {:>8.2}% {:>8.2}% {:>12}",
                r.spec.name,
                r.spec.personality.name,
                r.verdict.map_or("probe-failed", |v| v.label()),
                r.technique,
                r.fwd.rate() * 100.0,
                r.rev.rate() * 100.0,
                if r.reachable { "ok" } else { "unreachable" }
            );
        }
    }
    human.push_str(&out.summary.render());
    if shard_state.is_some() {
        // Worker mode: no human rendering; the state file is the output.
    } else if jsonl_on_stdout {
        eprint!("{human}");
    } else {
        print!("{human}");
    }
    eprintln!(
        "campaign: {} hosts in {:.2}s on {} worker(s), {} steal(s), {} event(s), {:.0} events/s",
        cfg.hosts,
        wall.as_secs_f64(),
        out.stats.workers,
        out.stats.steals,
        out.events,
        out.events as f64 / wall.as_secs_f64().max(1e-9),
    );

    if let Some(target) = metrics {
        let doc = out.telemetry.to_json(
            out.summary.hosts,
            cfg.seed,
            out.events,
            out.stats.steals,
            wall.as_secs_f64(),
        );
        if target == "-" {
            println!("{doc}");
        } else {
            atomic_write(Path::new(target), (doc + "\n").as_bytes())
                .map_err(|e| ArgError(format!("writing {target}: {e}")))?;
        }
    }
    Ok(())
}

/// Parse `--fail-after-shards` / `REORDER_FAIL_AFTER_SHARDS` (flag
/// wins): the deterministic fault-injection hook — the supervisor
/// stops, as a crash would, after that many checkpoint writes.
fn parse_fail_after(args: &Args) -> Result<Option<usize>, ArgError> {
    let (origin, value) = match args.get("fail-after-shards") {
        Some(v) => ("--fail-after-shards".to_string(), v.to_string()),
        None => match std::env::var("REORDER_FAIL_AFTER_SHARDS") {
            Ok(v) => ("REORDER_FAIL_AFTER_SHARDS".to_string(), v),
            Err(_) => return Ok(None),
        },
    };
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(ArgError(format!(
            "invalid {origin} `{value}` (accepted: positive shard count)"
        ))),
    }
}

/// Parse a fraction-or-percent value (`0.2` or `20%`) in `0..=1`.
fn parse_fraction(flag: &str, raw: &str) -> Result<f64, ArgError> {
    let bad = || {
        ArgError(format!(
            "invalid --{flag} `{raw}` (accepted: a fraction like 0.2, or a \
             percentage like 20%, between 0 and 1)"
        ))
    };
    let f = match raw.trim().strip_suffix('%') {
        Some(pct) => pct.trim().parse::<f64>().map_err(|_| bad())? / 100.0,
        None => raw.trim().parse::<f64>().map_err(|_| bad())?,
    };
    if f.is_finite() && (0.0..=1.0).contains(&f) {
        Ok(f)
    } else {
        Err(bad())
    }
}

/// Parse `--chaos MIX`: the hostile-host fraction of the generated
/// population, stored as integer parts-per-million so equal mixes
/// hash to equal campaign fingerprints. Absent (or zero) means the
/// population generator never touches its chaos stream.
fn parse_chaos(args: &Args) -> Result<u32, ArgError> {
    match args.get("chaos") {
        None if args.switch("chaos") => Err(ArgError(
            "--chaos needs a value (accepted: a fraction like 0.2, or a percentage like 20%)"
                .into(),
        )),
        None => Ok(0),
        Some(raw) => Ok((parse_fraction("chaos", raw)? * 1e6).round() as u32),
    }
}

/// Parse the per-host budget flags shared by `survey` and `campaign`:
/// `--host-deadline-ms` (simulated time one host may consume),
/// `--host-retries` (transient-failure retries per round) and
/// `--host-backoff-ms` (base backoff, doubled per retry). Defaults are
/// [`Budget::default`], generous enough that cooperative hosts never
/// notice them.
fn parse_budget(args: &Args) -> Result<(u64, u32, u64), ArgError> {
    let d = Budget::default();
    let deadline_ms: u64 = args.get_or("host-deadline-ms", d.deadline.as_millis() as u64)?;
    if deadline_ms == 0 {
        return Err(ArgError(
            "invalid --host-deadline-ms `0` (accepted: positive milliseconds of \
             simulated time)"
                .into(),
        ));
    }
    Ok((
        deadline_ms,
        args.get_or("host-retries", d.max_retries)?,
        args.get_or("host-backoff-ms", d.backoff.as_millis() as u64)?,
    ))
}

/// Parse `--max-host-failures FRAC`: the honest-exit threshold. A
/// finished campaign whose failed-host fraction exceeds it still
/// finalizes every output, then exits nonzero.
fn parse_max_host_failures(args: &Args) -> Result<Option<f64>, ArgError> {
    match args.get("max-host-failures") {
        None if args.switch("max-host-failures") => Err(ArgError(
            "--max-host-failures needs a value (accepted: a fraction like 0.05, \
             or a percentage like 5%)"
                .into(),
        )),
        None => Ok(None),
        Some(raw) => parse_fraction("max-host-failures", raw).map(Some),
    }
}

/// `reorder campaign` — the crash-safe orchestrator
/// (`reorder-campaign`) around the survey engine: plans `--hosts` as
/// `--shards` shard tasks, fans them out across worker processes
/// (spawned `reorder survey --shard K/N --shard-state FILE`
/// invocations; `--in-process` supervises library calls instead),
/// retries failures with backoff, and checkpoints after every shard so
/// `--resume DIR` continues losslessly — the merged summary and
/// concatenated JSONL are byte-identical to an uninterrupted run.
pub fn campaign(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "dir",
        "resume",
        "hosts",
        "seed",
        "samples",
        "rounds",
        "technique",
        "gaps-us",
        "no-baseline",
        "no-reuse",
        "amenability-only",
        "sim-version",
        "chaos",
        "host-deadline-ms",
        "host-retries",
        "host-backoff-ms",
        "shards",
        "jsonl",
        "workers",
        "inflight",
        "retries",
        "backoff-ms",
        "max-host-failures",
        "in-process",
        "fail-after-shards",
        "telemetry",
        "metrics",
        "progress",
    ])?;
    let metrics = args.get("metrics");
    let telemetry = match args.get("telemetry") {
        Some(name) => {
            let mode = TelemetryMode::parse(name).map_err(ArgError)?;
            if metrics.is_some() && !mode.is_enabled() {
                return Err(ArgError(
                    "--metrics needs telemetry: drop `--telemetry off` or pass summary/full"
                        .to_string(),
                ));
            }
            mode
        }
        None if metrics.is_some() => TelemetryMode::Summary,
        None => TelemetryMode::Off,
    };
    if args.get("jsonl").is_some() {
        return Err(ArgError(
            "--jsonl takes no value here: the campaign report lands in DIR/campaign.jsonl"
                .to_string(),
        ));
    }

    let resuming = args.get("resume").is_some();
    let dir: PathBuf = match (args.get("resume"), args.get("dir")) {
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--resume DIR already names the campaign directory; drop --dir".to_string(),
            ))
        }
        (Some(d), None) | (None, Some(d)) => PathBuf::from(d),
        (None, None) => {
            return Err(ArgError(
                "campaign needs --dir DIR (or --resume DIR)".to_string(),
            ))
        }
    };
    if resuming {
        // The checkpoint is the plan; silently accepting plan flags
        // here would invite a divergent resume.
        for flag in [
            "hosts",
            "seed",
            "samples",
            "rounds",
            "technique",
            "gaps-us",
            "sim-version",
            "chaos",
            "host-deadline-ms",
            "host-retries",
            "host-backoff-ms",
            "shards",
        ] {
            if args.get(flag).is_some() {
                return Err(ArgError(format!(
                    "--resume restores the checkpointed plan; drop --{flag}"
                )));
            }
        }
        for switch in ["no-baseline", "no-reuse", "amenability-only", "jsonl"] {
            if args.switch(switch) {
                return Err(ArgError(format!(
                    "--resume restores the checkpointed plan; drop --{switch}"
                )));
            }
        }
    }
    let (deadline_ms, host_retries, host_backoff_ms) = parse_budget(args)?;
    let spec = CampaignSpec {
        hosts: args.get_or("hosts", 50)?,
        seed: args.get_or("seed", 77)?,
        samples: args.get_or("samples", 15)?,
        rounds: args.get_or("rounds", 1)?,
        technique: TechniqueChoice::parse(args.get("technique").unwrap_or("auto"))
            .map_err(ArgError)?,
        baseline: !args.switch("no-baseline"),
        amenability_only: args.switch("amenability-only"),
        gaps_us: parse_gaps(args.get("gaps-us").unwrap_or(""))?,
        reuse: !args.switch("no-reuse"),
        sim_version: parse_sim_version(args)?,
        chaos_ppm: parse_chaos(args)?,
        deadline_ms,
        host_retries,
        backoff_ms: host_backoff_ms,
        shards: args.get_or("shards", 8)?,
        jsonl: args.switch("jsonl"),
    };
    if spec.shards == 0 {
        return Err(ArgError(
            "invalid --shards `0` (accepted: positive shard count)".to_string(),
        ));
    }
    let opts = CampaignOptions {
        inflight: args.get_or("inflight", 0)?,
        retries: args.get_or("retries", 2)?,
        backoff_ms: args.get_or("backoff-ms", 250)?,
        telemetry,
        fail_after_shards: parse_fail_after(args)?,
        max_host_failures: parse_max_host_failures(args)?,
        progress: args.switch("progress"),
    };
    let workers = parse_workers(args)?;

    let in_process_runner;
    let process_runner;
    let runner: &dyn ShardRunner = if args.switch("in-process") {
        in_process_runner = InProcessRunner { workers, telemetry };
        &in_process_runner
    } else {
        let exe = std::env::current_exe()
            .map_err(|e| ArgError(format!("locating the reorder binary: {e}")))?;
        let state_dir = dir.join("state");
        std::fs::create_dir_all(&state_dir)
            .map_err(|e| ArgError(format!("creating {}: {e}", state_dir.display())))?;
        process_runner = ProcessRunner {
            exe,
            workers,
            telemetry,
            state_dir,
        };
        &process_runner
    };

    let started = std::time::Instant::now();
    let report = if resuming {
        reorder_campaign::resume(&dir, &opts, runner)
    } else {
        reorder_campaign::start(&dir, spec, &opts, runner)
    }
    .map_err(|e| ArgError(format!("campaign: {e}")))?;
    let wall = started.elapsed();
    let ckpt = &report.checkpoint;

    // A finished campaign prints its summary exactly as `survey` would.
    if let Some(path) = &report.summary_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("reading {}: {e}", path.display())))?;
        print!("{text}");
    }
    let failed_note = if report.failed.is_empty() {
        String::new()
    } else {
        let ids = report
            .failed
            .iter()
            .map(|(shard, _)| shard.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(", FAILED shards [{ids}]")
    };
    eprintln!(
        "campaign: {}/{} shard(s) done ({} resumed, {} this run), {} retry(s), \
         {} steal(s), {} event(s) in {:.2}s{failed_note}; dir {}",
        ckpt.completed.len(),
        ckpt.spec.shards,
        report.resumed,
        report.completed_now,
        report.retries,
        ckpt.steals,
        ckpt.agg.events,
        wall.as_secs_f64(),
        dir.display(),
    );

    if let Some(target) = metrics {
        // The checkpoint carries the exact merged worker telemetry; the
        // orchestrated document has no per-worker residency (workers
        // are transient processes), so `per_worker` is empty.
        let tel = CampaignTelemetry {
            mode: telemetry,
            per_worker: Vec::new(),
            campaign: ckpt.telemetry.clone(),
        };
        let doc = tel.to_json(
            ckpt.agg.summary.hosts,
            ckpt.spec.seed,
            ckpt.agg.events,
            ckpt.steals,
            wall.as_secs_f64(),
        );
        if target == "-" {
            println!("{doc}");
        } else {
            atomic_write(Path::new(target), (doc + "\n").as_bytes())
                .map_err(|e| ArgError(format!("writing {target}: {e}")))?;
        }
    }

    if report.interrupted {
        return Err(ArgError(format!(
            "campaign interrupted by fault injection after {} shard(s); \
             resume with `reorder campaign --resume {}`",
            report.completed_now,
            dir.display()
        )));
    }
    if !report.failed.is_empty() {
        for (shard, error) in &report.failed {
            eprintln!("campaign: shard {shard} permanently failed: {error}");
        }
        let ids = report
            .failed
            .iter()
            .map(|(shard, _)| shard.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        return Err(ArgError(format!(
            "{} shard(s) permanently failed after retries: {ids}; fix the cause \
             and `reorder campaign --resume {}`",
            report.failed.len(),
            dir.display()
        )));
    }
    if report.host_failures_exceeded {
        let s = &ckpt.agg.summary;
        return Err(ArgError(format!(
            "campaign finished (outputs in {}) but {} of {} host(s) failed \
             ({:.2}%), over the --max-host-failures threshold",
            dir.display(),
            s.failed,
            s.hosts,
            s.failed as f64 * 100.0 / s.hosts.max(1) as f64,
        )));
    }
    Ok(())
}

/// `reorder validate`.
pub fn validate(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["fwd", "rev", "samples", "seed"])?;
    let fwd: f64 = args.get_or("fwd", 0.10)?;
    let rev: f64 = args.get_or("rev", 0.05)?;
    let samples: usize = args.get_or("samples", 100)?;
    let seed: u64 = args.get_or("seed", 1)?;
    // The reversed single-connection variant is the deployable one for
    // two-sided validation (immediate ACKs in both directions).
    for kind in [
        TestKind::SingleConnectionReversed,
        TestKind::DualConnection,
        TestKind::Syn,
    ] {
        let mut sc = scenario::validation_rig(fwd, rev, seed);
        let run = {
            let mut session = Session::new(&mut sc.prober, sc.target, 80);
            technique(kind, TestConfig::samples(samples))
                .execute(&mut session)
                .map_err(|e| ArgError(format!("{kind}: {e}")))?
        };
        let rep = validate_run(
            &run,
            &sc.merged_server_rx(),
            &sc.merged_server_tx(),
            &sc.prober_trace(),
        );
        println!(
            "{:<10} fwd: {}/{} verdicts match trace (err {:+}); rev: {}/{} (err {:+})",
            kind.label(),
            rep.fwd.agree,
            rep.fwd.checked,
            rep.fwd.count_error(),
            rep.rev.agree,
            rep.rev.checked,
            rep.rev.count_error(),
        );
    }
    Ok(())
}

/// `reorder pcap`.
pub fn pcap(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["out", "fwd", "rev", "samples", "seed"])?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out FILE is required".into()))?
        .to_string();
    let fwd: f64 = args.get_or("fwd", 0.10)?;
    let rev: f64 = args.get_or("rev", 0.05)?;
    let samples: usize = args.get_or("samples", 50)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut sc = scenario::validation_rig(fwd, rev, seed);
    let run = {
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        technique(
            TestKind::SingleConnectionReversed,
            TestConfig::samples(samples),
        )
        .execute(&mut session)
        .map_err(|e| ArgError(format!("measurement failed: {e}")))?
    };
    let trace = sc.merged_server_rx();
    reorder_netsim::pcap::write_pcap(&trace, std::path::Path::new(&out))
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!(
        "wrote {} packets (server-side receive trace of {} samples) to {out}",
        trace.len(),
        run.samples.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn measure_runs_and_reports() {
        measure(&parse("measure --samples 20 --seed 3")).expect("measure");
    }

    #[test]
    fn measure_rejects_unknown_option() {
        assert!(measure(&parse("measure --bogus 1")).is_err());
    }

    #[test]
    fn measure_dual_against_openbsd_fails_cleanly() {
        let e = measure(&parse(
            "measure --technique dual --personality openbsd3 --samples 5",
        ))
        .unwrap_err();
        assert!(e.0.contains("unsuitable") || e.0.contains("non-monotonic"));
    }

    #[test]
    fn personality_names_resolve() {
        for n in [
            "freebsd4",
            "linux22",
            "linux24",
            "openbsd3",
            "solaris8",
            "windows2000",
            "hardened",
        ] {
            personality(n).unwrap();
        }
        assert!(personality("beos").is_err());
    }

    #[test]
    fn validate_command_runs() {
        validate(&parse("validate --samples 20 --seed 5")).expect("validate");
    }

    #[test]
    fn profile_command_runs_small() {
        profile(&parse(
            "profile --mechanism multipath --samples 30 --max-us 50 --step-us 50",
        ))
        .expect("profile");
    }

    #[test]
    fn survey_command_runs_small() {
        survey(&parse("survey --hosts 3 --rounds 1")).expect("survey");
    }

    #[test]
    fn workers_accepts_auto_and_positive_counts() {
        assert_eq!(parse_workers(&parse("survey")).unwrap(), 0);
        assert_eq!(parse_workers(&parse("survey --workers auto")).unwrap(), 0);
        assert_eq!(parse_workers(&parse("survey --workers 3")).unwrap(), 3);
    }

    #[test]
    fn workers_rejects_zero_and_malformed_values() {
        for bad in ["0", "-2", "2.5", "many", ""] {
            let e = parse_workers(&parse(&format!("survey --workers {bad}")))
                .expect_err(&format!("--workers {bad} must be rejected"));
            assert!(
                e.0.contains("auto | positive thread count"),
                "error must list the accepted forms: {}",
                e.0
            );
        }
    }

    #[test]
    fn profile_parallel_sweep_matches_serial_output() {
        // The sweep prints through stdout, so compare the estimates
        // directly: per-gap scenarios are seeded independently, so a
        // parallel sweep must measure the same numbers as a serial one.
        // (CI also cmp's the rendered output across --workers values.)
        profile(&parse(
            "profile --mechanism arq --samples 20 --max-us 50 --step-us 25 --workers 4",
        ))
        .expect("parallel profile");
    }

    #[test]
    fn survey_full_flag_set_runs() {
        let path = std::env::temp_dir().join("reorder_cli_survey_test.jsonl");
        let cmd = format!(
            "survey --hosts 4 --workers 2 --samples 4 --seed 9 --technique auto \
             --gaps-us 0,50 --per-host --jsonl {}",
            path.display()
        );
        survey(&parse(&cmd)).expect("survey");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().all(|l| l.starts_with("{\"id\":")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn measure_rejects_unknown_technique_with_accepted_set() {
        let e = measure(&parse("measure --technique warp")).unwrap_err();
        assert!(e.0.contains("unknown technique `warp`"), "{e}");
        for t in TestKind::ACCEPTED {
            assert!(e.0.contains(t), "error must list `{t}`: {e}");
        }
    }

    #[test]
    fn measure_accepts_both_single_variants_explicitly() {
        // The historical inconsistency: `single` silently ran the
        // reversed variant. Now each spelling names its own variant.
        measure(&parse("measure --technique single --samples 10 --seed 3")).expect("single");
        measure(&parse(
            "measure --technique single-rev --samples 10 --seed 3",
        ))
        .expect("single-rev");
    }

    #[test]
    fn survey_accepts_both_sim_versions_and_rejects_others() {
        survey(&parse("survey --hosts 3 --samples 3 --sim-version 1")).expect("v1");
        survey(&parse("survey --hosts 3 --samples 3 --sim-version 2")).expect("v2");
        let e = survey(&parse("survey --hosts 3 --sim-version 7")).unwrap_err();
        assert!(e.0.contains("unknown sim version `7`"), "{e}");
        assert!(e.0.contains("1, 2"), "error must list accepted set: {e}");
    }

    #[test]
    fn profile_accepts_sim_version() {
        for v in ["1", "2"] {
            profile(&parse(&format!(
                "profile --mechanism striping --samples 20 --max-us 25 --step-us 25 \
                 --sim-version {v}"
            )))
            .expect("profile with sim version");
        }
    }

    #[test]
    fn survey_accepts_shard_and_no_reuse() {
        survey(&parse(
            "survey --hosts 6 --shard 2/3 --no-reuse --samples 3",
        ))
        .expect("shard");
    }

    #[test]
    fn shard_parsing_is_strict() {
        assert_eq!(parse_shard("1/1").unwrap(), (1, 1));
        assert_eq!(parse_shard("2/4").unwrap(), (2, 4));
        assert_eq!(parse_shard(" 3 / 4 ").unwrap(), (3, 4));
        let e = survey(&parse("survey --hosts 4 --shard 9/2")).unwrap_err();
        assert!(e.0.contains("invalid --shard"), "{e}");
    }

    #[test]
    fn shard_rejections_each_name_the_accepted_form() {
        // One case per rejection class, mirroring the `parse_workers`
        // error style: the message must name the accepted form.
        for (class, bad) in [
            ("empty", ""),
            ("missing slash", "3"),
            ("k = 0", "0/4"),
            ("k > n", "5/4"),
            ("non-integer k", "a/4"),
            ("missing n", "4/"),
            ("missing k", "/4"),
            ("n = 0", "1/0"),
            ("fractional", "2.5/4"),
            ("negative", "-1/4"),
        ] {
            let e = parse_shard(bad).expect_err(&format!("{class}: `{bad}` must be rejected"));
            assert!(
                e.0.contains("accepted: K/N"),
                "{class}: error must name the accepted form: {}",
                e.0
            );
            assert!(
                e.0.contains(bad),
                "{class}: error must echo the input: {}",
                e.0
            );
        }
    }

    #[test]
    fn survey_rejects_unknown_technique_with_accepted_set() {
        let e = survey(&parse("survey --hosts 2 --technique warp")).unwrap_err();
        assert!(e.0.contains("unknown technique `warp`"), "{e}");
        for t in TechniqueChoice::ACCEPTED {
            assert!(e.0.contains(t), "error must list `{t}`: {e}");
        }
    }

    #[test]
    fn survey_rejects_bad_gaps() {
        assert!(survey(&parse("survey --hosts 2 --gaps-us 0,x")).is_err());
        assert_eq!(parse_gaps("0, 50,300").unwrap(), vec![0, 50, 300]);
        assert_eq!(parse_gaps("").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn pcap_requires_out() {
        assert!(pcap(&parse("pcap")).is_err());
    }

    fn campaign_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("reorder_cli_campaign_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn campaign_in_process_writes_summary_and_jsonl() {
        let dir = campaign_dir("ok");
        let cmd = format!(
            "campaign --dir {} --hosts 9 --shards 3 --samples 3 --seed 11 \
             --no-baseline --jsonl --in-process --workers 1 --inflight 2",
            dir.display()
        );
        campaign(&parse(&cmd)).expect("campaign");
        let summary = std::fs::read_to_string(dir.join("summary.txt")).expect("summary.txt");
        assert!(summary.contains("campaign summary: 9 hosts"), "{summary}");
        let jsonl = std::fs::read_to_string(dir.join("campaign.jsonl")).expect("campaign.jsonl");
        assert_eq!(jsonl.lines().count(), 9, "one JSONL line per host");

        // Resuming a finished campaign is an idempotent no-op.
        let resume_cmd = format!(
            "campaign --resume {} --in-process --workers 1",
            dir.display()
        );
        campaign(&parse(&resume_cmd)).expect("resume of finished campaign");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_fault_injection_then_resume_is_byte_identical() {
        let dir_a = campaign_dir("ref");
        let dir_b = campaign_dir("crash");
        let plan = |dir: &std::path::Path, extra: &str| {
            format!(
                "campaign --dir {} --hosts 8 --shards 4 --samples 3 --seed 12 \
                 --no-baseline --jsonl --in-process --workers 1 --inflight 1{extra}",
                dir.display()
            )
        };
        campaign(&parse(&plan(&dir_a, ""))).expect("uninterrupted run");

        let e = campaign(&parse(&plan(&dir_b, " --fail-after-shards 2"))).unwrap_err();
        assert!(e.0.contains("interrupted"), "{e}");
        assert!(
            e.0.contains("--resume"),
            "the error must say how to continue: {e}"
        );
        assert!(
            !dir_b.join("summary.txt").exists(),
            "an interrupted campaign must not finalize"
        );

        let resume_cmd = format!(
            "campaign --resume {} --in-process --workers 1",
            dir_b.display()
        );
        campaign(&parse(&resume_cmd)).expect("resume");
        assert_eq!(
            std::fs::read(dir_a.join("summary.txt")).unwrap(),
            std::fs::read(dir_b.join("summary.txt")).unwrap(),
            "resumed summary must be byte-identical"
        );
        assert_eq!(
            std::fs::read(dir_a.join("campaign.jsonl")).unwrap(),
            std::fs::read(dir_b.join("campaign.jsonl")).unwrap(),
            "resumed JSONL must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn campaign_rejects_misuse() {
        let e = campaign(&parse("campaign")).unwrap_err();
        assert!(e.0.contains("--dir"), "{e}");
        let e = campaign(&parse("campaign --dir a --resume b")).unwrap_err();
        assert!(e.0.contains("drop --dir"), "{e}");
        let e = campaign(&parse("campaign --resume a --hosts 9")).unwrap_err();
        assert!(e.0.contains("drop --hosts"), "{e}");
        let e = campaign(&parse("campaign --dir a --shards 0")).unwrap_err();
        assert!(e.0.contains("--shards"), "{e}");
        let e = campaign(&parse("campaign --dir a --fail-after-shards 0")).unwrap_err();
        assert!(e.0.contains("accepted: positive shard count"), "{e}");
        let e = campaign(&parse("campaign --dir a --jsonl out.jsonl")).unwrap_err();
        assert!(e.0.contains("campaign.jsonl"), "{e}");
    }

    #[test]
    fn chaos_parses_fractions_and_percentages() {
        assert_eq!(parse_chaos(&parse("survey")).unwrap(), 0);
        assert_eq!(parse_chaos(&parse("survey --chaos 0")).unwrap(), 0);
        assert_eq!(parse_chaos(&parse("survey --chaos 0.2")).unwrap(), 200_000);
        assert_eq!(parse_chaos(&parse("survey --chaos 20%")).unwrap(), 200_000);
        assert_eq!(parse_chaos(&parse("survey --chaos 1")).unwrap(), 1_000_000);
        assert_eq!(parse_chaos(&parse("survey --chaos 0.000123")).unwrap(), 123);
        for bad in [
            "--chaos 1.5",
            "--chaos -0.1",
            "--chaos 120%",
            "--chaos many",
        ] {
            let e = parse_chaos(&parse(&format!("survey {bad}")))
                .expect_err(&format!("`{bad}` must be rejected"));
            assert!(e.0.contains("fraction like 0.2"), "{e}");
        }
        // A bare `--chaos` parses as a switch; don't let it mean zero.
        assert!(parse_chaos(&parse("survey --chaos")).is_err());
    }

    #[test]
    fn budget_flags_parse_and_reject_zero_deadline() {
        let d = Budget::default();
        assert_eq!(
            parse_budget(&parse("survey")).unwrap(),
            (
                d.deadline.as_millis() as u64,
                d.max_retries,
                d.backoff.as_millis() as u64
            )
        );
        assert_eq!(
            parse_budget(&parse(
                "survey --host-deadline-ms 45000 --host-retries 2 --host-backoff-ms 125"
            ))
            .unwrap(),
            (45_000, 2, 125)
        );
        let e = parse_budget(&parse("survey --host-deadline-ms 0")).unwrap_err();
        assert!(e.0.contains("positive milliseconds"), "{e}");
    }

    #[test]
    fn survey_chaos_mix_classifies_hostile_hosts_in_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "reorder_cli_chaos_survey_{}.jsonl",
            std::process::id()
        ));
        let cmd = format!(
            "survey --hosts 20 --samples 3 --seed 77 --chaos 0.5 --workers 2 --jsonl {}",
            path.display()
        );
        survey(&parse(&cmd)).expect("chaos survey");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 20);
        assert!(
            text.lines().all(|l| l.contains("\"outcome\":\"")),
            "every JSONL line must carry an outcome"
        );
        assert!(
            text.contains("\"outcome\":\"failed/") || text.contains("\"outcome\":\"degraded/"),
            "a 50% hostile mix must classify some hosts: {text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_max_host_failures_drives_honest_nonzero_exit() {
        let dir = campaign_dir("chaos");
        let plan = format!(
            "campaign --dir {} --hosts 10 --shards 2 --samples 3 --seed 77 --chaos 1 \
             --no-baseline --in-process --workers 1 --max-host-failures 0",
            dir.display()
        );
        let e = campaign(&parse(&plan)).unwrap_err();
        assert!(e.0.contains("--max-host-failures"), "{e}");
        assert!(
            dir.join("summary.txt").exists(),
            "a breached threshold must still finalize the outputs"
        );
        let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
        assert!(summary.contains("failure taxonomy"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);

        // The same hostile plan under a tolerant threshold exits zero.
        let dir = campaign_dir("chaos_ok");
        let plan = format!(
            "campaign --dir {} --hosts 10 --shards 2 --samples 3 --seed 77 --chaos 1 \
             --no-baseline --in-process --workers 1 --max-host-failures 1",
            dir.display()
        );
        campaign(&parse(&plan)).expect("tolerant threshold passes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_resume_rejects_chaos_and_budget_plan_flags() {
        for flag in [
            "--chaos 0.2",
            "--host-deadline-ms 1000",
            "--host-retries 1",
            "--host-backoff-ms 10",
        ] {
            let e = campaign(&parse(&format!("campaign --resume a {flag}"))).unwrap_err();
            let name = flag.split_whitespace().next().unwrap();
            assert!(
                e.0.contains(&format!("drop {name}")),
                "resume must reject the plan flag {name}: {e}"
            );
        }
        // Runtime knobs stay legal on resume; this one fails later, on
        // the missing checkpoint, not on flag validation.
        let e = campaign(&parse(
            "campaign --resume /nonexistent --max-host-failures 0.5",
        ))
        .unwrap_err();
        assert!(!e.0.contains("drop --"), "{e}");
    }

    #[test]
    fn survey_shard_state_suppresses_summary_and_round_trips() {
        let path = std::env::temp_dir().join(format!(
            "reorder_cli_shard_state_{}.json",
            std::process::id()
        ));
        let cmd = format!(
            "survey --hosts 6 --samples 3 --seed 4 --shard 2/3 --shard-state {}",
            path.display()
        );
        survey(&parse(&cmd)).expect("worker-mode survey");
        let text = std::fs::read_to_string(&path).expect("state file");
        let state = ShardState::from_json(&text).expect("sealed state parses");
        assert_eq!((state.shard, state.shards), (2, 3));
        assert_eq!(state.agg.summary.hosts, 2, "shard 2/3 of 6 hosts holds 2");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pcap_writes_file() {
        let path = std::env::temp_dir().join("reorder_cli_test.pcap");
        let cmd = format!("pcap --out {} --samples 5 --seed 2", path.display());
        pcap(&parse(&cmd)).expect("pcap");
        let bytes = std::fs::read(&path).unwrap();
        assert!(reorder_netsim::pcap::parse_pcap(&bytes).unwrap().len() > 10);
        let _ = std::fs::remove_file(&path);
    }
}
