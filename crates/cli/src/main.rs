//! `reorder` — command-line driver for the packet-reordering
//! measurement toolkit.
//!
//! The original tools shipped as an extension to `sting`; since this
//! reproduction's "Internet" is simulated, the CLI builds a simulated
//! path per invocation (fully parameterized and seeded) and runs the
//! chosen technique against it. Run `reorder help` for usage.

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
reorder — single-ended one-way packet reordering measurement
          (Bellardo & Savage, IMC 2002, reproduced in simulation)

USAGE: reorder <command> [options]

COMMANDS:
  measure    run one technique against a dummynet-style path
               --technique single|single-rev|dual|syn|transfer (default
                                    single; single-rev is the reversed,
                                    delayed-ACK-proof variant)
               --fwd P --rev P      adjacent-swap probabilities (default 0.1/0.05)
               --samples N          samples (default 100)
               --gap-us N           inter-packet gap in microseconds (default 0)
               --personality NAME   freebsd4|linux22|linux24|openbsd3|solaris8|
                                    windows2000|hardened (default freebsd4)
               --lb N               put N load-balancer backends in the path
               --seed S             RNG seed (default 1)
  profile    sweep the inter-packet gap (Fig. 7 style)
               --mechanism striping|multipath|arq     (default striping)
               --samples N          per point (default 300)
               --max-us N           sweep upper bound (default 300)
               --step-us N          sweep step (default 25)
               --sim-version 1|2    cross-traffic model for striping paths
                                    (1 = replayed, 2 = stationary; default 2)
               --workers auto|N     sweep threads (default auto = all cores;
                                    output is byte-identical regardless)
               --seed S
  survey     sharded measurement campaign over a generated host
             population (§IV-B scaled up; deterministic in --seed,
             byte-identical across worker counts)
               --hosts N            population size (default 50)
               --workers auto|N     worker threads (default auto = all cores)
               --samples N          samples per technique run (default 15)
               --rounds R           measurement rounds per host (default 1)
               --technique T        auto|single|single-rev|dual|syn|transfer
                                    (default auto: IPID-validate, dual where
                                    amenable, SYN fallback)
               --jsonl FILE|-       write one JSON line per host (- =
                                    stdout; the summary moves to stderr)
               --gaps-us LIST       extra gap sweep, e.g. 0,100,300 (§IV-C)
               --shard K/N          run only host-id shard K of N (1-based);
                                    concatenating shards 1..N reproduces the
                                    unsharded JSONL byte-for-byte
               --shard-state FILE   worker mode: write the sealed exact
                                    shard state (reorder.shard/1) to FILE
                                    atomically and suppress the human
                                    summary (used by `campaign`)
               --per-host           print the per-host table too
               --no-baseline        skip the data-transfer baseline
               --no-reuse           fresh scenario + handshakes per phase
                                    (per-host connection reuse is the default)
               --amenability-only   verdicts only, no measurement
               --sim-version 1|2    campaign format: 1 = replayed cross
                                    traffic (historical bytes), 2 = O(1)
                                    stationary draws (default; ~2x faster);
                                    output is byte-deterministic per version
               --telemetry MODE     off|summary|full instrumentation
                                    (default off; full adds latency
                                    quantile sketches per span)
               --metrics FILE|-     write the reorder.metrics/1 JSON
                                    document (- = stdout; implies
                                    --telemetry summary unless set)
               --progress           heartbeat to stderr: hosts done,
                                    hosts/s, ETA, per-worker utilization
               --seed S
  campaign   crash-safe orchestrated survey: shard plan, worker
             processes, checkpoint/resume (resumed output is
             byte-identical to an uninterrupted run)
               --dir DIR            campaign directory (checkpoint, shard
                                    parts, summary.txt, campaign.jsonl)
               --resume DIR         continue an interrupted campaign from
                                    its checkpoint (plan flags come from
                                    the checkpoint, not the command line)
               --shards N           shard tasks in the plan (default 8)
               --jsonl              keep per-host JSONL: shard parts are
                                    concatenated into DIR/campaign.jsonl
               --inflight N         max shards in flight (default 0 = cores)
               --retries N          re-attempts per failed shard (default 2)
               --backoff-ms N       base retry backoff, doubled per attempt
                                    (default 250)
               --in-process         supervise library calls instead of
                                    spawning worker processes
               --fail-after-shards N  fault injection: stop (as a crash
                                    would) after N checkpoint writes; also
                                    via REORDER_FAIL_AFTER_SHARDS (flag wins)
               --workers auto|N     threads per shard run (default auto)
               --hosts/--seed/--samples/--rounds/--technique/--gaps-us/
               --no-baseline/--no-reuse/--amenability-only/--sim-version
                                    as in `survey` (the campaign plan)
               --telemetry MODE, --metrics FILE|-, --progress
                                    as in `survey` (merged across shards)
  validate   measure and cross-check against the capture trace (§IV-A)
               --fwd P --rev P --samples N --seed S
  pcap       run a measurement and export the server-side trace
               --out FILE           pcap path (required)
               --fwd P --rev P --samples N --seed S
  help       this text
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("measure") => commands::measure(&args),
        Some("profile") => commands::profile(&args),
        Some("survey") => commands::survey(&args),
        Some("campaign") => commands::campaign(&args),
        Some("validate") => commands::validate(&args),
        Some("pcap") => commands::pcap(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(args::ArgError(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
