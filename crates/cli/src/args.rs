//! Minimal flag parser (no external dependencies): `--key value` and
//! `--flag` switches after a subcommand word.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: the subcommand plus its options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand word (first non-flag argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse an iterator of arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError("stray `--`".into()));
                }
                // The CLI must never panic on user input: re-read the
                // peeked value fallibly instead of asserting on it.
                let takes_value = matches!(it.peek(), Some(v) if !v.starts_with("--"));
                match it.next_if(|_| takes_value) {
                    Some(v) => {
                        if args.options.insert(name.to_string(), v).is_some() {
                            return Err(ArgError(format!("duplicate option --{name}")));
                        }
                    }
                    None => args.switches.push(name.to_string()),
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument `{tok}`")));
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Boolean switch (present without a value).
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value `{v}` for --{name}"))),
        }
    }

    /// Verify no unknown options/switches were supplied.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!("unknown option --{k}")));
            }
        }
        for k in &self.switches {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!("unknown switch --{k}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_options_switches() {
        let a = parse("measure --fwd 0.1 --samples 50 --verbose").unwrap();
        assert_eq!(a.command.as_deref(), Some("measure"));
        assert_eq!(a.get("fwd"), Some("0.1"));
        assert_eq!(a.get_or("samples", 0usize).unwrap(), 50);
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("measure").unwrap();
        assert_eq!(a.get_or("samples", 15usize).unwrap(), 15);
        assert_eq!(a.get_or("fwd", 0.0f64).unwrap(), 0.0);
    }

    #[test]
    fn bad_value_reports_option_name() {
        let a = parse("measure --samples abc").unwrap();
        let e = a.get_or("samples", 0usize).unwrap_err();
        assert!(e.0.contains("--samples"));
        assert!(e.0.contains("abc"));
    }

    #[test]
    fn duplicate_rejected() {
        assert!(parse("x --a 1 --a 2").is_err());
    }

    #[test]
    fn unexpected_positional_rejected() {
        assert!(parse("measure oops").is_err());
    }

    #[test]
    fn expect_only_flags_unknowns() {
        let a = parse("m --good 1 --weird 2").unwrap();
        assert!(a.expect_only(&["good"]).is_err());
        assert!(a.expect_only(&["good", "weird"]).is_ok());
    }

    #[test]
    fn trailing_switch_before_option() {
        let a = parse("m --dry-run --n 3").unwrap();
        assert!(a.switch("dry-run"));
        assert_eq!(a.get_or("n", 0u32).unwrap(), 3);
    }
}
