//! End-to-end smoke tests: run the built `reorder` binary as a user
//! would and assert the output carries a parseable reordering estimate.

use std::process::Command;

fn reorder(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_reorder"))
        .args(args)
        .output()
        .expect("spawn reorder binary");
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
        out.status.success(),
    )
}

/// Parse `"<label>: <pct>% [<lo>%, <hi>%] (<k>/<n>)"` into
/// `(rate, lo, hi, reordered, total)`.
fn parse_estimate(line: &str) -> (f64, f64, f64, u64, u64) {
    let (_, rest) = line.split_once(':').expect("label");
    let mut nums = rest
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<f64>().expect("number"));
    let rate = nums.next().expect("rate");
    let lo = nums.next().expect("ci low");
    let hi = nums.next().expect("ci high");
    let k = nums.next().expect("reordered count") as u64;
    let n = nums.next().expect("total count") as u64;
    (rate, lo, hi, k, n)
}

#[test]
fn measure_single_reports_parseable_estimate() {
    let (stdout, stderr, ok) = reorder(&[
        "measure",
        "--technique",
        "single",
        "--samples",
        "20",
        "--seed",
        "1",
    ]);
    assert!(ok, "reorder measure failed: {stderr}");

    let fwd = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("forward:"))
        .unwrap_or_else(|| panic!("no forward estimate in output:\n{stdout}"));
    let (rate, lo, hi, k, n) = parse_estimate(fwd);
    assert_eq!(n, 20, "sample count should match --samples 20");
    assert!(k <= n, "reordered count exceeds total");
    assert!((0.0..=100.0).contains(&rate), "rate out of range: {rate}");
    assert!(
        lo <= rate + 1e-9 && rate <= hi + 1e-9,
        "point estimate outside CI"
    );

    let rev = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("reverse:"))
        .unwrap_or_else(|| panic!("no reverse estimate in output:\n{stdout}"));
    let (_, _, _, rk, rn) = parse_estimate(rev);
    assert!(rk <= rn);
}

#[test]
fn measure_is_deterministic_per_seed() {
    let run = || reorder(&["measure", "--samples", "20", "--seed", "7"]).0;
    assert_eq!(run(), run(), "same seed must reproduce the same output");
    let other = reorder(&["measure", "--samples", "20", "--seed", "8"]).0;
    assert_ne!(run(), other, "different seeds should differ somewhere");
}

#[test]
fn survey_sim_versions_are_deterministic_and_distinct() {
    let run = |v: &str| {
        let (stdout, stderr, ok) = reorder(&[
            "survey",
            "--hosts",
            "12",
            "--samples",
            "4",
            "--seed",
            "5",
            "--sim-version",
            v,
        ]);
        assert!(ok, "survey --sim-version {v} failed: {stderr}");
        stdout
    };
    // Byte-deterministic per version...
    assert_eq!(run("1"), run("1"), "v1 must be reproducible");
    assert_eq!(run("2"), run("2"), "v2 must be reproducible");
    // ...and the model swap is a declared break, not a no-op: seed 5's
    // 12-host population draws a striping host whose estimates move, so
    // the two versions' summaries differ.
    assert_ne!(run("1"), run("2"), "versions must be distinguishable");
}

#[test]
fn progress_never_touches_jsonl_stdout() {
    // `--jsonl -` owns stdout; heartbeat and summary ride stderr. The
    // machine-readable bytes must be identical with and without
    // `--progress` (and with telemetry on for good measure).
    let base = &[
        "survey",
        "--hosts",
        "12",
        "--samples",
        "4",
        "--seed",
        "5",
        "--jsonl",
        "-",
    ];
    let (plain, plain_err, ok) = reorder(base);
    assert!(ok, "survey --jsonl - failed: {plain_err}");
    let noisy = [base as &[&str], &["--progress", "--telemetry", "full"]].concat();
    let (noisy_out, _, ok) = reorder(&noisy);
    assert!(ok);
    assert_eq!(
        plain, noisy_out,
        "--progress/--telemetry altered the JSONL stream"
    );
    assert_eq!(
        plain.lines().count(),
        12,
        "one JSON line per host on stdout"
    );
    assert!(
        plain.lines().all(|l| l.starts_with('{')),
        "non-JSONL noise on stdout"
    );
    // The human summary still reaches the user — on stderr.
    assert!(
        plain_err.contains("hosts"),
        "summary missing from stderr: {plain_err}"
    );
}

#[test]
fn metrics_document_smoke() {
    let (stdout, stderr, ok) = reorder(&[
        "survey",
        "--hosts",
        "8",
        "--samples",
        "4",
        "--seed",
        "3",
        "--workers",
        "2",
        "--metrics",
        "-",
    ]);
    assert!(ok, "survey --metrics - failed: {stderr}");
    let doc = stdout
        .lines()
        .last()
        .expect("metrics document on the last stdout line");
    for key in [
        "\"schema\":\"reorder.metrics/1\"",
        "\"mode\":\"summary\"",
        "\"hosts\":8",
        "\"workers\":2",
        "\"seed\":3",
        "\"wall_s\":",
        "\"events\":",
        "\"steals\":",
        "\"merged\":{",
        "\"per_worker\":[",
        "\"netsim.events\":",
        "\"sched.tasks\":",
        "\"agg.absorbs\":8",
        "\"host\":{\"count\":8",
    ] {
        assert!(doc.contains(key), "missing {key} in metrics doc: {doc}");
    }
    // Footer now surfaces the event count and rate (satellite fix).
    assert!(
        stderr.contains("event(s)"),
        "no event count in footer: {stderr}"
    );

    // Contradictory flags are rejected up front.
    let (_, stderr, ok) = reorder(&[
        "survey",
        "--hosts",
        "4",
        "--metrics",
        "-",
        "--telemetry",
        "off",
    ]);
    assert!(!ok, "--metrics with --telemetry off must fail");
    assert!(stderr.contains("--metrics needs telemetry"), "{stderr}");
}

#[test]
fn campaign_process_mode_crash_and_resume_byte_identical() {
    // The headline contract, end to end through real worker processes:
    // a campaign killed by fault injection and resumed produces the
    // same bytes as an uninterrupted run — and as a plain unsharded
    // `survey` of the same spec.
    let base = std::env::temp_dir().join(format!("reorder_smoke_campaign_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir_a = base.join("clean");
    let dir_b = base.join("crash");
    let plan = |dir: &std::path::Path| {
        vec![
            "campaign".to_string(),
            "--dir".to_string(),
            dir.display().to_string(),
            "--hosts".to_string(),
            "12".to_string(),
            "--shards".to_string(),
            "4".to_string(),
            "--samples".to_string(),
            "3".to_string(),
            "--seed".to_string(),
            "21".to_string(),
            "--no-baseline".to_string(),
            "--jsonl".to_string(),
            "--workers".to_string(),
            "1".to_string(),
            "--inflight".to_string(),
            "2".to_string(),
        ]
    };
    fn to_refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    let args_a = plan(&dir_a);
    let (stdout_a, stderr_a, ok) = reorder(&to_refs(&args_a));
    assert!(ok, "clean campaign failed: {stderr_a}");
    assert!(
        stdout_a.contains("campaign summary: 12 hosts"),
        "summary missing from stdout: {stdout_a}"
    );

    // Interrupt after 2 checkpointed shards: honest nonzero exit that
    // says how to continue.
    let mut args_b = plan(&dir_b);
    args_b.extend(["--fail-after-shards".to_string(), "2".to_string()]);
    let (_, stderr_b, ok) = reorder(&to_refs(&args_b));
    assert!(!ok, "an interrupted campaign must exit nonzero");
    assert!(stderr_b.contains("--resume"), "no resume hint: {stderr_b}");
    assert!(
        !dir_b.join("summary.txt").exists(),
        "interrupted campaign must not finalize outputs"
    );

    let resume_args = [
        "campaign",
        "--resume",
        dir_b.to_str().expect("utf8 path"),
        "--workers",
        "1",
        "--inflight",
        "2",
    ];
    let (stdout_r, stderr_r, ok) = reorder(&resume_args);
    assert!(ok, "resume failed: {stderr_r}");
    assert_eq!(stdout_a, stdout_r, "resumed summary output must match");
    assert_eq!(
        std::fs::read(dir_a.join("summary.txt")).unwrap(),
        std::fs::read(dir_b.join("summary.txt")).unwrap(),
        "summary.txt must be byte-identical after resume"
    );
    assert_eq!(
        std::fs::read(dir_a.join("campaign.jsonl")).unwrap(),
        std::fs::read(dir_b.join("campaign.jsonl")).unwrap(),
        "campaign.jsonl must be byte-identical after resume"
    );

    // Both equal the unsharded survey's JSONL for the same plan.
    let (survey_jsonl, survey_err, ok) = reorder(&[
        "survey",
        "--hosts",
        "12",
        "--samples",
        "3",
        "--seed",
        "21",
        "--no-baseline",
        "--jsonl",
        "-",
    ]);
    assert!(ok, "survey failed: {survey_err}");
    assert_eq!(
        survey_jsonl.into_bytes(),
        std::fs::read(dir_a.join("campaign.jsonl")).unwrap(),
        "campaign JSONL must equal the unsharded survey's"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn shard_rejections_exit_nonzero_with_accepted_form() {
    for bad in ["1/0", "0/4", "5/4", "abc"] {
        let (_, stderr, ok) = reorder(&["survey", "--hosts", "4", "--shard", bad]);
        assert!(!ok, "--shard {bad} must exit nonzero");
        assert!(
            stderr.contains("accepted: K/N"),
            "--shard {bad}: error must name the accepted form: {stderr}"
        );
    }
}

#[test]
fn help_and_errors() {
    let (stdout, _, ok) = reorder(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));

    let (_, stderr, ok) = reorder(&["measure", "--bogus-flag", "1"]);
    assert!(!ok, "unknown option must fail");
    assert!(stderr.contains("bogus-flag"));

    let (_, stderr, ok) = reorder(&["frobnicate"]);
    assert!(!ok, "unknown command must fail");
    assert!(stderr.contains("frobnicate"));
}
