//! End-to-end smoke tests: run the built `reorder` binary as a user
//! would and assert the output carries a parseable reordering estimate.

use std::process::Command;

fn reorder(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_reorder"))
        .args(args)
        .output()
        .expect("spawn reorder binary");
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
        out.status.success(),
    )
}

/// Parse `"<label>: <pct>% [<lo>%, <hi>%] (<k>/<n>)"` into
/// `(rate, lo, hi, reordered, total)`.
fn parse_estimate(line: &str) -> (f64, f64, f64, u64, u64) {
    let (_, rest) = line.split_once(':').expect("label");
    let mut nums = rest
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<f64>().expect("number"));
    let rate = nums.next().expect("rate");
    let lo = nums.next().expect("ci low");
    let hi = nums.next().expect("ci high");
    let k = nums.next().expect("reordered count") as u64;
    let n = nums.next().expect("total count") as u64;
    (rate, lo, hi, k, n)
}

#[test]
fn measure_single_reports_parseable_estimate() {
    let (stdout, stderr, ok) = reorder(&[
        "measure",
        "--technique",
        "single",
        "--samples",
        "20",
        "--seed",
        "1",
    ]);
    assert!(ok, "reorder measure failed: {stderr}");

    let fwd = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("forward:"))
        .unwrap_or_else(|| panic!("no forward estimate in output:\n{stdout}"));
    let (rate, lo, hi, k, n) = parse_estimate(fwd);
    assert_eq!(n, 20, "sample count should match --samples 20");
    assert!(k <= n, "reordered count exceeds total");
    assert!((0.0..=100.0).contains(&rate), "rate out of range: {rate}");
    assert!(
        lo <= rate + 1e-9 && rate <= hi + 1e-9,
        "point estimate outside CI"
    );

    let rev = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("reverse:"))
        .unwrap_or_else(|| panic!("no reverse estimate in output:\n{stdout}"));
    let (_, _, _, rk, rn) = parse_estimate(rev);
    assert!(rk <= rn);
}

#[test]
fn measure_is_deterministic_per_seed() {
    let run = || reorder(&["measure", "--samples", "20", "--seed", "7"]).0;
    assert_eq!(run(), run(), "same seed must reproduce the same output");
    let other = reorder(&["measure", "--samples", "20", "--seed", "8"]).0;
    assert_ne!(run(), other, "different seeds should differ somewhere");
}

#[test]
fn survey_sim_versions_are_deterministic_and_distinct() {
    let run = |v: &str| {
        let (stdout, stderr, ok) = reorder(&[
            "survey",
            "--hosts",
            "12",
            "--samples",
            "4",
            "--seed",
            "5",
            "--sim-version",
            v,
        ]);
        assert!(ok, "survey --sim-version {v} failed: {stderr}");
        stdout
    };
    // Byte-deterministic per version...
    assert_eq!(run("1"), run("1"), "v1 must be reproducible");
    assert_eq!(run("2"), run("2"), "v2 must be reproducible");
    // ...and the model swap is a declared break, not a no-op: seed 5's
    // 12-host population draws a striping host whose estimates move, so
    // the two versions' summaries differ.
    assert_ne!(run("1"), run("2"), "versions must be distinguishable");
}

#[test]
fn progress_never_touches_jsonl_stdout() {
    // `--jsonl -` owns stdout; heartbeat and summary ride stderr. The
    // machine-readable bytes must be identical with and without
    // `--progress` (and with telemetry on for good measure).
    let base = &[
        "survey",
        "--hosts",
        "12",
        "--samples",
        "4",
        "--seed",
        "5",
        "--jsonl",
        "-",
    ];
    let (plain, plain_err, ok) = reorder(base);
    assert!(ok, "survey --jsonl - failed: {plain_err}");
    let noisy = [base as &[&str], &["--progress", "--telemetry", "full"]].concat();
    let (noisy_out, _, ok) = reorder(&noisy);
    assert!(ok);
    assert_eq!(
        plain, noisy_out,
        "--progress/--telemetry altered the JSONL stream"
    );
    assert_eq!(
        plain.lines().count(),
        12,
        "one JSON line per host on stdout"
    );
    assert!(
        plain.lines().all(|l| l.starts_with('{')),
        "non-JSONL noise on stdout"
    );
    // The human summary still reaches the user — on stderr.
    assert!(
        plain_err.contains("hosts"),
        "summary missing from stderr: {plain_err}"
    );
}

#[test]
fn metrics_document_smoke() {
    let (stdout, stderr, ok) = reorder(&[
        "survey",
        "--hosts",
        "8",
        "--samples",
        "4",
        "--seed",
        "3",
        "--workers",
        "2",
        "--metrics",
        "-",
    ]);
    assert!(ok, "survey --metrics - failed: {stderr}");
    let doc = stdout
        .lines()
        .last()
        .expect("metrics document on the last stdout line");
    for key in [
        "\"schema\":\"reorder.metrics/1\"",
        "\"mode\":\"summary\"",
        "\"hosts\":8",
        "\"workers\":2",
        "\"seed\":3",
        "\"wall_s\":",
        "\"events\":",
        "\"steals\":",
        "\"merged\":{",
        "\"per_worker\":[",
        "\"netsim.events\":",
        "\"sched.tasks\":",
        "\"agg.absorbs\":8",
        "\"host\":{\"count\":8",
    ] {
        assert!(doc.contains(key), "missing {key} in metrics doc: {doc}");
    }
    // Footer now surfaces the event count and rate (satellite fix).
    assert!(
        stderr.contains("event(s)"),
        "no event count in footer: {stderr}"
    );

    // Contradictory flags are rejected up front.
    let (_, stderr, ok) = reorder(&[
        "survey",
        "--hosts",
        "4",
        "--metrics",
        "-",
        "--telemetry",
        "off",
    ]);
    assert!(!ok, "--metrics with --telemetry off must fail");
    assert!(stderr.contains("--metrics needs telemetry"), "{stderr}");
}

#[test]
fn help_and_errors() {
    let (stdout, _, ok) = reorder(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));

    let (_, stderr, ok) = reorder(&["measure", "--bogus-flag", "1"]);
    assert!(!ok, "unknown option must fail");
    assert!(stderr.contains("bogus-flag"));

    let (_, stderr, ok) = reorder(&["frobnicate"]);
    assert!(!ok, "unknown command must fail");
    assert!(stderr.contains("frobnicate"));
}
