pub fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("boom");
    if (a as f64) == 1.0 {
        panic!("no");
    }
    if 0.5 != (b as f64) {
        todo!()
    }
    a + b
}
