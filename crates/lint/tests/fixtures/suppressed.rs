pub fn trailing_allow(x: Option<u8>) -> u8 {
    x.unwrap() // reorder-lint: allow(unwrap, caller guarantees Some by construction)
}
pub fn line_above_allow(x: Option<u8>) -> u8 {
    // reorder-lint: allow(unwrap, checked by caller)
    x.unwrap()
}
pub fn reasonless_allow_does_not_suppress(x: Option<u8>) -> u8 {
    x.unwrap() // reorder-lint: allow(unwrap)
}
// reorder-lint: allow(expect, nothing below actually uses expect)
pub fn unused_allow_is_flagged() {}
// reorder-lint: allow(made-up-rule, this rule does not exist)
pub fn unknown_rule_is_flagged() {}
