use std::collections::HashMap;
use std::collections::HashSet;
use std::time::SystemTime;
pub fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = Instant::now();
    let _ = std::env::var("REORDER_SECRET_KNOB");
    let mut r = thread_rng();
    let s: HashSet<u8> = HashSet::new();
    let _ = rand::random::<u8>();
}
