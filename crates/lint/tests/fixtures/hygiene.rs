pub fn noisy() {
    println!("progress: done");
    dbg!(42);
}
