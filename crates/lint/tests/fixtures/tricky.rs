pub fn strings_do_not_count() {
    let s = "x.unwrap() HashMap Instant::now() panic!";
    let r = r#"y.expect("inner") HashSet std::env::var"#;
    let raw2 = r##"dbg!(1) println!("x") thread_rng()"##;
    let c = 'x';
    let esc = '\'';
    let byte = b'"';
    let bytes = b"unwrap() everywhere";
    /* block comment: .unwrap() HashMap panic!("x")
       spanning lines, nested /* .expect("z") */ still out */
    let lifetime: &'static str = s;
}
#[cfg(test)]
mod tests {
    fn test_code_is_exempt(x: Option<u8>) -> u8 {
        let m: HashMap<u8, u8> = HashMap::new();
        println!("{}", x.expect("fine in tests"));
        x.unwrap()
    }
}
#[test]
fn bare_test_fn_is_exempt() {
    Some(1).unwrap();
}
pub fn the_only_real_finding(x: Option<u8>) -> u8 {
    x.unwrap()
}
