//! Fixture tests: every rule class fires at exactly the expected
//! (rule, line) set — including the tricky cases (patterns inside
//! string literals, inside `#[cfg(test)]` items, suppressed with and
//! without a reason) — and path scoping routes rules to the right
//! crates.

use reorder_lint::scan_source;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// (rule, line) pairs, in the scanner's reporting order.
fn findings(virtual_path: &str, src: &str) -> Vec<(String, usize)> {
    scan_source(virtual_path, src)
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn determinism_rules_fire_per_line() {
    let got = findings("crates/core/src/fx.rs", &fixture("determinism.rs"));
    let want = vec![
        ("hash-collections", 1),
        ("hash-collections", 2),
        ("wall-clock", 3),
        ("hash-collections", 5),
        ("wall-clock", 6),
        ("env-read", 7),
        ("unseeded-rng", 8),
        ("hash-collections", 9),
        ("unseeded-rng", 10),
    ];
    let want: Vec<(String, usize)> = want.into_iter().map(|(r, l)| (r.to_string(), l)).collect();
    assert_eq!(got, want);
}

#[test]
fn robustness_rules_fire_per_line() {
    let got = findings("crates/core/src/fx.rs", &fixture("robustness.rs"));
    let want: Vec<(String, usize)> = [
        ("unwrap", 2),
        ("expect", 3),
        ("float-eq", 4),
        ("panic", 5),
        ("float-eq", 7),
        ("panic", 8),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, want);
}

#[test]
fn hygiene_rules_fire_in_library_crate_root() {
    let got = findings("crates/netsim/src/lib.rs", &fixture("hygiene.rs"));
    let want: Vec<(String, usize)> = [("forbid-unsafe", 1), ("println", 2), ("dbg-macro", 3)]
        .into_iter()
        .map(|(r, l)| (r.to_string(), l))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn strings_comments_and_test_code_are_invisible() {
    let got = findings("crates/core/src/fx.rs", &fixture("tricky.rs"));
    assert_eq!(got, vec![("unwrap".to_string(), 26)]);
}

#[test]
fn suppressions_require_reasons_and_must_be_used() {
    let got = findings("crates/core/src/fx.rs", &fixture("suppressed.rs"));
    let want: Vec<(String, usize)> = [
        ("bad-allow", 9),
        ("unwrap", 9),
        ("unused-allow", 11),
        ("unknown-rule", 13),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, want);
}

#[test]
fn scoping_println_and_determinism_do_not_apply_to_cli() {
    // Same hygiene fixture, but under the CLI crate: println! is the
    // CLI's job and the file is not a crate root, so only dbg! fires.
    let got = findings("crates/cli/src/fx.rs", &fixture("hygiene.rs"));
    assert_eq!(got, vec![("dbg-macro".to_string(), 3)]);
}

#[test]
fn scoping_bench_bins_are_exempt_from_robustness() {
    let got = findings("crates/bench/src/bin/fx.rs", &fixture("robustness.rs"));
    assert_eq!(got, Vec::<(String, usize)>::new());
}

#[test]
fn scoping_determinism_only_in_output_affecting_crates() {
    // The determinism fixture under bench (not output-affecting):
    // no determinism findings, and nothing robustness-shaped in it.
    let got = findings("crates/bench/src/fx.rs", &fixture("determinism.rs"));
    assert_eq!(got, Vec::<(String, usize)>::new());
}

#[test]
fn files_outside_scanned_roots_yield_nothing() {
    let src = fixture("robustness.rs");
    assert_eq!(findings("vendor/rand/src/lib.rs", &src), vec![]);
    assert_eq!(findings("crates/core/tests/fx.rs", &src), vec![]);
    assert_eq!(findings("crates/core/benches/fx.rs", &src), vec![]);
}

#[test]
fn rule_table_ids_are_unique_and_kebab_case() {
    let mut seen = std::collections::BTreeSet::new();
    for (id, _, desc) in reorder_lint::RULES {
        assert!(seen.insert(*id), "duplicate rule id {id}");
        assert!(
            id.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
            "rule id {id} is not kebab-case"
        );
        assert!(!desc.is_empty());
    }
}
