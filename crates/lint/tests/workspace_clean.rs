//! Self-test: the live workspace is clean against the committed
//! baseline. This is the tier-1 wiring — `cargo test` fails the moment
//! anyone introduces an unbaselined finding, even before CI's
//! dedicated lint job runs the binary.

use reorder_lint::baseline::{check, parse};
use reorder_lint::{scan_workspace, RuleClass, BASELINE_FILE};
use std::path::Path;

fn root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn live_workspace_is_clean_against_committed_baseline() {
    let root = root();
    let scan = scan_workspace(&root).expect("workspace scans");
    assert!(
        scan.files.len() >= 80,
        "suspiciously few files scanned ({}) — walker broken?",
        scan.files.len()
    );
    let text = std::fs::read_to_string(root.join(BASELINE_FILE))
        .expect("lint-baseline.txt present at workspace root");
    let base = parse(&text).expect("committed baseline parses");
    let outcome = check(&scan.violations, &base);
    let mut msg = String::new();
    for v in &outcome.unbaselined {
        msg.push_str(&format!(
            "{}:{}: [{}] {}\n",
            v.file, v.line, v.rule, v.message
        ));
    }
    for s in &outcome.stale {
        msg.push_str(&format!("stale baseline entry: {s}\n"));
    }
    assert!(
        outcome.clean(),
        "workspace has lint findings — fix them, justify inline, or \
         (robustness/hygiene only) re-bless with \
         `cargo run -p reorder-lint -- --bless`:\n{msg}"
    );
}

#[test]
fn committed_baseline_has_zero_determinism_entries() {
    // `parse` already rejects determinism entries; this pins the
    // acceptance criterion explicitly and keeps the guarantee visible
    // even if parse's policy ever loosens.
    let text = std::fs::read_to_string(root().join(BASELINE_FILE)).expect("baseline readable");
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = line.split('\t').next().unwrap_or("");
        let class = reorder_lint::rules::rule_class(rule).expect("known rule");
        assert!(
            matches!(class, RuleClass::Robustness | RuleClass::Hygiene),
            "baseline entry for `{rule}` is {class:?} — only robustness/hygiene debt may be baselined"
        );
    }
}

#[test]
fn scanned_file_set_is_scoped_to_first_party_src() {
    let files = reorder_lint::workspace_files(&root()).expect("walk");
    for f in &files {
        assert!(
            f.starts_with("src/") || f.starts_with("crates/"),
            "unexpected scan root: {f}"
        );
        assert!(
            !f.contains("/tests/") && !f.contains("/benches/") && !f.contains("/examples/"),
            "non-library file scanned: {f}"
        );
        assert!(!f.starts_with("vendor/"), "vendored shim scanned: {f}");
    }
    // The linter must scan itself.
    assert!(files.iter().any(|f| f == "crates/lint/src/main.rs"));
}
