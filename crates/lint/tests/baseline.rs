//! Baseline semantics: shrink-only, determinism findings unbaselineable,
//! stale entries fatal.

use reorder_lint::baseline::{check, parse, render};
use reorder_lint::rules::{RuleClass, Violation};

fn v(rule: &'static str, class: RuleClass, file: &str, line: usize) -> Violation {
    Violation {
        rule,
        class,
        file: file.to_string(),
        line,
        message: String::new(),
    }
}

#[test]
fn round_trip_blessed_baseline_is_clean() {
    let vs = vec![
        v("expect", RuleClass::Robustness, "crates/core/src/a.rs", 3),
        v("expect", RuleClass::Robustness, "crates/core/src/a.rs", 9),
        v("panic", RuleClass::Robustness, "crates/netsim/src/b.rs", 1),
    ];
    let text = render(&vs).expect("renders");
    let base = parse(&text).expect("parses");
    let outcome = check(&vs, &base);
    assert!(
        outcome.clean(),
        "{:?} / {:?}",
        outcome.unbaselined,
        outcome.stale
    );
    assert_eq!(outcome.covered, 3);
}

#[test]
fn new_finding_beyond_baseline_fails() {
    let old = vec![v(
        "expect",
        RuleClass::Robustness,
        "crates/core/src/a.rs",
        3,
    )];
    let base = parse(&render(&old).expect("renders")).expect("parses");
    let mut now = old.clone();
    now.push(v(
        "expect",
        RuleClass::Robustness,
        "crates/core/src/a.rs",
        7,
    ));
    let outcome = check(&now, &base);
    assert!(!outcome.clean());
    // Both findings for the over-budget key are listed, with lines.
    assert_eq!(outcome.unbaselined.len(), 2);
    assert!(outcome.stale.is_empty());
}

#[test]
fn fixed_finding_makes_baseline_stale() {
    let old = vec![
        v("expect", RuleClass::Robustness, "crates/core/src/a.rs", 3),
        v("expect", RuleClass::Robustness, "crates/core/src/a.rs", 9),
    ];
    let base = parse(&render(&old).expect("renders")).expect("parses");
    let outcome = check(&old[..1], &base);
    assert!(!outcome.clean());
    assert_eq!(outcome.stale.len(), 1, "{:?}", outcome.stale);
    assert!(outcome.stale[0].contains("shrink"));
}

#[test]
fn fully_fixed_file_makes_baseline_stale() {
    let old = vec![v("panic", RuleClass::Robustness, "crates/core/src/a.rs", 3)];
    let base = parse(&render(&old).expect("renders")).expect("parses");
    let outcome = check(&[], &base);
    assert!(!outcome.clean());
    assert_eq!(outcome.stale.len(), 1);
    assert!(outcome.stale[0].contains("remove the entry"));
}

#[test]
fn determinism_findings_cannot_be_blessed() {
    let vs = vec![v(
        "hash-collections",
        RuleClass::Determinism,
        "crates/survey/src/engine.rs",
        10,
    )];
    let err = render(&vs).expect_err("must refuse");
    assert!(err.contains("cannot be blessed"), "{err}");
}

#[test]
fn determinism_entries_in_baseline_text_are_rejected() {
    let err = parse("hash-collections\tcrates/survey/src/engine.rs\t1\n").expect_err("must refuse");
    assert!(err.contains("cannot be baselined"), "{err}");
}

#[test]
fn meta_and_unknown_and_zero_entries_are_rejected() {
    assert!(parse("unused-allow\tsrc/lib.rs\t1\n").is_err());
    assert!(parse("no-such-rule\tsrc/lib.rs\t1\n").is_err());
    assert!(parse("expect\tsrc/lib.rs\t0\n").is_err());
    assert!(parse("expect\tsrc/lib.rs\n").is_err());
}

#[test]
fn determinism_findings_always_fail_even_with_empty_baseline() {
    let vs = vec![v(
        "wall-clock",
        RuleClass::Determinism,
        "crates/netsim/src/x.rs",
        2,
    )];
    let outcome = check(&vs, &Default::default());
    assert_eq!(outcome.unbaselined.len(), 1);
}
