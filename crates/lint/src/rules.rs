//! Rule definitions, path scoping, and the per-file matcher.
//!
//! Three enforced tiers, mirroring the byte-identical contract the
//! workspace sells (see README "Static analysis"):
//!
//! * **Determinism** — patterns that can silently change campaign
//!   bytes across runs, machines, or std versions. These can never be
//!   baselined: fix them or justify them inline with
//!   `// reorder-lint: allow(rule, reason)`.
//! * **Robustness** — panic paths and float equality in library code.
//!   Baselined (shrink-only) so the debt is visible and can only go
//!   down.
//! * **Hygiene** — `#![forbid(unsafe_code)]` presence, `dbg!`, stray
//!   `println!` in library crates.
//!
//! Rules are scoped by path, not by configuration: the crates whose
//! output feeds the campaign byte-contract (`wire`, `netsim`,
//! `tcpstack`, `core`, `survey`, `campaign`) get the determinism
//! tier; `crates/bench/src/bin` (offline experiment harnesses) is
//! exempt from the robustness tier; `println!` is only an offense in
//! library crates (the CLI and bench bins print by design).

use crate::scanner;

/// Severity/handling class of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleClass {
    /// Nondeterminism hazards. Never baselineable.
    Determinism,
    /// Panic paths / float equality. Baselineable, shrink-only.
    Robustness,
    /// Workspace hygiene. Baselineable, shrink-only.
    Hygiene,
    /// Problems with the lint machinery itself (bad or unused
    /// suppressions). Never baselineable.
    Meta,
}

impl RuleClass {
    pub fn as_str(self) -> &'static str {
        match self {
            RuleClass::Determinism => "determinism",
            RuleClass::Robustness => "robustness",
            RuleClass::Hygiene => "hygiene",
            RuleClass::Meta => "meta",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (kebab-case, stable — baseline keys and allow comments
    /// use it).
    pub rule: &'static str,
    pub class: RuleClass,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Crates whose code can move campaign output bytes: the simulation,
/// the measurement core, and the aggregation/orchestration layers.
pub const DETERMINISM_CRATES: &[&str] =
    &["wire", "netsim", "tcpstack", "core", "survey", "campaign"];

/// Library crates where `println!` would pollute a machine-readable
/// stdout (JSONL streams, summary pipes).
pub const LIBRARY_CRATES: &[&str] = DETERMINISM_CRATES;

/// Every rule id, with class and a one-line description — the single
/// source of truth for `--list-rules`, the docs test, and baseline
/// validation.
pub const RULES: &[(&str, RuleClass, &str)] = &[
    (
        "hash-collections",
        RuleClass::Determinism,
        "HashMap/HashSet in an output-affecting crate (iteration order is unseeded-hash order; use BTreeMap/BTreeSet or sort before iterating)",
    ),
    (
        "wall-clock",
        RuleClass::Determinism,
        "Instant::now/SystemTime in an output-affecting crate (wall time must never feed campaign bytes)",
    ),
    (
        "unseeded-rng",
        RuleClass::Determinism,
        "thread_rng/from_entropy/OsRng/rand::random in an output-affecting crate (all randomness must come from the seeded per-host streams)",
    ),
    (
        "env-read",
        RuleClass::Determinism,
        "std::env read in an output-affecting crate (environment must not steer simulation or aggregation)",
    ),
    (
        "unwrap",
        RuleClass::Robustness,
        ".unwrap() in non-test library code (propagate or classify the error instead)",
    ),
    (
        "expect",
        RuleClass::Robustness,
        ".expect(..) in non-test library code (propagate or classify the error instead)",
    ),
    (
        "panic",
        RuleClass::Robustness,
        "panic!/todo!/unimplemented! in non-test library code",
    ),
    (
        "float-eq",
        RuleClass::Robustness,
        "== / != against a float literal (use an epsilon, integers, or justify the exact compare)",
    ),
    (
        "forbid-unsafe",
        RuleClass::Hygiene,
        "crate root missing #![forbid(unsafe_code)]",
    ),
    (
        "dbg-macro",
        RuleClass::Hygiene,
        "dbg! left in committed code",
    ),
    (
        "println",
        RuleClass::Hygiene,
        "println! in a library crate (library output goes through sinks/render, not stdout)",
    ),
    (
        "bad-allow",
        RuleClass::Meta,
        "malformed reorder-lint suppression or missing reason",
    ),
    (
        "unused-allow",
        RuleClass::Meta,
        "suppression that matches no finding on its target line",
    ),
    (
        "unknown-rule",
        RuleClass::Meta,
        "suppression names a rule id that does not exist",
    ),
];

/// Look up a rule's class by id.
pub fn rule_class(id: &str) -> Option<RuleClass> {
    RULES.iter().find(|(r, _, _)| *r == id).map(|&(_, c, _)| c)
}

/// Where a file sits in the workspace, for scoping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCtx {
    /// Crate directory name under `crates/` (or `"reorder"` for the
    /// root facade package).
    pub crate_name: String,
    /// Under `src/bin/` (a standalone binary root).
    pub in_bin: bool,
    /// `src/lib.rs` or `src/main.rs` — the file that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Classify a workspace-relative path. Returns `None` for files the
/// linter does not scan (vendor shims, tests, benches, examples,
/// build output).
pub fn classify(rel: &str) -> Option<PathCtx> {
    let rel = rel.replace('\\', "/");
    let (crate_name, under_src) = if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        (name.to_string(), tail.strip_prefix("src/")?.to_string())
    } else if let Some(tail) = rel.strip_prefix("src/") {
        ("reorder".to_string(), tail.to_string())
    } else {
        return None;
    };
    if !under_src.ends_with(".rs") {
        return None;
    }
    let in_bin = under_src.starts_with("bin/");
    let is_crate_root = under_src == "lib.rs" || under_src == "main.rs";
    Some(PathCtx {
        crate_name,
        in_bin,
        is_crate_root,
    })
}

fn determinism_applies(ctx: &PathCtx) -> bool {
    DETERMINISM_CRATES.contains(&ctx.crate_name.as_str())
}

fn robustness_applies(ctx: &PathCtx) -> bool {
    // Everything except the offline experiment harnesses under
    // `crates/bench/src/bin` — those are one-shot tools whose panics
    // reach a developer terminal, not a campaign.
    !(ctx.crate_name == "bench" && ctx.in_bin)
}

fn println_applies(ctx: &PathCtx) -> bool {
    LIBRARY_CRATES.contains(&ctx.crate_name.as_str())
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// All identifier-boundary occurrences of `tok` in `line` (byte
/// offsets).
fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let lb = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(tok) {
        let at = from + p;
        let pre_ok = at == 0 || !is_ident_char(lb[at - 1]);
        let end = at + tok.len();
        let post_ok = end >= lb.len() || !is_ident_char(lb[end]);
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + tok.len().max(1);
    }
    out
}

fn has_token(line: &str, tok: &str) -> bool {
    !token_positions(line, tok).is_empty()
}

/// `.name(` with optional whitespace around the dot and before the
/// paren — the shape of a method call.
fn method_call(line: &str, name: &str) -> bool {
    let lb = line.as_bytes();
    for at in token_positions(line, name) {
        let before = line[..at].trim_end().as_bytes();
        if before.last() != Some(&b'.') {
            continue;
        }
        let mut j = at + name.len();
        while j < lb.len() && (lb[j] == b' ' || lb[j] == b'\t') {
            j += 1;
        }
        if j < lb.len() && lb[j] == b'(' {
            return true;
        }
    }
    false
}

/// `name!` macro invocation.
fn macro_call(line: &str, name: &str) -> bool {
    let lb = line.as_bytes();
    token_positions(line, name)
        .into_iter()
        .any(|at| lb.get(at + name.len()) == Some(&b'!'))
}

/// Is `tok` (scraped from beside a comparison operator) a float
/// literal? `0.0`, `1.`, `1.0f64`, `1e-3f32`, `1_000.5`.
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32");
    let t = t.trim_end_matches('_');
    if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let has_dot = t.contains('.');
    let has_exp = t[1..].contains(['e', 'E']);
    let had_suffix = t.len() != tok.len();
    if !(has_dot || has_exp || had_suffix) {
        return false;
    }
    t.bytes()
        .all(|c| c.is_ascii_digit() || c == b'.' || c == b'_' || c == b'e' || c == b'E')
}

/// Scrape the operand token touching the comparison on one side.
fn operand_back(s: &str) -> &str {
    let t = s.trim_end();
    let start = t
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &t[start..]
}

fn operand_fwd(s: &str) -> &str {
    let t = s.trim_start();
    let end = t
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .unwrap_or(t.len());
    &t[..end]
}

/// Does the line compare (`==`/`!=`) against a float literal?
fn float_eq(line: &str) -> bool {
    for op in ["==", "!="] {
        let mut from = 0;
        while let Some(p) = line[from..].find(op).map(|p| from + p) {
            let pre = &line[..p];
            let post = &line[p + op.len()..];
            if is_float_literal(operand_back(pre)) || is_float_literal(operand_fwd(post)) {
                return true;
            }
            from = p + op.len();
        }
    }
    false
}

/// Run every in-scope rule over one masked, test-blanked file.
/// `scan_lines` are the lines rules match on; `full_masked` is the
/// same file *without* test-blanking (for the crate-root attribute
/// check, which must see `#![forbid(unsafe_code)]` wherever it is).
pub fn match_rules(
    ctx: &PathCtx,
    rel: &str,
    scan_lines: &[&str],
    full_masked: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |rule: &'static str, class: RuleClass, line: usize, msg: String| {
        out.push(Violation {
            rule,
            class,
            file: rel.to_string(),
            line,
            message: msg,
        });
    };
    let det = determinism_applies(ctx);
    let robust = robustness_applies(ctx);
    for (idx, line) in scan_lines.iter().enumerate() {
        let ln = idx + 1;
        if det {
            for tok in ["HashMap", "HashSet"] {
                if has_token(line, tok) {
                    push(
                        "hash-collections",
                        RuleClass::Determinism,
                        ln,
                        format!("`{tok}` in `{}` — iteration order is unseeded-hash order; use BTreeMap/BTreeSet or sorted iteration", ctx.crate_name),
                    );
                }
            }
            if line.contains("Instant::now") || has_token(line, "SystemTime") {
                push(
                    "wall-clock",
                    RuleClass::Determinism,
                    ln,
                    "wall-clock read in an output-affecting crate".to_string(),
                );
            }
            if has_token(line, "thread_rng")
                || has_token(line, "from_entropy")
                || has_token(line, "OsRng")
                || line.contains("rand::random")
            {
                push(
                    "unseeded-rng",
                    RuleClass::Determinism,
                    ln,
                    "unseeded randomness in an output-affecting crate".to_string(),
                );
            }
            if line.contains("std::env") || line.contains("env::var") || line.contains("env::args")
            {
                push(
                    "env-read",
                    RuleClass::Determinism,
                    ln,
                    "environment read in an output-affecting crate".to_string(),
                );
            }
        }
        if robust {
            if method_call(line, "unwrap") {
                push(
                    "unwrap",
                    RuleClass::Robustness,
                    ln,
                    ".unwrap() in non-test library code".to_string(),
                );
            }
            if method_call(line, "expect") {
                push(
                    "expect",
                    RuleClass::Robustness,
                    ln,
                    ".expect(..) in non-test library code".to_string(),
                );
            }
            for mac in ["panic", "todo", "unimplemented"] {
                if macro_call(line, mac) {
                    push(
                        "panic",
                        RuleClass::Robustness,
                        ln,
                        format!("`{mac}!` in non-test library code"),
                    );
                }
            }
            if float_eq(line) {
                push(
                    "float-eq",
                    RuleClass::Robustness,
                    ln,
                    "equality comparison against a float literal".to_string(),
                );
            }
        }
        if macro_call(line, "dbg") {
            push(
                "dbg-macro",
                RuleClass::Hygiene,
                ln,
                "dbg! left in committed code".to_string(),
            );
        }
        if println_applies(ctx) && macro_call(line, "println") {
            push(
                "println",
                RuleClass::Hygiene,
                ln,
                format!("println! in library crate `{}`", ctx.crate_name),
            );
        }
    }
    if ctx.is_crate_root && !ctx.in_bin && !full_masked.contains("forbid(unsafe_code)") {
        push(
            "forbid-unsafe",
            RuleClass::Hygiene,
            1,
            "crate root missing #![forbid(unsafe_code)]".to_string(),
        );
    }
    out
}

/// Scan one file: mask, blank test regions, parse suppressions, match
/// rules, apply suppressions. This is the unit the fixture tests and
/// the workspace walker share.
pub fn scan_source(rel: &str, src: &str) -> Vec<Violation> {
    let Some(ctx) = classify(rel) else {
        return Vec::new();
    };
    let masked = scanner::mask_source(src);
    let scan_text = scanner::blank_test_regions(&masked.code);
    let masked_lines: Vec<&str> = masked.code.split('\n').collect();
    let scan_lines: Vec<&str> = scan_text.split('\n').collect();
    let (mut allows, bad) = scanner::parse_allows(&masked.comments, &masked_lines);

    let mut violations = Vec::new();
    for b in bad {
        violations.push(Violation {
            rule: "bad-allow",
            class: RuleClass::Meta,
            file: rel.to_string(),
            line: b.line,
            message: b.detail,
        });
    }
    for a in &allows {
        if rule_class(&a.rule).is_none() {
            violations.push(Violation {
                rule: "unknown-rule",
                class: RuleClass::Meta,
                file: rel.to_string(),
                line: a.comment_line,
                message: format!(
                    "suppression names unknown rule `{}` — run with --list-rules",
                    a.rule
                ),
            });
        }
    }

    for v in match_rules(&ctx, rel, &scan_lines, &masked.code) {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == v.rule && a.target_line == v.line)
            .map(|a| a.used = true)
            .is_some();
        if !suppressed {
            violations.push(v);
        }
    }

    for a in &allows {
        if !a.used && rule_class(&a.rule).is_some() {
            violations.push(Violation {
                rule: "unused-allow",
                class: RuleClass::Meta,
                file: rel.to_string(),
                line: a.comment_line,
                message: format!(
                    "suppression for `{}` matches no finding on line {} — remove it",
                    a.rule, a.target_line
                ),
            });
        }
    }

    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}
