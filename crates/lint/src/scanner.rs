//! Comment/string-aware source scanner.
//!
//! `reorder-lint` has no access to a registry, so there is no `syn`;
//! the rules it enforces are all lexical (a forbidden identifier, a
//! forbidden macro, a comparison against a float literal), which means
//! a full parse is unnecessary — but a *naive* substring search is not
//! enough either, because the patterns routinely appear inside string
//! literals, doc comments, and `#[cfg(test)]` modules where they are
//! harmless. This module closes exactly that gap:
//!
//! * [`mask_source`] replaces every comment, string literal (plain,
//!   raw, byte, byte-raw) and char literal with spaces, byte-for-byte,
//!   so offsets and line structure are preserved and rules only ever
//!   match real code. Line comments are collected on the side so the
//!   `// reorder-lint: allow(rule, reason)` suppressions can be parsed
//!   from them.
//! * [`blank_test_regions`] additionally blanks every item annotated
//!   `#[cfg(test)]` or `#[test]` (attribute through matching close
//!   brace, or through `;` for brace-less items), so test-only code is
//!   invisible to the library-code rules.
//! * [`parse_allows`] extracts the inline suppressions, resolving each
//!   to the line of code it targets: the same line when the comment
//!   trails code, otherwise the next line that contains code.

/// One `//` comment, with enough position info to resolve suppression
/// targets.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text after the `//` (not trimmed).
    pub text: String,
    /// Whether masked code (non-whitespace) precedes the comment on
    /// its own line — i.e. the comment trails a statement.
    pub trails_code: bool,
}

/// Result of [`mask_source`].
pub struct Masked {
    /// The source with comments and string/char literals blanked to
    /// spaces. Newlines are preserved, so line numbers line up with
    /// the original.
    pub code: String,
    /// Every `//` comment in the file, in order.
    pub comments: Vec<LineComment>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank `out[start..end]` to spaces, preserving newline bytes so the
/// line structure survives.
fn blank_range(out: &mut [u8], start: usize, end: usize) {
    let end = end.min(out.len());
    for b in &mut out[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Mask comments and literals. Total over arbitrary input: unterminated
/// literals or comments simply blank to end-of-file.
pub fn mask_source(src: &str) -> Masked {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize; // byte offset of current line start
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            line_start = i + 1;
            i += 1;
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            // Line comment (also covers `///` and `//!` doc comments).
            let start = i;
            let mut j = i + 2;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            let trails_code = out[line_start..start]
                .iter()
                .any(|&x| x != b' ' && x != b'\t');
            comments.push(LineComment {
                line,
                text: src[start + 2..j].to_string(),
                trails_code,
            });
            blank_range(&mut out, start, j);
            i = j;
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            // Block comment, nestable.
            let start = i;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == b'\n' {
                        line += 1;
                        line_start = j + 1;
                    }
                    j += 1;
                }
            }
            blank_range(&mut out, start, j);
            i = j;
            continue;
        }
        // Raw strings: r"…", r#"…"#, br"…", b r#…# — only when the
        // `r`/`b` is not the tail of a longer identifier (`hr"x"`).
        let prev_ident = i > 0 && is_ident_byte(b[i - 1]);
        if !prev_ident && (c == b'r' || c == b'b') {
            let mut k = i + 1;
            if c == b'b' && k < b.len() && b[k] == b'r' {
                k += 1;
            }
            let hash_start = k;
            while k < b.len() && b[k] == b'#' {
                k += 1;
            }
            let hashes = k - hash_start;
            if k < b.len()
                && b[k] == b'"'
                && (c == b'r' || hashes > 0 || b[i + 1] == b'r' || {
                    // `b"…"` plain byte string is handled below.
                    false
                })
            {
                // Find closing `"` followed by `hashes` `#`s.
                let mut j = k + 1;
                loop {
                    if j >= b.len() {
                        break;
                    }
                    if b[j] == b'\n' {
                        line += 1;
                        line_start = j + 1;
                        j += 1;
                        continue;
                    }
                    if b[j] == b'"'
                        && b.len() >= j + 1 + hashes
                        && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                blank_range(&mut out, i, j);
                i = j;
                continue;
            }
        }
        if c == b'"' || (!prev_ident && c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            // Plain (or byte) string literal with escapes.
            let start = i;
            let mut j = if c == b'"' { i + 1 } else { i + 2 };
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        line_start = j + 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            blank_range(&mut out, start, j);
            i = j;
            continue;
        }
        if c == b'\'' || (!prev_ident && c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'') {
            // Char literal vs lifetime. `'\…'` and `'<char>'` are
            // literals; `'ident` (no closing quote right after one
            // char) is a lifetime and stays code.
            let q = if c == b'\'' { i } else { i + 1 };
            if q + 1 < b.len() && b[q + 1] == b'\\' {
                let mut j = q + 2;
                while j < b.len() && b[j] != b'\'' {
                    j += if b[j] == b'\\' { 2 } else { 1 };
                }
                blank_range(&mut out, i, (j + 1).min(b.len()));
                i = (j + 1).min(b.len());
                continue;
            }
            // One char (possibly multi-byte) then a closing quote?
            if let Some(ch) = src[q + 1..].chars().next() {
                let after = q + 1 + ch.len_utf8();
                if after < b.len() && b[after] == b'\'' {
                    blank_range(&mut out, i, after + 1);
                    i = after + 1;
                    continue;
                }
            }
            // Lifetime: leave as code.
            out[i] = c;
            i += 1;
            continue;
        }
        i += 1;
    }
    Masked {
        code: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

/// In already-masked code, blank every item annotated `#[cfg(test)]`
/// or `#[test]`: from the attribute through the item's matching close
/// brace (or terminating `;`). Handles attribute stacks
/// (`#[cfg(test)]` followed by `#[allow(…)]` before the item).
pub fn blank_test_regions(masked: &str) -> String {
    let b = masked.as_bytes();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != b'#' {
            i += 1;
            continue;
        }
        if let Some((attr_end, body)) = parse_attr(b, i) {
            let norm: String = body.chars().filter(|c| !c.is_whitespace()).collect();
            if norm == "cfg(test)" || norm == "test" {
                let end = item_extent(b, attr_end);
                ranges.push((i, end));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    let mut out = b.to_vec();
    for (s, e) in ranges {
        blank_range(&mut out, s, e);
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse an outer attribute starting at `#`. Returns (end offset just
/// past `]`, inner text). Inner attributes (`#![…]`) are skipped (they
/// never gate an item body).
fn parse_attr(b: &[u8], at: usize) -> Option<(usize, String)> {
    let mut i = at + 1;
    while i < b.len() && (b[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= b.len() || b[i] != b'[' {
        return None;
    }
    let start = i + 1;
    let mut depth = 1usize;
    let mut j = start;
    while j < b.len() && depth > 0 {
        match b[j] {
            b'[' => depth += 1,
            b']' => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    if depth != 0 {
        return None;
    }
    Some((j, String::from_utf8_lossy(&b[start..j - 1]).into_owned()))
}

/// From just past a test attribute, find the extent of the annotated
/// item: skip whitespace and further attributes, then scan to the
/// first top-level `{` (returning the offset just past its matching
/// `}`) or to a terminating `;`.
fn item_extent(b: &[u8], from: usize) -> usize {
    let mut i = from;
    loop {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'#' {
            if let Some((end, _)) = parse_attr(b, i) {
                i = end;
                continue;
            }
        }
        break;
    }
    let mut paren = 0isize;
    while i < b.len() {
        match b[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b';' if paren == 0 => return i + 1,
            b'{' if paren == 0 => {
                let mut depth = 1isize;
                let mut j = i + 1;
                while j < b.len() && depth > 0 {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                return j;
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// A parsed `// reorder-lint: allow(rule, reason)` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id being suppressed.
    pub rule: String,
    /// Justification text. Empty means the allow is invalid.
    pub reason: String,
    /// Line the comment sits on.
    pub comment_line: usize,
    /// Line of code the suppression applies to.
    pub target_line: usize,
    /// Set while matching; an allow that suppresses nothing is itself
    /// a finding.
    pub used: bool,
}

/// Outcome of parsing one comment that *tried* to be a suppression but
/// failed (malformed syntax or missing reason).
#[derive(Debug, Clone)]
pub struct BadAllow {
    pub line: usize,
    pub detail: String,
}

/// Extract suppressions from the collected comments. `masked_lines`
/// is the comment/string-masked source split into lines, used to find
/// the next line of code for comments that sit on their own line.
pub fn parse_allows(
    comments: &[LineComment],
    masked_lines: &[&str],
) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("reorder-lint") else {
            continue;
        };
        let rest = rest.trim_start().strip_prefix(':').unwrap_or(rest).trim();
        let parsed = (|| {
            let inner = rest.strip_prefix("allow(")?;
            let close = inner.rfind(')')?;
            let inner = &inner[..close];
            let (rule, reason) = match inner.find(',') {
                Some(p) => (&inner[..p], inner[p + 1..].trim()),
                None => (inner, ""),
            };
            let reason = reason.trim_matches('"').trim();
            Some((rule.trim().to_string(), reason.to_string()))
        })();
        match parsed {
            None => bad.push(BadAllow {
                line: c.line,
                detail: format!(
                    "malformed suppression `//{}` — expected \
                     `// reorder-lint: allow(rule, reason)`",
                    c.text.trim_end()
                ),
            }),
            Some((rule, reason)) if reason.is_empty() => bad.push(BadAllow {
                line: c.line,
                detail: format!(
                    "suppression for `{rule}` is missing its reason — \
                     `// reorder-lint: allow({rule}, why this is safe)`"
                ),
            }),
            Some((rule, reason)) => {
                let target_line = if c.trails_code {
                    c.line
                } else {
                    // First following line with any code on it.
                    (c.line..masked_lines.len())
                        .find(|&ln| !masked_lines[ln].trim().is_empty())
                        .map(|ln| ln + 1) // back to 1-based
                        .unwrap_or(c.line)
                };
                allows.push(Allow {
                    rule,
                    reason,
                    comment_line: c.line,
                    target_line,
                    used: false,
                });
            }
        }
    }
    (allows, bad)
}
