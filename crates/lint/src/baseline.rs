//! Shrink-only baseline.
//!
//! The baseline records, per `(rule, file)`, how many findings the
//! workspace is *known* to carry. `reorder-lint` fails on any finding
//! beyond the recorded count (the debt may not grow) **and** on any
//! recorded count above the actual one (a fixed finding must be
//! removed from the baseline — `--bless` rewrites it — so the file can
//! only shrink). Determinism-class and meta rules can never appear in
//! a baseline: those findings are fixed or justified inline, never
//! parked.

use crate::rules::{rule_class, RuleClass, Violation};
use std::collections::BTreeMap;

/// Baseline key → tolerated finding count.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parse the baseline file format: `rule<TAB>file<TAB>count`, `#`
/// comments and blank lines ignored.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>file<TAB>count`, got `{raw}`",
                idx + 1
            ));
        };
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        if count == 0 {
            return Err(format!(
                "baseline line {}: zero-count entry for `{rule}` is dead weight — remove it",
                idx + 1
            ));
        }
        match rule_class(rule) {
            None => return Err(format!("baseline line {}: unknown rule `{rule}`", idx + 1)),
            Some(RuleClass::Determinism) => {
                return Err(format!(
                    "baseline line {}: determinism rule `{rule}` cannot be baselined — \
                     fix the finding or justify it inline with \
                     `// reorder-lint: allow({rule}, reason)`",
                    idx + 1
                ))
            }
            Some(RuleClass::Meta) => {
                return Err(format!(
                    "baseline line {}: meta rule `{rule}` cannot be baselined",
                    idx + 1
                ))
            }
            Some(_) => {}
        }
        if out
            .insert((rule.to_string(), file.trim().to_string()), count)
            .is_some()
        {
            return Err(format!(
                "baseline line {}: duplicate entry for `{rule}` / `{file}`",
                idx + 1
            ));
        }
    }
    Ok(out)
}

/// Render violations into baseline text. Fails if any violation is of
/// a class that may not be baselined.
pub fn render(violations: &[Violation]) -> Result<String, String> {
    let mut counts: Baseline = Baseline::new();
    for v in violations {
        match v.class {
            RuleClass::Determinism => {
                return Err(format!(
                    "{}:{}: determinism finding [{}] cannot be blessed into the baseline — \
                     fix it or justify it inline",
                    v.file, v.line, v.rule
                ))
            }
            RuleClass::Meta => {
                return Err(format!(
                    "{}:{}: [{}] {} — fix the suppression, it cannot be baselined",
                    v.file, v.line, v.rule, v.message
                ))
            }
            _ => {}
        }
        *counts
            .entry((v.rule.to_string(), v.file.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# reorder-lint baseline — known findings, shrink-only.\n\
         # Regenerate after *removing* findings with:\n\
         #   cargo run -p reorder-lint -- --bless\n\
         # New findings can NOT be added here: fix them or, where the\n\
         # pattern is deliberate, annotate the line with\n\
         #   // reorder-lint: allow(rule, reason)\n\
         # Format: rule<TAB>file<TAB>count\n",
    );
    let mut by_file: Vec<(&(String, String), &usize)> = counts.iter().collect();
    by_file.sort_by_key(|((rule, file), _)| (file.clone(), rule.clone()));
    for ((rule, file), count) in by_file {
        out.push_str(&format!("{rule}\t{file}\t{count}\n"));
    }
    Ok(out)
}

/// Result of checking a scan against a baseline.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Findings beyond the baselined count (includes every finding of
    /// a never-baselineable class).
    pub unbaselined: Vec<Violation>,
    /// Human-readable stale-entry diagnostics (baseline > actual).
    pub stale: Vec<String>,
    /// Total findings covered by the baseline.
    pub covered: usize,
}

impl CheckOutcome {
    pub fn clean(&self) -> bool {
        self.unbaselined.is_empty() && self.stale.is_empty()
    }
}

/// Compare violations against the baseline.
pub fn check(violations: &[Violation], baseline: &Baseline) -> CheckOutcome {
    let mut grouped: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        grouped
            .entry((v.rule.to_string(), v.file.clone()))
            .or_default()
            .push(v);
    }
    let mut out = CheckOutcome::default();
    for (key, vs) in &grouped {
        let never = !matches!(vs[0].class, RuleClass::Robustness | RuleClass::Hygiene);
        let allowed = if never {
            0
        } else {
            baseline.get(key).copied().unwrap_or(0)
        };
        if vs.len() > allowed {
            // More findings than the baseline tolerates: report them
            // all (line-level attribution beats "3 of these 5").
            out.unbaselined.extend(vs.iter().map(|v| (*v).clone()));
        } else {
            out.covered += vs.len();
            if vs.len() < allowed {
                out.stale.push(format!(
                    "{} / {}: baseline says {allowed}, found {} — shrink the entry (--bless)",
                    key.0,
                    key.1,
                    vs.len()
                ));
            }
        }
    }
    for (key, &allowed) in baseline {
        if !grouped.contains_key(key) {
            out.stale.push(format!(
                "{} / {}: baseline says {allowed}, found 0 — remove the entry (--bless)",
                key.0, key.1
            ));
        }
    }
    out.stale.sort();
    out
}
