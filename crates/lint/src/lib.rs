//! # reorder-lint
//!
//! Offline workspace static analysis that mechanically guards the
//! byte-identical campaign contract. Every guarantee this workspace
//! sells — identical campaign output across reruns, worker counts,
//! shards, and crash-resume — used to rest on reviewer vigilance;
//! nothing stopped the next change from iterating a `HashMap` into a
//! summary table or reading the wall clock inside netsim. This crate
//! is that missing enforcement: a hand-rolled, comment/string-aware
//! lexical scanner (no registry access, so no `syn`) that walks every
//! workspace source file and applies tiered rules:
//!
//! * **determinism** (never baselineable) — hash-ordered collections,
//!   wall-clock reads, unseeded RNG, environment reads in the crates
//!   whose code feeds campaign bytes;
//! * **robustness** (baselined, shrink-only) — `unwrap`/`expect`/
//!   `panic!` in non-test library code, float `==`;
//! * **hygiene** — `#![forbid(unsafe_code)]` presence, `dbg!`, stray
//!   `println!` in library crates.
//!
//! Findings resolve against the checked-in [`baseline`]
//! (`lint-baseline.txt`, shrink-only: stale entries fail the run) plus
//! inline `// reorder-lint: allow(rule, reason)` suppressions that
//! require a reason. The binary (`cargo run -p reorder-lint`) exits
//! nonzero on any unbaselined finding or stale entry; the library API
//! ([`scan_source`], [`scan_workspace`]) is what the fixture tests and
//! the live-workspace self-test drive.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod rules;
pub mod scanner;

pub use rules::{classify, scan_source, RuleClass, Violation, RULES};

use std::path::{Path, PathBuf};

/// A whole-workspace scan.
pub struct WorkspaceScan {
    /// Files scanned, workspace-relative, sorted.
    pub files: Vec<String>,
    /// All findings after inline suppressions, sorted by (file, line).
    pub violations: Vec<Violation>,
}

/// Collect the workspace-relative paths `reorder-lint` scans: `src/`
/// of the root facade package and of every crate under `crates/`.
/// Vendored shims, tests, benches, examples, and build output are
/// never scanned.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("cannot read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir error under crates/: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        collect_rs(&dir, &mut files)?;
    }
    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir error under {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> Result<WorkspaceScan, String> {
    let files = workspace_files(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        violations.extend(scan_source(rel, &src));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(WorkspaceScan { files, violations })
}

/// Default baseline location, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Locate the workspace root: an explicit `--root`, else walk up from
/// the current directory to the first ancestor holding a `crates/`
/// directory next to a `Cargo.toml`.
pub fn find_root(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(r) = explicit {
        return if r.join("Cargo.toml").is_file() && r.join("crates").is_dir() {
            Ok(r.to_path_buf())
        } else {
            Err(format!("{} is not the workspace root", r.display()))
        };
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no workspace root found above {} (need Cargo.toml + crates/)",
                    cwd.display()
                ))
            }
        }
    }
}
