//! `reorder-lint` — the workspace determinism & robustness analyzer.
//!
//! ```text
//! cargo run -p reorder-lint --release            # check (CI mode)
//! cargo run -p reorder-lint -- --bless           # rewrite the baseline (shrink-only)
//! cargo run -p reorder-lint -- --list-rules      # rule reference
//! ```
//!
//! Exit codes: 0 clean, 1 findings (unbaselined violation or stale
//! baseline entry), 2 usage / I/O error.

#![forbid(unsafe_code)]

use reorder_lint::{baseline, find_root, scan_workspace, RuleClass, BASELINE_FILE, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    bless: bool,
    list_rules: bool,
    quiet: bool,
}

const USAGE: &str = "\
reorder-lint — workspace determinism & robustness analyzer

USAGE: reorder-lint [--root DIR] [--baseline FILE] [--bless] [--list-rules] [--quiet]

  --root DIR       workspace root (default: walk up from cwd)
  --baseline FILE  baseline path (default: <root>/lint-baseline.txt)
  --bless          rewrite the baseline from current findings; refuses
                   determinism-class and meta findings (fix or justify
                   those inline — the baseline is for tracked debt only)
  --list-rules     print every rule id, class, and description
  --quiet          suppress the per-finding listing, print totals only

Suppression syntax (reason required):
  // reorder-lint: allow(rule-id, why this occurrence is safe)
placed on the offending line or on its own line directly above.
";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        bless: false,
        list_rules: false,
        quiet: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?))
            }
            "--bless" => opts.bless = true,
            "--list-rules" => opts.list_rules = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_args(std::env::args().skip(1))?;
    if opts.list_rules {
        println!("{:<18} {:<12} description", "rule", "class");
        for (id, class, desc) in RULES {
            println!("{:<18} {:<12} {desc}", id, class.as_str());
        }
        return Ok(true);
    }
    let root = find_root(opts.root.as_deref())?;
    let baseline_path = opts.baseline.unwrap_or_else(|| root.join(BASELINE_FILE));
    let scan = scan_workspace(&root)?;

    if opts.bless {
        let text = baseline::render(&scan.violations)?;
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        println!(
            "blessed {} finding(s) across {} baseline entr{} -> {}",
            scan.violations.len(),
            entries,
            if entries == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };
    let base = baseline::parse(&baseline_text)?;
    let outcome = baseline::check(&scan.violations, &base);

    if !opts.quiet {
        for v in &outcome.unbaselined {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        for s in &outcome.stale {
            println!("stale baseline entry: {s}");
        }
    }
    let det = outcome
        .unbaselined
        .iter()
        .filter(|v| v.class == RuleClass::Determinism)
        .count();
    if outcome.clean() {
        println!(
            "reorder-lint: clean — {} files scanned, {} baselined finding(s) tracked",
            scan.files.len(),
            outcome.covered
        );
        Ok(true)
    } else {
        println!(
            "reorder-lint: FAIL — {} unbaselined finding(s) ({} determinism-class), \
             {} stale baseline entr{}",
            outcome.unbaselined.len(),
            det,
            outcome.stale.len(),
            if outcome.stale.len() == 1 { "y" } else { "ies" },
        );
        println!(
            "fix the findings, justify them inline with \
             `// reorder-lint: allow(rule, reason)`, or shrink the baseline \
             with `cargo run -p reorder-lint -- --bless` \
             (robustness/hygiene rules only)"
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("reorder-lint: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
