//! Stateful IPID generators implementing each [`IpidScheme`].

use crate::personality::IpidScheme;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::{IpId, Ipv4Addr4};

/// Produces the IPID for each packet a host transmits.
pub struct IpidGenerator {
    scheme: IpidScheme,
    global: u16,
    // Linear: a simulated host talks to a handful of destinations,
    // and this sits on the per-packet send path.
    per_dest: Vec<(Ipv4Addr4, u16)>,
    rng: SmallRng,
}

impl IpidGenerator {
    /// New generator; `seed_rng` feeds the `Random` scheme and the
    /// initial counter offsets (real hosts don't boot at IPID 0).
    pub fn new(scheme: IpidScheme, mut rng: SmallRng) -> Self {
        let initial = rng.gen();
        IpidGenerator {
            scheme,
            global: initial,
            per_dest: Vec::new(),
            rng,
        }
    }

    /// Next IPID for a packet destined to `dst`.
    pub fn next(&mut self, dst: Ipv4Addr4) -> IpId {
        match self.scheme {
            IpidScheme::GlobalCounter { step } => {
                self.global = self.global.wrapping_add(step);
                IpId(self.global)
            }
            IpidScheme::GlobalCounterByteSwapped => {
                self.global = self.global.wrapping_add(1);
                IpId(self.global.swap_bytes())
            }
            IpidScheme::PerDestination { step } => {
                let idx = match self.per_dest.iter().position(|(d, _)| *d == dst) {
                    Some(i) => i,
                    None => {
                        let init = self.rng.gen();
                        self.per_dest.push((dst, init));
                        self.per_dest.len() - 1
                    }
                };
                let ctr = &mut self.per_dest[idx].1;
                *ctr = ctr.wrapping_add(step);
                IpId(*ctr)
            }
            IpidScheme::Random => IpId(self.rng.gen()),
            IpidScheme::ConstantZero => IpId(0),
        }
    }

    /// Account for a packet the host sent on some *other* interface or
    /// to another peer (background load): advances shared counters so a
    /// busy host's IPID space moves between probe replies, as real
    /// global counters do.
    pub fn background(&mut self, n: u16) {
        match self.scheme {
            IpidScheme::GlobalCounter { step } => {
                self.global = self.global.wrapping_add(step.wrapping_mul(n));
            }
            IpidScheme::GlobalCounterByteSwapped => {
                self.global = self.global.wrapping_add(n);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(scheme: IpidScheme) -> IpidGenerator {
        IpidGenerator::new(scheme, SmallRng::seed_from_u64(42))
    }

    const A: Ipv4Addr4 = Ipv4Addr4::new(1, 1, 1, 1);
    const B: Ipv4Addr4 = Ipv4Addr4::new(2, 2, 2, 2);

    #[test]
    fn global_counter_is_monotone_across_destinations() {
        let mut g = gen(IpidScheme::GlobalCounter { step: 1 });
        let x = g.next(A);
        let y = g.next(B);
        let z = g.next(A);
        assert!(x.before(y) && y.before(z));
        assert_eq!(x.distance_to(z), 2);
    }

    #[test]
    fn per_destination_counters_are_independent() {
        let mut g = gen(IpidScheme::PerDestination { step: 1 });
        let a1 = g.next(A);
        let _b1 = g.next(B);
        let a2 = g.next(A);
        // A's counter advanced exactly 1 even though B sent in between.
        assert_eq!(a1.distance_to(a2), 1);
    }

    #[test]
    fn constant_zero_is_always_zero() {
        let mut g = gen(IpidScheme::ConstantZero);
        for _ in 0..10 {
            assert_eq!(g.next(A), IpId(0));
        }
    }

    #[test]
    fn random_is_not_monotone() {
        let mut g = gen(IpidScheme::Random);
        let ids: Vec<IpId> = (0..100).map(|_| g.next(A)).collect();
        let monotone = ids.windows(2).filter(|w| w[0].before(w[1])).count();
        // A monotone counter would give 99/99; random gives ~50.
        assert!(
            monotone < 80,
            "random IPIDs looked monotone ({monotone}/99)"
        );
    }

    #[test]
    fn background_advances_global_counter() {
        let mut g = gen(IpidScheme::GlobalCounter { step: 1 });
        let x = g.next(A);
        g.background(10);
        let y = g.next(A);
        assert_eq!(x.distance_to(y), 11);
    }

    #[test]
    fn background_noop_for_random() {
        let mut g = gen(IpidScheme::ConstantZero);
        g.background(100);
        assert_eq!(g.next(A), IpId(0));
    }

    #[test]
    fn byte_swapped_counter_is_serially_monotone() {
        // The Windows wire quirk: +0x0100 per packet, +0x0101 at byte
        // rollover — always positive in serial arithmetic, so the Dual
        // Connection Test's ordering inference survives.
        let mut g = gen(IpidScheme::GlobalCounterByteSwapped);
        let ids: Vec<IpId> = (0..1000).map(|_| g.next(A)).collect();
        for w in ids.windows(2) {
            assert!(w[0].before(w[1]), "{} !< {}", w[0], w[1]);
            let d = w[0].distance_to(w[1]);
            assert!(d == 256 || d == 257 || d == 1, "stride {d}");
        }
    }

    #[test]
    fn counters_start_at_random_offsets() {
        let a = gen(IpidScheme::GlobalCounter { step: 1 }).next(A);
        let b = IpidGenerator::new(
            IpidScheme::GlobalCounter { step: 1 },
            SmallRng::seed_from_u64(7),
        )
        .next(A);
        assert_ne!(a, b, "different hosts should start at different IPIDs");
    }
}
