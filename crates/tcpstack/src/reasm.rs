//! Out-of-order segment bookkeeping for the receive path.
//!
//! The measurement tests deliberately park bytes *beyond* `rcv_nxt`
//! (the §III-B "hole") and later observe how the cumulative ACK advances
//! when the hole fills, so the reassembly semantics here must match real
//! stacks: queued ranges coalesce, and when the hole is plugged the ACK
//! jumps over everything contiguous.

use reorder_wire::SeqNum;

/// Set of received-but-not-yet-contiguous byte ranges, kept sorted and
/// disjoint.
#[derive(Debug, Default, Clone)]
pub struct ReasmQueue {
    /// Sorted, disjoint `(start, len)` ranges strictly above `rcv_nxt`.
    ranges: Vec<(SeqNum, u32)>,
}

impl ReasmQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an out-of-order range, merging overlaps.
    pub fn insert(&mut self, start: SeqNum, len: u32) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let mut merged_start = start;
        let mut merged_end = end;
        let mut keep: Vec<(SeqNum, u32)> = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, l) in &self.ranges {
            let e = s + l;
            // Overlapping or touching?
            if e.distance_to(merged_start) > 0 || merged_end.distance_to(s) > 0 {
                keep.push((s, l)); // disjoint
            } else {
                if s < merged_start {
                    merged_start = s;
                }
                if e > merged_end {
                    merged_end = e;
                }
            }
        }
        keep.push((merged_start, (merged_end - merged_start) as u32));
        keep.sort_by_key(|a| a.0);
        self.ranges = keep;
    }

    /// Given that contiguous data now extends to `rcv_nxt`, consume any
    /// queued ranges the new edge reaches and return the advanced edge.
    pub fn advance(&mut self, mut rcv_nxt: SeqNum) -> SeqNum {
        loop {
            let mut advanced = false;
            self.ranges.retain(|&(s, l)| {
                let e = s + l;
                if e <= rcv_nxt {
                    false // wholly below the edge: stale, drop
                } else if s <= rcv_nxt {
                    rcv_nxt = e;
                    advanced = true;
                    false
                } else {
                    true
                }
            });
            if !advanced {
                return rcv_nxt;
            }
        }
    }

    /// Whether any out-of-order data is queued.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint queued ranges (SACK-block count, used by the
    /// Bennett-style metric).
    pub fn block_count(&self) -> usize {
        self.ranges.len()
    }

    /// The queued ranges, for SACK option generation (most recent data
    /// first is not modeled; wire order is ascending).
    pub fn blocks(&self) -> &[(SeqNum, u32)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ranges: &[(u32, u32)]) -> ReasmQueue {
        let mut rq = ReasmQueue::new();
        for &(s, l) in ranges {
            rq.insert(SeqNum(s), l);
        }
        rq
    }

    #[test]
    fn single_byte_hole_scenario() {
        // The §III-B setup: expecting 1, byte at seq 2 queued.
        let mut rq = q(&[(2, 1)]);
        // data 1 arrives: edge moves to 2, then jumps the queued byte.
        let edge = rq.advance(SeqNum(2));
        assert_eq!(edge, SeqNum(3));
        assert!(rq.is_empty());
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let rq = q(&[(10, 5), (20, 5)]);
        assert_eq!(rq.block_count(), 2);
        assert_eq!(rq.blocks(), &[(SeqNum(10), 5), (SeqNum(20), 5)]);
    }

    #[test]
    fn touching_ranges_merge() {
        let rq = q(&[(10, 5), (15, 5)]);
        assert_eq!(rq.block_count(), 1);
        assert_eq!(rq.blocks(), &[(SeqNum(10), 10)]);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let rq = q(&[(10, 10), (15, 10)]);
        assert_eq!(rq.blocks(), &[(SeqNum(10), 15)]);
    }

    #[test]
    fn containing_range_absorbs() {
        let rq = q(&[(10, 20), (12, 3)]);
        assert_eq!(rq.blocks(), &[(SeqNum(10), 20)]);
    }

    #[test]
    fn advance_consumes_chain() {
        let mut rq = q(&[(5, 5), (10, 5), (20, 5)]);
        // ranges [5,10) and [10,15) merged on insert; edge 5 reaches both.
        let edge = rq.advance(SeqNum(5));
        assert_eq!(edge, SeqNum(15));
        assert_eq!(rq.block_count(), 1); // [20,25) remains
    }

    #[test]
    fn advance_drops_stale_ranges() {
        let mut rq = q(&[(5, 5)]);
        let edge = rq.advance(SeqNum(50));
        assert_eq!(edge, SeqNum(50));
        assert!(rq.is_empty());
    }

    #[test]
    fn advance_partial_overlap_uses_range_end() {
        let mut rq = q(&[(5, 10)]);
        let edge = rq.advance(SeqNum(8));
        assert_eq!(edge, SeqNum(15));
    }

    #[test]
    fn zero_length_insert_ignored() {
        let mut rq = ReasmQueue::new();
        rq.insert(SeqNum(5), 0);
        assert!(rq.is_empty());
    }

    #[test]
    fn wraparound_ranges() {
        let near_max = u32::MAX - 2;
        let mut rq = ReasmQueue::new();
        rq.insert(SeqNum(near_max), 5); // wraps to seq 2
        let edge = rq.advance(SeqNum(near_max));
        assert_eq!(edge, SeqNum(near_max) + 5);
        assert_eq!(edge, SeqNum(2));
    }
}
