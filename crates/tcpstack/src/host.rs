//! [`TcpHost`]: a simulated remote endpoint — "any host exporting a
//! TCP/IP service \[becomes\] a de facto measurement server" (§III).
//!
//! The host demultiplexes TCP flows to [`crate::Conn`] state machines,
//! answers ICMP echoes (unless the personality filters them), RSTs
//! closed ports, stamps every outgoing packet with an IPID from the
//! personality's generator, and optionally simulates background traffic
//! advancing the IPID counter between replies.

use crate::conn::{Conn, ConnCfg, ConnState, SegmentOut, TimerReq};
use crate::ipid_gen::IpidGenerator;
use crate::personality::HostPersonality;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_netsim::{rng, Ctx, Device, Port};
use reorder_wire::{
    Bytes, Ipv4Addr4, Ipv4Header, Packet, Payload, Protocol, SeqNum, TcpFlags, TcpHeader,
};

/// Configuration of a simulated host.
#[derive(Debug, Clone)]
pub struct TcpHostConfig {
    /// The host's (or, behind a transparent load balancer, the virtual)
    /// IPv4 address.
    pub addr: Ipv4Addr4,
    /// Behavioral profile.
    pub personality: HostPersonality,
    /// Listening TCP ports.
    pub ports: Vec<u16>,
    /// Size of the object served to `GET` requests (0 = none; a
    /// redirect-only site per §III-E would be `object_size < 2 * MSS`).
    pub object_size: usize,
    /// Mean number of background packets the host sends between our
    /// observations (advances a global IPID counter like a busy server).
    /// 0.0 = idle host.
    pub background_load: f64,
}

impl TcpHostConfig {
    /// A quiet web server with the given personality.
    pub fn web_server(addr: Ipv4Addr4, personality: HostPersonality) -> Self {
        TcpHostConfig {
            addr,
            personality,
            ports: vec![80],
            object_size: 16 * 1024,
            background_load: 0.0,
        }
    }
}

/// Flow demux key from the host's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LocalFlow {
    remote: Ipv4Addr4,
    remote_port: u16,
    local_port: u16,
}

/// The host device. Single-homed: all traffic on port 0.
pub struct TcpHost {
    cfg: TcpHostConfig,
    conns: Vec<Option<Conn>>,
    // Linear flow demux: a host holds a handful of live connections,
    // and this lookup runs per received segment.
    by_flow: Vec<(LocalFlow, usize)>,
    ipid: IpidGenerator,
    rng: SmallRng,
    iss_counter: u32,
    /// Observability: segments received / transmitted.
    pub rx_segments: u64,
    /// Observability: packets transmitted.
    pub tx_packets: u64,
}

impl TcpHost {
    /// Build a host; randomness derives from the simulation master seed
    /// and the host label (its address).
    pub fn new(cfg: TcpHostConfig, master_seed: u64) -> Self {
        let label = format!("host.{}", cfg.addr);
        let mut rng = rng::stream(master_seed, &label);
        let ipid_rng = rng::stream(master_seed, &format!("{label}.ipid"));
        let iss_counter = rng.gen();
        TcpHost {
            ipid: IpidGenerator::new(cfg.personality.ipid, ipid_rng),
            cfg,
            conns: Vec::new(),
            by_flow: Vec::new(),
            rng,
            iss_counter,
            rx_segments: 0,
            tx_packets: 0,
        }
    }

    /// The configured address.
    pub fn addr(&self) -> Ipv4Addr4 {
        self.cfg.addr
    }

    fn conn_cfg(&self) -> ConnCfg {
        ConnCfg {
            delayed_ack: self.cfg.personality.delayed_ack,
            second_syn: self.cfg.personality.second_syn,
            mss: self.cfg.personality.mss,
            window: self.cfg.personality.window,
            object_size: self.cfg.object_size,
            sack: true,
        }
    }

    fn next_iss(&mut self) -> SeqNum {
        // RFC-793-style clock-driven ISS, coarsened: advance by a random
        // stride per connection.
        self.iss_counter = self
            .iss_counter
            .wrapping_add(64_000 + self.rng.gen_range(0..4096));
        SeqNum(self.iss_counter)
    }

    fn send_segment(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: Ipv4Addr4,
        ports: (u16, u16),
        seg: SegmentOut,
    ) {
        // Background load advances a shared IPID counter between our
        // packets, as on a real busy server.
        if self.cfg.background_load > 0.0 {
            let lambda = self.cfg.background_load;
            // Geometric approximation of a Poisson count: cheap and
            // monotone in lambda, which is all the experiments need.
            let mut n = 0u16;
            while self.rng.gen::<f64>() < lambda / (1.0 + lambda) && n < 1000 {
                n += 1;
            }
            self.ipid.background(n);
        }
        let header = TcpHeader {
            src_port: ports.0,
            dst_port: ports.1,
            seq: seg.seq,
            ack: seg.ack,
            flags: seg.flags,
            window: seg.window,
            urgent: 0,
            options: seg.options,
        };
        let pkt = Packet {
            ip: Ipv4Header {
                ident: self.ipid.next(to),
                protocol: Protocol::Tcp,
                src: self.cfg.addr,
                dst: to,
                ..Ipv4Header::default()
            },
            payload: Payload::Tcp {
                header,
                data: seg.data,
            },
        };
        self.tx_packets += 1;
        ctx.transmit(Port(0), pkt);
    }

    fn send_rst_for(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Some(tcp) = pkt.tcp() else { return };
        if tcp.flags.contains(TcpFlags::RST) {
            return; // never RST a RST
        }
        let data_len = pkt.tcp_data().map(|d| d.len() as u32).unwrap_or(0);
        let seg = SegmentOut {
            seq: if tcp.flags.contains(TcpFlags::ACK) {
                tcp.ack
            } else {
                SeqNum(0)
            },
            ack: tcp.seq + data_len + u32::from(tcp.flags.contains(TcpFlags::SYN)),
            flags: TcpFlags::RST | TcpFlags::ACK,
            window: 0,
            data: Bytes::new(),
            options: Vec::new(),
        };
        self.send_segment(ctx, pkt.ip.src, (tcp.dst_port, tcp.src_port), seg);
    }

    fn handle_tcp(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let tcp = pkt.tcp().expect("caller checked");
        self.rx_segments += 1;
        let flow = LocalFlow {
            remote: pkt.ip.src,
            remote_port: tcp.src_port,
            local_port: tcp.dst_port,
        };
        let mut out: Vec<SegmentOut> = Vec::new();
        let mut timer = TimerReq::None;
        let mut timer_token = 0u64;
        if let Some(idx) = self
            .by_flow
            .iter()
            .find_map(|&(f, i)| (f == flow).then_some(i))
        {
            let mut conn = self.conns[idx].take().expect("indexed conn");
            timer = conn.on_segment(tcp, pkt.tcp_data().unwrap_or(&[]), &mut out);
            timer_token = (idx as u64) << 32 | (conn.ack_timer_gen & 0xffff_ffff);
            let closed = conn.state == ConnState::Closed;
            self.conns[idx] = Some(conn);
            if closed {
                self.by_flow.retain(|&(f, _)| f != flow);
                self.conns[idx] = None;
            }
        } else if tcp.flags.contains(TcpFlags::SYN)
            && !tcp.flags.contains(TcpFlags::ACK)
            && self.cfg.ports.contains(&tcp.dst_port)
        {
            let iss = self.next_iss();
            let conn = Conn::accept(tcp, iss, self.conn_cfg(), &mut out);
            let idx = self.conns.iter().position(Option::is_none).unwrap_or({
                self.conns.push(None);
                self.conns.len() - 1
            });
            self.conns[idx] = Some(conn);
            self.by_flow.push((flow, idx));
        } else if self.cfg.personality.rst_closed_ports {
            self.send_rst_for(ctx, pkt);
            return;
        } else {
            return;
        }
        for seg in out {
            self.send_segment(ctx, flow.remote, (flow.local_port, flow.remote_port), seg);
        }
        if timer == TimerReq::ArmAckTimer {
            ctx.set_timer(self.cfg.personality.delayed_ack.max_delay, timer_token);
        }
    }
}

impl Device for TcpHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: Port, pkt: Packet) {
        if pkt.ip.dst != self.cfg.addr {
            return; // not ours (mis-balanced or stray)
        }
        match &pkt.payload {
            Payload::Tcp { .. } => self.handle_tcp(ctx, &pkt),
            Payload::Icmp { header, data } => {
                if self.cfg.personality.answers_icmp
                    && header.icmp_type == reorder_wire::IcmpType::EchoRequest
                {
                    let reply = Packet {
                        ip: Ipv4Header {
                            ident: self.ipid.next(pkt.ip.src),
                            protocol: Protocol::Icmp,
                            src: self.cfg.addr,
                            dst: pkt.ip.src,
                            ..Ipv4Header::default()
                        },
                        payload: Payload::Icmp {
                            header: header.reply_to(),
                            data: data.clone(),
                        },
                    };
                    self.tx_packets += 1;
                    ctx.transmit(Port(0), reply);
                }
            }
            Payload::Raw(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let idx = (token >> 32) as usize;
        let generation = token & 0xffff_ffff;
        let Some(slot) = self.conns.get_mut(idx) else {
            return;
        };
        let Some(conn) = slot else { return };
        if conn.ack_timer_gen & 0xffff_ffff != generation {
            return; // stale timer
        }
        let mut out = Vec::new();
        conn.on_ack_timer(&mut out);
        // Find the flow for addressing.
        let flow = self
            .by_flow
            .iter()
            .find(|&&(_, i)| i == idx)
            .map(|&(f, _)| f);
        if let Some(flow) = flow {
            for seg in out {
                self.send_segment(ctx, flow.remote, (flow.local_port, flow.remote_port), seg);
            }
        }
    }

    fn name(&self) -> &str {
        self.cfg.personality.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_netsim::{drain, LinkParams, Mailbox, SimTime, Simulator};
    use reorder_wire::PacketBuilder;
    use std::time::Duration;

    const ME: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);
    const SRV: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 2);

    fn rig(
        personality: HostPersonality,
    ) -> (
        Simulator,
        reorder_netsim::NodeId,
        reorder_netsim::MailboxQueue,
    ) {
        let mut sim = Simulator::new(5);
        let (mb, q) = Mailbox::new();
        let me = sim.add_node(Box::new(mb));
        let host = TcpHost::new(
            TcpHostConfig::web_server(SRV, personality),
            sim.master_seed(),
        );
        let srv = sim.add_node(Box::new(host));
        sim.connect(me, Port(0), srv, Port(0), LinkParams::lan());
        (sim, me, q)
    }

    fn syn(seq: u32, sport: u16) -> Packet {
        PacketBuilder::tcp()
            .src(ME, sport)
            .dst(SRV, 80)
            .seq(seq)
            .flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn responds_synack_then_serves_handshake() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        sim.transmit_from(me, Port(0), syn(1000, 4000));
        sim.run_until_idle(SimTime::from_secs(1));
        let got = drain(&q);
        assert_eq!(got.len(), 1);
        let sa = got[0].pkt.tcp().unwrap();
        assert_eq!(sa.flags, TcpFlags::SYN | TcpFlags::ACK);
        assert_eq!(sa.ack, SeqNum(1001));
        assert!(sa.mss().is_some());
    }

    #[test]
    fn rst_to_closed_port() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        sim.transmit_from(me, Port(0), syn(1, 9999).clone());
        // Port 81 is closed.
        let p = PacketBuilder::tcp()
            .src(ME, 5000)
            .dst(SRV, 81)
            .seq(7)
            .flags(TcpFlags::SYN)
            .build();
        sim.transmit_from(me, Port(0), p);
        sim.run_until_idle(SimTime::from_secs(1));
        let got = drain(&q);
        let rsts: Vec<_> = got
            .iter()
            .filter(|r| r.pkt.tcp().unwrap().flags.contains(TcpFlags::RST))
            .collect();
        assert_eq!(rsts.len(), 1);
        assert_eq!(rsts[0].pkt.tcp().unwrap().ack, SeqNum(8), "RST acks SYN+1");
    }

    #[test]
    fn hardened_host_is_silent_on_closed_ports_and_icmp() {
        let (mut sim, me, q) = rig(HostPersonality::hardened());
        let p = PacketBuilder::tcp()
            .src(ME, 5000)
            .dst(SRV, 81)
            .seq(7)
            .flags(TcpFlags::SYN)
            .build();
        sim.transmit_from(me, Port(0), p);
        let echo = PacketBuilder::icmp_echo(9, 1)
            .src(ME, 0)
            .dst(SRV, 0)
            .build();
        sim.transmit_from(me, Port(0), echo);
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(drain(&q).is_empty());
    }

    #[test]
    fn answers_icmp_echo() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        let echo = PacketBuilder::icmp_echo(77, 3)
            .src(ME, 0)
            .dst(SRV, 0)
            .data(vec![1, 2, 3])
            .build();
        sim.transmit_from(me, Port(0), echo);
        sim.run_until_idle(SimTime::from_secs(1));
        let got = drain(&q);
        assert_eq!(got.len(), 1);
        let icmp = got[0].pkt.icmp().unwrap();
        assert_eq!(icmp.icmp_type, reorder_wire::IcmpType::EchoReply);
        assert_eq!(icmp.ident, 77);
        assert_eq!(got[0].pkt.tcp_data(), None);
    }

    #[test]
    fn full_handshake_probe_and_teardown() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        sim.transmit_from(me, Port(0), syn(100, 4000));
        sim.run_until_idle(SimTime::from_secs(1));
        let synack = drain(&q).pop().expect("synack");
        let sa = synack.pkt.tcp().unwrap();
        let iss = sa.seq;
        // Complete the handshake.
        let ack = PacketBuilder::tcp()
            .src(ME, 4000)
            .dst(SRV, 80)
            .seq(101)
            .ack(iss.raw().wrapping_add(1))
            .flags(TcpFlags::ACK)
            .build();
        sim.transmit_from(me, Port(0), ack);
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(drain(&q).is_empty(), "plain ACK elicits nothing");
        // Out-of-order probe byte → immediate dup ACK.
        let probe = PacketBuilder::tcp()
            .src(ME, 4000)
            .dst(SRV, 80)
            .seq(102)
            .ack(iss.raw().wrapping_add(1))
            .flags(TcpFlags::ACK)
            .data(b"X".to_vec())
            .build();
        sim.transmit_from(me, Port(0), probe);
        sim.run_until_idle(SimTime::from_secs(1));
        let dup = drain(&q).pop().expect("dup ack");
        assert_eq!(dup.pkt.tcp().unwrap().ack, SeqNum(101));
        // FIN teardown.
        let fin = PacketBuilder::tcp()
            .src(ME, 4000)
            .dst(SRV, 80)
            .seq(101)
            .ack(iss.raw().wrapping_add(1))
            .flags(TcpFlags::FIN | TcpFlags::ACK)
            .build();
        sim.transmit_from(me, Port(0), fin);
        sim.run_until_idle(SimTime::from_secs(1));
        let got = drain(&q);
        assert!(got
            .iter()
            .any(|r| r.pkt.tcp().unwrap().flags.contains(TcpFlags::FIN)));
    }

    #[test]
    fn delayed_ack_fires_on_timer() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        sim.transmit_from(me, Port(0), syn(100, 4000));
        sim.run_until_idle(SimTime::from_secs(1));
        let iss = drain(&q).pop().unwrap().pkt.tcp().unwrap().seq;
        let mk = |seq: u32, data: &[u8]| {
            PacketBuilder::tcp()
                .src(ME, 4000)
                .dst(SRV, 80)
                .seq(seq)
                .ack(iss.raw().wrapping_add(1))
                .flags(TcpFlags::ACK)
                .data(data.to_vec())
                .build()
        };
        sim.transmit_from(me, Port(0), mk(101, b""));
        sim.run_until_idle(SimTime::from_secs(1));
        drain(&q);
        // One in-order data segment: the ACK must arrive only after the
        // delayed-ack timeout (200ms for freebsd4 preset).
        sim.transmit_from(me, Port(0), mk(101, b"A"));
        sim.run_for(Duration::from_millis(100));
        assert!(drain(&q).is_empty(), "ACK withheld before timeout");
        sim.run_for(Duration::from_millis(250));
        let got = drain(&q);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pkt.tcp().unwrap().ack, SeqNum(102));
    }

    #[test]
    fn ipid_monotone_for_global_counter_host() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        // Two parallel connections; replies must share one IPID space.
        sim.transmit_from(me, Port(0), syn(100, 4000));
        sim.transmit_from(me, Port(0), syn(200, 4001));
        sim.run_until_idle(SimTime::from_secs(1));
        let got = drain(&q);
        assert_eq!(got.len(), 2);
        let a = got[0].pkt.ip.ident;
        let b = got[1].pkt.ip.ident;
        assert!(a.before(b), "global counter must be monotone: {a} vs {b}");
    }

    #[test]
    fn ipid_zero_for_linux24() {
        let (mut sim, me, q) = rig(HostPersonality::linux24());
        sim.transmit_from(me, Port(0), syn(100, 4000));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(drain(&q).pop().unwrap().pkt.ip.ident.raw(), 0);
    }

    #[test]
    fn wrong_destination_ignored() {
        let (mut sim, me, q) = rig(HostPersonality::freebsd4());
        let p = PacketBuilder::tcp()
            .src(ME, 4000)
            .dst(Ipv4Addr4::new(9, 9, 9, 9), 80)
            .seq(1)
            .flags(TcpFlags::SYN)
            .build();
        sim.transmit_from(me, Port(0), p);
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(drain(&q).is_empty());
    }
}
