//! Host "OS personalities": the implementation variations the paper's
//! techniques probe, exploit, or must survive.
//!
//! §III repeatedly stresses that the tests "leverage ... common IP
//! implementation characteristics" and that "any assumptions about this
//! field must be validated before they can be trusted". The personality
//! matrix below covers every variation the paper names:
//!
//! * IPID generation: traditional global counter, Linux 2.4's constant
//!   zero (PMTUD), OpenBSD's pseudorandom values, Solaris's
//!   per-destination counters;
//! * the response to a second SYN on a half-open connection (always-RST,
//!   spec-compliant RST/ACK, dual RST, silence);
//! * delayed acknowledgment parameters and whether a hole-filling
//!   segment is acknowledged immediately.

use std::time::Duration;

/// How a host assigns the IP identification field (§III-A, §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpidScheme {
    /// One counter shared by all destinations, incremented by `step` per
    /// packet — the "traditional implementation" the Dual Connection
    /// Test relies on. `step` is 1 on most stacks.
    GlobalCounter {
        /// Increment per packet (some stacks use byte-order quirks that
        /// look like larger strides; 1 is typical).
        step: u16,
    },
    /// A global counter transmitted in *host* (little-endian) byte
    /// order — the classic Windows NT/2000 quirk: on the wire the IPID
    /// appears to advance by 0x0100 per packet. Serial-number
    /// comparison still sees a monotone sequence (with an occasional
    /// +257 jump at byte rollover), so the Dual Connection Test keeps
    /// working; this variant exists to prove that.
    GlobalCounterByteSwapped,
    /// A counter per destination host (modern Solaris). Monotone as seen
    /// by any single prober, so "since our techniques do not depend on
    /// IPID being unique across destinations this is not a complication".
    PerDestination {
        /// Increment per packet.
        step: u16,
    },
    /// Pseudorandom IPIDs (OpenBSD, FreeBSD option) — defeats the Dual
    /// Connection Test and must be detected by its validation pre-check.
    Random,
    /// Constant zero (Linux ≥ 2.4 with path-MTU discovery: "since
    /// fragmentation cannot happen, transmit packets with IPID equal
    /// to 0").
    ConstantZero,
}

/// How a host answers a second SYN for a half-open connection (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondSynBehavior {
    /// "The most common implementations always respond to a second SYN
    /// with a RST."
    RstAlways,
    /// "Strictly following the TCP specification": RST if the second
    /// SYN's sequence number is inside the window, pure ACK otherwise.
    SpecCompliant,
    /// "A small number of implementations generate dual RST packets."
    DualRst,
    /// "... or only respond to the first SYN."
    IgnoreSecond,
}

/// Delayed acknowledgment behavior (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayedAck {
    /// Maximum time an ACK for in-order data may be withheld
    /// ("implementation guidelines indicate that ACKs should not be
    /// delayed by more than 500ms").
    pub max_delay: Duration,
    /// ACK at least every this many received in-order segments ("or two
    /// received data packets").
    pub every_segs: u32,
    /// Whether a segment that fills a sequence hole is acknowledged
    /// immediately (RFC 2581 behavior). Stacks that delay even these
    /// produce the single-ACK ambiguity of §III-B.
    pub immediate_on_hole_fill: bool,
}

impl Default for DelayedAck {
    fn default() -> Self {
        DelayedAck {
            max_delay: Duration::from_millis(200),
            every_segs: 2,
            immediate_on_hole_fill: true,
        }
    }
}

impl DelayedAck {
    /// No delaying at all (ACK every segment immediately).
    pub fn disabled() -> Self {
        DelayedAck {
            max_delay: Duration::ZERO,
            every_segs: 1,
            immediate_on_hole_fill: true,
        }
    }
}

/// Complete behavioral profile of a simulated host.
#[derive(Debug, Clone)]
pub struct HostPersonality {
    /// Diagnostic label ("freebsd4", "linux24", ...).
    pub name: &'static str,
    /// IPID assignment discipline.
    pub ipid: IpidScheme,
    /// Second-SYN response.
    pub second_syn: SecondSynBehavior,
    /// Delayed-ACK configuration.
    pub delayed_ack: DelayedAck,
    /// MSS the host advertises and uses for its own sends.
    pub mss: u16,
    /// Receive window the host advertises.
    pub window: u16,
    /// Whether the host answers ICMP echo requests (§II: increasingly
    /// filtered).
    pub answers_icmp: bool,
    /// Whether the host sends RST for segments to closed ports.
    pub rst_closed_ports: bool,
}

impl HostPersonality {
    /// Traditional BSD-style stack: global IPID counter, always-RST,
    /// immediate ACK on hole fill. The best-case measurement target.
    pub fn freebsd4() -> Self {
        HostPersonality {
            name: "freebsd4",
            ipid: IpidScheme::GlobalCounter { step: 1 },
            second_syn: SecondSynBehavior::RstAlways,
            delayed_ack: DelayedAck::default(),
            mss: 1460,
            window: 57344,
            answers_icmp: true,
            rst_closed_ports: true,
        }
    }

    /// Linux 2.2-era: global counter, spec-ish SYN handling.
    pub fn linux22() -> Self {
        HostPersonality {
            name: "linux22",
            ipid: IpidScheme::GlobalCounter { step: 1 },
            second_syn: SecondSynBehavior::SpecCompliant,
            delayed_ack: DelayedAck::default(),
            mss: 1460,
            window: 32120,
            answers_icmp: true,
            rst_closed_ports: true,
        }
    }

    /// Linux 2.4+: IPID constantly zero on DF packets — "ruled out ...
    /// a constant IPID value of 0 from another 9 hosts (likely running
    /// Linux 2.4)".
    pub fn linux24() -> Self {
        HostPersonality {
            name: "linux24",
            ipid: IpidScheme::ConstantZero,
            second_syn: SecondSynBehavior::RstAlways,
            delayed_ack: DelayedAck::default(),
            mss: 1460,
            window: 5840,
            answers_icmp: true,
            rst_closed_ports: true,
        }
    }

    /// OpenBSD 3.x: pseudorandom IPIDs.
    pub fn openbsd3() -> Self {
        HostPersonality {
            name: "openbsd3",
            ipid: IpidScheme::Random,
            second_syn: SecondSynBehavior::RstAlways,
            delayed_ack: DelayedAck::default(),
            mss: 1460,
            window: 16384,
            answers_icmp: true,
            rst_closed_ports: true,
        }
    }

    /// Solaris 8: per-destination IPID counters.
    pub fn solaris8() -> Self {
        HostPersonality {
            name: "solaris8",
            ipid: IpidScheme::PerDestination { step: 1 },
            second_syn: SecondSynBehavior::RstAlways,
            delayed_ack: DelayedAck {
                max_delay: Duration::from_millis(100),
                every_segs: 2,
                immediate_on_hole_fill: true,
            },
            mss: 1460,
            window: 24820,
            answers_icmp: true,
            rst_closed_ports: true,
        }
    }

    /// Windows-2000-ish: global counter, aggressive delayed ACK that
    /// also delays hole-fill ACKs (the §III-B single-ACK ambiguity), and
    /// dual RSTs to a second SYN.
    pub fn windows2000() -> Self {
        HostPersonality {
            name: "windows2000",
            ipid: IpidScheme::GlobalCounterByteSwapped,
            second_syn: SecondSynBehavior::DualRst,
            delayed_ack: DelayedAck {
                max_delay: Duration::from_millis(200),
                every_segs: 2,
                immediate_on_hole_fill: false,
            },
            mss: 1460,
            window: 17520,
            answers_icmp: true,
            rst_closed_ports: true,
        }
    }

    /// A locked-down host: ignores second SYNs, filters ICMP — the
    /// hardest target; only the Single Connection and Data Transfer
    /// tests work.
    pub fn hardened() -> Self {
        HostPersonality {
            name: "hardened",
            ipid: IpidScheme::Random,
            second_syn: SecondSynBehavior::IgnoreSecond,
            delayed_ack: DelayedAck::default(),
            mss: 1460,
            window: 16384,
            answers_icmp: false,
            rst_closed_ports: false,
        }
    }

    /// All presets (used by the internet-population scenario builder).
    pub fn all_presets() -> Vec<HostPersonality> {
        vec![
            Self::freebsd4(),
            Self::linux22(),
            Self::linux24(),
            Self::openbsd3(),
            Self::solaris8(),
            Self::windows2000(),
            Self::hardened(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinctly_named() {
        let all = HostPersonality::all_presets();
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn paper_named_behaviors_present() {
        // Each IPID scheme named in the paper appears in some preset.
        let all = HostPersonality::all_presets();
        assert!(all
            .iter()
            .any(|p| matches!(p.ipid, IpidScheme::GlobalCounter { .. })));
        assert!(all.iter().any(|p| p.ipid == IpidScheme::ConstantZero));
        assert!(all.iter().any(|p| p.ipid == IpidScheme::Random));
        assert!(all
            .iter()
            .any(|p| matches!(p.ipid, IpidScheme::PerDestination { .. })));
        // Each second-SYN behavior too.
        for b in [
            SecondSynBehavior::RstAlways,
            SecondSynBehavior::SpecCompliant,
            SecondSynBehavior::DualRst,
            SecondSynBehavior::IgnoreSecond,
        ] {
            assert!(all.iter().any(|p| p.second_syn == b), "{b:?} missing");
        }
    }

    #[test]
    fn delayed_ack_disabled_acks_every_segment() {
        let d = DelayedAck::disabled();
        assert_eq!(d.every_segs, 1);
        assert!(d.max_delay.is_zero());
    }
}
