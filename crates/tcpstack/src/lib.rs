//! # reorder-tcpstack
//!
//! Miniature TCP/IP endpoints with configurable **OS personalities** —
//! the simulated stand-ins for the live Internet hosts probed in
//! *Measuring Packet Reordering* (Bellardo & Savage, IMC 2002).
//!
//! The measurement techniques in `reorder-core` interrogate only
//! documented TCP/IP behaviors; this crate implements exactly those
//! behaviors, plus every implementation variation the paper names as a
//! complication:
//!
//! * IPID generation disciplines ([`IpidScheme`]): traditional global
//!   counter, Solaris per-destination counters, OpenBSD random values,
//!   Linux-2.4 constant zero;
//! * second-SYN responses ([`SecondSynBehavior`]): always-RST,
//!   spec-compliant RST/ACK, dual RST, silence;
//! * delayed acknowledgments ([`DelayedAck`]) with immediate ACKs for
//!   out-of-order data and configurable hole-fill behavior;
//! * a window/MSS-honoring object server for the Data Transfer Test.
//!
//! [`TcpHost`] packages a personality as a [`reorder_netsim::Device`];
//! [`Conn`] is the pure per-connection state machine underneath it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod host;
pub mod ipid_gen;
pub mod personality;
pub mod reasm;

pub use conn::{Conn, ConnCfg, ConnState, SegmentOut, TimerReq};
pub use host::{TcpHost, TcpHostConfig};
pub use ipid_gen::IpidGenerator;
pub use personality::{DelayedAck, HostPersonality, IpidScheme, SecondSynBehavior};
pub use reasm::ReasmQueue;
