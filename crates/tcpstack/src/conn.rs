//! Per-connection TCP state machine (server side).
//!
//! This is deliberately *not* a full TCP: it is the faithful subset that
//! the measurement techniques interrogate —
//!
//! * three-way handshake, including every second-SYN response variant
//!   of §III-D,
//! * cumulative ACK generation with real delayed-ACK semantics
//!   (delaying for in-order data, **immediate** ACKs for out-of-order
//!   data — the property §III-B's reversed ordering exploits — and
//!   configurable hole-fill behavior),
//! * out-of-order reassembly with ACK jumps when a hole fills,
//! * a minimal HTTP-ish object server honoring the peer's advertised
//!   window and MSS (the knobs the Data Transfer Test clamps),
//! * RST/FIN teardown.
//!
//! The state machine is pure: it consumes segment headers and emits
//! [`SegmentOut`] values plus a timer request, which the enclosing
//! [`crate::TcpHost`] turns into simulator packets and timers. This keeps
//! every behavior unit-testable without a simulator.

use crate::personality::{DelayedAck, SecondSynBehavior};
use crate::reasm::ReasmQueue;
use reorder_wire::{Bytes, SeqNum, TcpFlags, TcpHeader, TcpOption};

/// A segment the connection wants transmitted (addresses/IPID are the
/// host's job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentOut {
    /// Sequence number.
    pub seq: SeqNum,
    /// Acknowledgment number.
    pub ack: SeqNum,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
    /// Payload — a zero-copy slice of the connection's object buffer
    /// for data segments, empty otherwise.
    pub data: Bytes,
    /// Options.
    pub options: Vec<TcpOption>,
}

/// Timer request returned from event handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerReq {
    /// No change to timers.
    None,
    /// (Re)arm the delayed-ACK timer for `DelayedAck::max_delay`.
    ArmAckTimer,
}

/// Connection lifecycle states (server-simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// SYN received, SYN/ACK sent, awaiting ACK.
    SynRecv,
    /// Handshake complete.
    Established,
    /// We sent FIN (after serving the object or answering the peer's
    /// FIN); awaiting its ACK.
    LastAck,
    /// Done; the slot can be reaped.
    Closed,
}

/// Static per-connection configuration, derived from the host
/// personality.
#[derive(Debug, Clone)]
pub struct ConnCfg {
    /// Delayed-ACK behavior.
    pub delayed_ack: DelayedAck,
    /// Second-SYN response policy.
    pub second_syn: SecondSynBehavior,
    /// MSS we advertise and segment our sends by (before peer clamping).
    pub mss: u16,
    /// Receive window we advertise.
    pub window: u16,
    /// Size of the object served to an HTTP-ish `GET`; 0 = no content.
    pub object_size: usize,
    /// Whether to offer SACK blocks on duplicate ACKs (needed by the
    /// Bennett-style SACK metric).
    pub sack: bool,
}

/// Object transmission progress.
#[derive(Debug, Clone)]
struct TxObject {
    /// The whole object, built once; segments are zero-copy slices.
    body: Bytes,
    /// Bytes handed to the network so far.
    sent: usize,
    /// FIN transmitted after the body.
    fin_sent: bool,
    /// The request asked for a persistent connection: once the object
    /// is fully acknowledged, stay `Established` and await the next
    /// `GET` instead of closing.
    keep_alive: bool,
}

/// The deterministic, self-describing object body: byte `k` is
/// `k % 251`, so traces can verify content.
fn object_body(total: usize) -> Bytes {
    Bytes::from((0..total).map(|k| (k % 251) as u8).collect::<Vec<u8>>())
}

/// A server-side TCP connection.
#[derive(Debug, Clone)]
pub struct Conn {
    cfg: ConnCfg,
    /// Current state.
    pub state: ConnState,
    /// Initial remote sequence number (first SYN wins — the property the
    /// SYN Test reads back from the SYN/ACK).
    pub irs: SeqNum,
    /// Our initial sequence number.
    pub iss: SeqNum,
    /// Next byte expected from the peer.
    pub rcv_nxt: SeqNum,
    /// Next byte we would send.
    pub snd_nxt: SeqNum,
    /// Oldest unacknowledged byte of ours.
    pub snd_una: SeqNum,
    /// Peer's advertised window (latest).
    pub peer_wnd: u16,
    /// Peer's MSS from its SYN (536 default per RFC 1122).
    pub peer_mss: u16,
    /// Out-of-order queue.
    reasm: ReasmQueue,
    /// In-order delivered request bytes (until the request triggers).
    req_buf: Vec<u8>,
    /// In-flight delayed-ACK bookkeeping: segments since last ACK.
    pending_ack_segs: u32,
    /// Generation of the armed ACK timer (stale timers are ignored).
    pub ack_timer_gen: u64,
    /// Whether an ACK timer is conceptually armed.
    ack_timer_armed: bool,
    /// Object being served, if triggered.
    tx: Option<TxObject>,
    /// Count of RSTs this connection asked to emit (observability).
    pub rsts_sent: u32,
}

impl Conn {
    /// Accept an initial SYN: create the connection and emit the
    /// SYN/ACK.
    pub fn accept(syn: &TcpHeader, iss: SeqNum, cfg: ConnCfg, out: &mut Vec<SegmentOut>) -> Conn {
        debug_assert!(syn.flags.contains(TcpFlags::SYN));
        let peer_mss = syn.mss().unwrap_or(536);
        let mut conn = Conn {
            cfg,
            state: ConnState::SynRecv,
            irs: syn.seq,
            iss,
            rcv_nxt: syn.seq + 1,
            snd_nxt: iss + 1,
            snd_una: iss,
            peer_wnd: syn.window,
            peer_mss,
            reasm: ReasmQueue::new(),
            req_buf: Vec::new(),
            pending_ack_segs: 0,
            ack_timer_gen: 0,
            ack_timer_armed: false,
            tx: None,
            rsts_sent: 0,
        };
        let synack = SegmentOut {
            seq: conn.iss,
            ack: conn.rcv_nxt,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: conn.cfg.window,
            data: Bytes::new(),
            options: vec![TcpOption::Mss(conn.cfg.mss)],
        };
        conn.snd_una = conn.iss;
        out.push(synack);
        conn
    }

    fn emit_ack(&mut self, out: &mut Vec<SegmentOut>) {
        let mut options = Vec::new();
        if self.cfg.sack && !self.reasm.is_empty() {
            let blocks = self
                .reasm
                .blocks()
                .iter()
                .map(|&(s, l)| (s, s + l))
                .collect();
            options.push(TcpOption::Sack(blocks));
        }
        out.push(SegmentOut {
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            window: self.cfg.window,
            data: Bytes::new(),
            options,
        });
        self.pending_ack_segs = 0;
        self.ack_timer_armed = false;
        self.ack_timer_gen += 1; // invalidate any armed timer
    }

    fn emit_rst(&mut self, to_seq: SeqNum, out: &mut Vec<SegmentOut>) {
        self.rsts_sent += 1;
        out.push(SegmentOut {
            seq: self.snd_nxt,
            ack: to_seq + 1,
            flags: TcpFlags::RST | TcpFlags::ACK,
            window: 0,
            data: Bytes::new(),
            options: Vec::new(),
        });
    }

    /// Handle a second SYN while half-open (§III-D, Fig. 4).
    fn on_dup_syn(&mut self, hdr: &TcpHeader, out: &mut Vec<SegmentOut>) {
        if hdr.seq == self.irs {
            // Pure retransmission: resend the SYN/ACK.
            out.push(SegmentOut {
                seq: self.iss,
                ack: self.rcv_nxt,
                flags: TcpFlags::SYN | TcpFlags::ACK,
                window: self.cfg.window,
                data: Bytes::new(),
                options: vec![TcpOption::Mss(self.cfg.mss)],
            });
            return;
        }
        match self.cfg.second_syn {
            SecondSynBehavior::RstAlways => {
                self.emit_rst(hdr.seq, out);
                self.state = ConnState::Closed;
            }
            SecondSynBehavior::SpecCompliant => {
                // In-window sequence → RST; below window (the "earlier"
                // SYN arriving late) → pure ACK.
                let in_window = self
                    .rcv_nxt
                    .contains(u32::from(self.cfg.window).max(1), hdr.seq);
                if in_window {
                    self.emit_rst(hdr.seq, out);
                    self.state = ConnState::Closed;
                } else {
                    out.push(SegmentOut {
                        seq: self.snd_nxt,
                        ack: self.rcv_nxt,
                        flags: TcpFlags::ACK,
                        window: self.cfg.window,
                        data: Bytes::new(),
                        options: Vec::new(),
                    });
                }
            }
            SecondSynBehavior::DualRst => {
                self.emit_rst(hdr.seq, out);
                self.emit_rst(hdr.seq, out);
                self.state = ConnState::Closed;
            }
            SecondSynBehavior::IgnoreSecond => {}
        }
    }

    /// Main entry: a segment arrived. Returns a timer request.
    pub fn on_segment(
        &mut self,
        hdr: &TcpHeader,
        data: &[u8],
        out: &mut Vec<SegmentOut>,
    ) -> TimerReq {
        if self.state == ConnState::Closed {
            return TimerReq::None;
        }
        if hdr.flags.contains(TcpFlags::RST) {
            self.state = ConnState::Closed;
            return TimerReq::None;
        }
        self.peer_wnd = hdr.window;

        if hdr.flags.contains(TcpFlags::SYN) {
            // A SYN on a synchronized connection is ignored (conservative
            // variant of the challenge-ACK behavior); only the half-open
            // state reacts.
            if self.state == ConnState::SynRecv {
                self.on_dup_syn(hdr, out);
            }
            return TimerReq::None;
        }

        // ACK processing.
        if hdr.flags.contains(TcpFlags::ACK) {
            if self.state == ConnState::SynRecv && hdr.ack == self.iss + 1 {
                self.state = ConnState::Established;
                self.snd_una = hdr.ack;
            } else if hdr.ack.distance_to(self.snd_una) < 0 && hdr.ack <= self.snd_nxt {
                self.snd_una = hdr.ack;
            }
            if self.state == ConnState::LastAck && self.snd_una == self.snd_nxt {
                self.state = ConnState::Closed;
                return TimerReq::None;
            }
        }

        let mut timer = TimerReq::None;
        if !data.is_empty() {
            timer = self.on_data(hdr.seq, data, out);
        }

        if hdr.flags.contains(TcpFlags::FIN) {
            // Only honor an in-order FIN (a FIN beyond a hole would need
            // queueing; the probes never send that).
            if hdr.seq + data.len() as u32 == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt + 1;
                // ACK the FIN and close our side too (no more data, or
                // abandon the object).
                let fin = SegmentOut {
                    seq: self.snd_nxt,
                    ack: self.rcv_nxt,
                    flags: TcpFlags::FIN | TcpFlags::ACK,
                    window: self.cfg.window,
                    data: Bytes::new(),
                    options: Vec::new(),
                };
                self.snd_nxt = self.snd_nxt + 1;
                out.push(fin);
                self.pending_ack_segs = 0;
                self.ack_timer_armed = false;
                self.ack_timer_gen += 1;
                self.state = ConnState::LastAck;
                return TimerReq::None;
            }
        }

        // Window may have opened, or new ACKs may clock out more data.
        self.pump_tx(out);
        timer
    }

    /// Receive-path handling for a data segment.
    fn on_data(&mut self, seq: SeqNum, data: &[u8], out: &mut Vec<SegmentOut>) -> TimerReq {
        let len = data.len() as u32;
        let end = seq + len;
        if end <= self.rcv_nxt {
            // Entirely old: immediate duplicate ACK.
            self.emit_ack(out);
            return TimerReq::None;
        }
        if seq > self.rcv_nxt {
            // Out-of-order (beyond the edge): queue + immediate dup ACK.
            // "the delayed acknowledgment algorithm is suspended for
            // out-of-order data and acknowledgments are sent
            // immediately" (§III-A).
            self.reasm.insert(seq, len);
            self.emit_ack(out);
            return TimerReq::None;
        }
        // In-order (possibly with old prefix). Deliver and advance.
        let skip = (self.rcv_nxt - seq) as usize;
        let fresh = &data[skip.min(data.len())..];
        let pre_edge = self.rcv_nxt + fresh.len() as u32;
        let had_queue = !self.reasm.is_empty();
        let post_edge = self.reasm.advance(pre_edge);
        let filled_hole = had_queue && post_edge != pre_edge;
        self.rcv_nxt = post_edge;
        self.deliver(fresh, out);

        if filled_hole && self.cfg.delayed_ack.immediate_on_hole_fill {
            self.emit_ack(out);
            return TimerReq::None;
        }
        // Delayed-ACK algorithm for in-order data.
        self.pending_ack_segs += 1;
        if self.pending_ack_segs >= self.cfg.delayed_ack.every_segs
            || self.cfg.delayed_ack.max_delay.is_zero()
        {
            self.emit_ack(out);
            TimerReq::None
        } else if self.ack_timer_armed {
            TimerReq::None
        } else {
            self.ack_timer_armed = true;
            self.ack_timer_gen += 1;
            TimerReq::ArmAckTimer
        }
    }

    /// The delayed-ACK timer fired (host verified the generation).
    pub fn on_ack_timer(&mut self, out: &mut Vec<SegmentOut>) {
        if self.state == ConnState::Closed {
            return;
        }
        if self.ack_timer_armed {
            self.emit_ack(out);
        }
    }

    /// Application-layer delivery: accumulate the request until it looks
    /// like a complete HTTP GET, then start serving the object.
    fn deliver(&mut self, bytes: &[u8], out: &mut Vec<SegmentOut>) {
        if self.tx.is_some() || self.cfg.object_size == 0 {
            return;
        }
        self.req_buf.extend_from_slice(bytes);
        let complete = self.req_buf.windows(4).any(|w| w == b"\r\n\r\n");
        if complete && self.req_buf.starts_with(b"GET ") {
            // HTTP/1.0-style opt-in persistence: only a request that
            // carries the keep-alive token changes the close behavior,
            // so plain fetches stay packet-identical.
            let keep_alive = self
                .req_buf
                .windows(10)
                .any(|w| w.eq_ignore_ascii_case(b"keep-alive"));
            self.tx = Some(TxObject {
                body: object_body(self.cfg.object_size),
                sent: 0,
                fin_sent: false,
                keep_alive,
            });
            self.req_buf.clear();
            self.pump_tx(out);
        }
    }

    /// Transmit as much of the object as the peer's window allows.
    /// Segment size is the *minimum* of our MSS and the peer's — this is
    /// the clamp the Data Transfer Test applies to keep packets small.
    fn pump_tx(&mut self, out: &mut Vec<SegmentOut>) {
        if self.state != ConnState::Established {
            return;
        }
        let Some(tx) = &mut self.tx else {
            return;
        };
        let seg_max = usize::from(self.cfg.mss.min(self.peer_mss)).max(1);
        loop {
            let in_flight = (self.snd_nxt - self.snd_una) as usize;
            let wnd = usize::from(self.peer_wnd);
            if in_flight >= wnd {
                return;
            }
            let room = wnd - in_flight;
            let remaining = tx.body.len() - tx.sent;
            if remaining == 0 {
                if !tx.fin_sent && in_flight == 0 {
                    if tx.keep_alive {
                        // Object fully acked on a persistent
                        // connection: become idle and await the next
                        // GET. An empty PSH|ACK tells the client the
                        // object is complete — its positive signal to
                        // reuse the connection (a stalled transfer
                        // never produces one, so the client can tell
                        // "done" from "tail loss").
                        self.tx = None;
                        out.push(SegmentOut {
                            seq: self.snd_nxt,
                            ack: self.rcv_nxt,
                            flags: TcpFlags::ACK | TcpFlags::PSH,
                            window: self.cfg.window,
                            data: Bytes::new(),
                            options: Vec::new(),
                        });
                        return;
                    }
                    // Object fully acked: close gracefully.
                    tx.fin_sent = true;
                    out.push(SegmentOut {
                        seq: self.snd_nxt,
                        ack: self.rcv_nxt,
                        flags: TcpFlags::FIN | TcpFlags::ACK,
                        window: self.cfg.window,
                        data: Bytes::new(),
                        options: Vec::new(),
                    });
                    self.snd_nxt = self.snd_nxt + 1;
                    self.state = ConnState::LastAck;
                }
                return;
            }
            let n = seg_max.min(room).min(remaining);
            if n == 0 {
                return;
            }
            let data = tx.body.slice(tx.sent..tx.sent + n);
            out.push(SegmentOut {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: self.cfg.window,
                data,
                options: Vec::new(),
            });
            self.snd_nxt = self.snd_nxt + n as u32;
            tx.sent += n;
        }
    }

    /// Whether the reassembly queue currently holds out-of-order data.
    pub fn has_ooo(&self) -> bool {
        !self.reasm.is_empty()
    }

    /// SACK-style block count (for the Bennett metric).
    pub fn ooo_blocks(&self) -> usize {
        self.reasm.block_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::personality::HostPersonality;

    fn cfg() -> ConnCfg {
        let p = HostPersonality::freebsd4();
        ConnCfg {
            delayed_ack: p.delayed_ack,
            second_syn: p.second_syn,
            mss: p.mss,
            window: p.window,
            object_size: 0,
            sack: false,
        }
    }

    fn syn(seq: u32) -> TcpHeader {
        TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 65535,
            urgent: 0,
            options: vec![TcpOption::Mss(1460)],
        }
    }

    fn seg(seq: u32, ack: u32, flags: TcpFlags, window: u16) -> TcpHeader {
        TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags,
            window,
            urgent: 0,
            options: vec![],
        }
    }

    /// Establish a connection with irs=0 (rcv_nxt=1) and return it.
    fn established(cfg: ConnCfg) -> Conn {
        let mut out = Vec::new();
        let mut c = Conn::accept(&syn(0), SeqNum(7000), cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flags, TcpFlags::SYN | TcpFlags::ACK);
        assert_eq!(out[0].ack, SeqNum(1));
        out.clear();
        let t = c.on_segment(&seg(1, 7001, TcpFlags::ACK, 65535), &[], &mut out);
        assert_eq!(t, TimerReq::None);
        assert!(out.is_empty());
        assert_eq!(c.state, ConnState::Established);
        c
    }

    #[test]
    fn handshake() {
        established(cfg());
    }

    /// The §III-B preparation phase: data at seq 2 (expecting 1) elicits
    /// an immediate duplicate ACK of 1 and queues the byte.
    #[test]
    fn hole_preparation_dup_acks_immediately() {
        let mut c = established(cfg());
        let mut out = Vec::new();
        let t = c.on_segment(&seg(2, 7001, TcpFlags::ACK, 65535), b"X", &mut out);
        assert_eq!(t, TimerReq::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(1), "dup ACK points at the hole");
        assert!(c.has_ooo());
        // Retransmission behaves identically.
        out.clear();
        c.on_segment(&seg(2, 7001, TcpFlags::ACK, 65535), b"X", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(1));
    }

    /// §III-B in-order sample: data 1 fills the hole (immediate ack 3),
    /// then data 3 is in-order (delayed or counted ACK → ack 4).
    #[test]
    fn single_conn_samples_in_order() {
        let mut c = established(cfg());
        let mut out = Vec::new();
        c.on_segment(&seg(2, 7001, TcpFlags::ACK, 65535), b"X", &mut out);
        out.clear();
        // data 1 arrives: hole fills, rcv_nxt jumps to 3, immediate ACK.
        let t = c.on_segment(&seg(1, 7001, TcpFlags::ACK, 65535), b"A", &mut out);
        assert_eq!(t, TimerReq::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(3));
        out.clear();
        // data 3 arrives in-order: first pending segment → timer armed.
        let t = c.on_segment(&seg(3, 7001, TcpFlags::ACK, 65535), b"B", &mut out);
        assert_eq!(t, TimerReq::ArmAckTimer);
        assert!(out.is_empty());
        c.on_ack_timer(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(4));
    }

    /// §III-B reordered sample: data 3 first (dup ack 1), then data 1
    /// (hole fill → ack 4).
    #[test]
    fn single_conn_samples_reordered() {
        let mut c = established(cfg());
        let mut out = Vec::new();
        c.on_segment(&seg(2, 7001, TcpFlags::ACK, 65535), b"X", &mut out);
        out.clear();
        c.on_segment(&seg(3, 7001, TcpFlags::ACK, 65535), b"B", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(1), "OOO data → immediate dup ACK");
        out.clear();
        c.on_segment(&seg(1, 7001, TcpFlags::ACK, 65535), b"A", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(4), "hole fill jumps over queue");
    }

    /// A stack that delays hole-fill ACKs produces the §III-B ambiguity:
    /// in-order delivery yields only the final cumulative ACK.
    #[test]
    fn delayed_hole_fill_collapses_to_single_ack() {
        let mut c = established(ConnCfg {
            delayed_ack: DelayedAck {
                immediate_on_hole_fill: false,
                ..DelayedAck::default()
            },
            ..cfg()
        });
        let mut out = Vec::new();
        c.on_segment(&seg(2, 7001, TcpFlags::ACK, 65535), b"X", &mut out);
        out.clear();
        // data 1: hole fill but ACK withheld (counts as 1 pending).
        let t = c.on_segment(&seg(1, 7001, TcpFlags::ACK, 65535), b"A", &mut out);
        assert_eq!(t, TimerReq::ArmAckTimer);
        assert!(out.is_empty());
        // data 3: second pending segment → single ACK for everything.
        c.on_segment(&seg(3, 7001, TcpFlags::ACK, 65535), b"B", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, SeqNum(4), "one ACK covering the series");
    }

    #[test]
    fn second_syn_rst_always() {
        let mut out = Vec::new();
        let mut c = Conn::accept(&syn(100), SeqNum(1), cfg(), &mut out);
        out.clear();
        c.on_segment(&syn(101), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.contains(TcpFlags::RST));
        assert_eq!(c.state, ConnState::Closed);
    }

    #[test]
    fn second_syn_spec_compliant_in_window_rst() {
        let mut out = Vec::new();
        let mut c = Conn::accept(
            &syn(100),
            SeqNum(1),
            ConnCfg {
                second_syn: SecondSynBehavior::SpecCompliant,
                ..cfg()
            },
            &mut out,
        );
        out.clear();
        // Later sequence number: inside the window → RST.
        c.on_segment(&syn(102), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.contains(TcpFlags::RST));
    }

    #[test]
    fn second_syn_spec_compliant_below_window_acks() {
        let mut out = Vec::new();
        let mut c = Conn::accept(
            &syn(100),
            SeqNum(1),
            ConnCfg {
                second_syn: SecondSynBehavior::SpecCompliant,
                ..cfg()
            },
            &mut out,
        );
        out.clear();
        // The "first" SYN (lower sequence) arriving second → pure ACK.
        c.on_segment(&syn(99), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flags, TcpFlags::ACK);
        assert!(!out[0].flags.contains(TcpFlags::RST));
        assert_eq!(c.state, ConnState::SynRecv, "connection survives");
    }

    #[test]
    fn second_syn_dual_rst() {
        let mut out = Vec::new();
        let mut c = Conn::accept(
            &syn(100),
            SeqNum(1),
            ConnCfg {
                second_syn: SecondSynBehavior::DualRst,
                ..cfg()
            },
            &mut out,
        );
        out.clear();
        c.on_segment(&syn(101), &[], &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|s| s.flags.contains(TcpFlags::RST)));
    }

    #[test]
    fn second_syn_ignored() {
        let mut out = Vec::new();
        let mut c = Conn::accept(
            &syn(100),
            SeqNum(1),
            ConnCfg {
                second_syn: SecondSynBehavior::IgnoreSecond,
                ..cfg()
            },
            &mut out,
        );
        out.clear();
        c.on_segment(&syn(101), &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(c.state, ConnState::SynRecv);
    }

    #[test]
    fn retransmitted_syn_gets_synack_again() {
        let mut out = Vec::new();
        let mut c = Conn::accept(&syn(100), SeqNum(1), cfg(), &mut out);
        out.clear();
        c.on_segment(&syn(100), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flags, TcpFlags::SYN | TcpFlags::ACK);
        assert_eq!(out[0].ack, SeqNum(101));
        assert_eq!(c.state, ConnState::SynRecv);
    }

    #[test]
    fn rst_closes() {
        let mut c = established(cfg());
        let mut out = Vec::new();
        c.on_segment(&seg(1, 0, TcpFlags::RST, 0), &[], &mut out);
        assert_eq!(c.state, ConnState::Closed);
        assert!(out.is_empty());
        // Closed connections are silent.
        c.on_segment(&seg(1, 7001, TcpFlags::ACK, 100), b"zz", &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fin_teardown() {
        let mut c = established(cfg());
        let mut out = Vec::new();
        c.on_segment(
            &seg(1, 7001, TcpFlags::FIN | TcpFlags::ACK, 100),
            &[],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.contains(TcpFlags::FIN));
        assert_eq!(out[0].ack, SeqNum(2), "FIN consumes a sequence number");
        assert_eq!(c.state, ConnState::LastAck);
        out.clear();
        // Peer ACKs our FIN.
        c.on_segment(&seg(2, 7002, TcpFlags::ACK, 100), &[], &mut out);
        assert_eq!(c.state, ConnState::Closed);
    }

    #[test]
    fn serves_object_within_window_and_mss() {
        let object = 5000usize;
        let mut c = established(ConnCfg {
            object_size: object,
            ..cfg()
        });
        let mut out = Vec::new();
        // GET with a small advertised window and a small MSS already
        // negotiated? Peer MSS comes from the SYN (1460 here); the
        // window clamp is per-segment flow control.
        let req = b"GET / HTTP/1.0\r\n\r\n";
        c.on_segment(
            &seg(1, 7001, TcpFlags::ACK | TcpFlags::PSH, 2920),
            req,
            &mut out,
        );
        // First: delayed-ack handling may or may not emit; find data.
        let data: Vec<&SegmentOut> = out.iter().filter(|s| !s.data.is_empty()).collect();
        let sent: usize = data.iter().map(|s| s.data.len()).sum();
        assert!(sent <= 2920, "must respect the 2920-byte window");
        assert!(data.iter().all(|s| s.data.len() <= 1460));
        // ACK everything so far; more data flows.
        let acked = c.snd_nxt;
        out.clear();
        c.on_segment(&seg(19, acked.raw(), TcpFlags::ACK, 2920), &[], &mut out);
        let sent2: usize = out.iter().map(|s| s.data.len()).sum();
        assert!(sent2 > 0, "ack should clock out more data");
    }

    #[test]
    fn object_completion_sends_fin() {
        let mut c = established(ConnCfg {
            object_size: 100,
            ..cfg()
        });
        let mut out = Vec::new();
        let req = b"GET / HTTP/1.0\r\n\r\n";
        c.on_segment(
            &seg(1, 7001, TcpFlags::ACK | TcpFlags::PSH, 65535),
            req,
            &mut out,
        );
        let last = c.snd_nxt;
        out.clear();
        // ACK the whole object.
        c.on_segment(&seg(19, last.raw(), TcpFlags::ACK, 65535), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.contains(TcpFlags::FIN));
        assert_eq!(c.state, ConnState::LastAck);
    }

    #[test]
    fn keep_alive_request_leaves_connection_open_for_next_get() {
        let mut c = established(ConnCfg {
            object_size: 100,
            ..cfg()
        });
        let mut out = Vec::new();
        let req = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        c.on_segment(
            &seg(1, 7001, TcpFlags::ACK | TcpFlags::PSH, 65535),
            req,
            &mut out,
        );
        let served: usize = out.iter().map(|s| s.data.len()).sum();
        assert_eq!(served, 100);
        let last = c.snd_nxt;
        out.clear();
        // ACK the whole object: no FIN, the connection idles.
        let next_seq = 1 + req.len() as u32;
        c.on_segment(
            &seg(next_seq, last.raw(), TcpFlags::ACK, 65535),
            &[],
            &mut out,
        );
        assert!(
            out.iter().all(|s| !s.flags.contains(TcpFlags::FIN)),
            "keep-alive must suppress the FIN"
        );
        // The completion marker: exactly one empty PSH|ACK, the
        // client's positive signal that the object was fully served.
        let markers = out
            .iter()
            .filter(|s| s.flags.contains(TcpFlags::PSH | TcpFlags::ACK) && s.data.is_empty())
            .count();
        assert_eq!(markers, 1, "completion marker after full ACK");
        assert_eq!(c.state, ConnState::Established);
        out.clear();
        // A second GET on the same connection serves again.
        c.on_segment(
            &seg(next_seq, last.raw(), TcpFlags::ACK | TcpFlags::PSH, 65535),
            req,
            &mut out,
        );
        let served2: usize = out.iter().map(|s| s.data.len()).sum();
        assert_eq!(served2, 100, "second object on the same connection");
    }

    #[test]
    fn plain_request_still_closes_after_object() {
        // The keep-alive token is opt-in: a 1.0 GET without it keeps
        // the historical FIN-after-object behavior packet for packet.
        let mut c = established(ConnCfg {
            object_size: 100,
            ..cfg()
        });
        let mut out = Vec::new();
        let req = b"GET / HTTP/1.0\r\n\r\n";
        c.on_segment(
            &seg(1, 7001, TcpFlags::ACK | TcpFlags::PSH, 65535),
            req,
            &mut out,
        );
        let last = c.snd_nxt;
        out.clear();
        c.on_segment(&seg(19, last.raw(), TcpFlags::ACK, 65535), &[], &mut out);
        assert!(out.iter().any(|s| s.flags.contains(TcpFlags::FIN)));
        assert_eq!(c.state, ConnState::LastAck);
    }

    #[test]
    fn non_http_bytes_do_not_trigger_object() {
        let mut c = established(ConnCfg {
            object_size: 100,
            ..cfg()
        });
        let mut out = Vec::new();
        c.on_segment(&seg(1, 7001, TcpFlags::ACK, 65535), b"A", &mut out);
        assert!(
            out.iter().all(|s| s.data.is_empty()),
            "probe bytes must not trigger content"
        );
    }

    #[test]
    fn object_payload_is_deterministic() {
        let mut c = established(ConnCfg {
            object_size: 300,
            ..cfg()
        });
        let mut out = Vec::new();
        let req = b"GET / HTTP/1.0\r\n\r\n";
        c.on_segment(
            &seg(1, 7001, TcpFlags::ACK | TcpFlags::PSH, 65535),
            req,
            &mut out,
        );
        let body: Vec<u8> = out.iter().flat_map(|s| s.data.to_vec()).collect();
        assert_eq!(body.len(), 300);
        for (k, b) in body.iter().enumerate() {
            assert_eq!(*b, (k % 251) as u8);
        }
    }

    #[test]
    fn sack_blocks_on_dup_ack_when_enabled() {
        let mut c = established(ConnCfg {
            sack: true,
            ..cfg()
        });
        let mut out = Vec::new();
        c.on_segment(&seg(5, 7001, TcpFlags::ACK, 65535), b"XY", &mut out);
        assert_eq!(out.len(), 1);
        let blocks = match &out[0].options[..] {
            [TcpOption::Sack(b)] => b.clone(),
            other => panic!("expected SACK option, got {other:?}"),
        };
        assert_eq!(blocks, vec![(SeqNum(5), SeqNum(7))]);
    }

    #[test]
    fn stale_ack_does_not_regress_snd_una() {
        let mut c = established(ConnCfg {
            object_size: 4000,
            ..cfg()
        });
        let mut out = Vec::new();
        let req = b"GET / HTTP/1.0\r\n\r\n";
        c.on_segment(
            &seg(1, 7001, TcpFlags::ACK | TcpFlags::PSH, 65535),
            req,
            &mut out,
        );
        let high = c.snd_nxt;
        out.clear();
        c.on_segment(&seg(19, high.raw(), TcpFlags::ACK, 65535), &[], &mut out);
        let una_after = c.snd_una;
        out.clear();
        // A stale (smaller) ACK arrives late.
        c.on_segment(&seg(19, 7001 + 100, TcpFlags::ACK, 65535), &[], &mut out);
        assert_eq!(c.snd_una, una_after, "snd_una must not move backwards");
    }
}
