//! Property tests for the TCP endpoint: reassembly equivalence against
//! a naive model, receiver-ACK invariants under arbitrary segment
//! arrival orders, and state-machine robustness (no panics, no
//! acknowledgment of never-received data).

use proptest::prelude::*;
use reorder_tcpstack::{Conn, ConnCfg, DelayedAck, HostPersonality, ReasmQueue, SecondSynBehavior};
use reorder_wire::{SeqNum, TcpFlags, TcpHeader, TcpOption};
use std::collections::BTreeSet;

// --- Reassembly queue vs naive byte-set model ------------------------------

/// Naive model: the set of byte offsets received out-of-order.
#[derive(Default)]
struct NaiveReasm {
    bytes: BTreeSet<u64>,
}

impl NaiveReasm {
    fn insert(&mut self, start: u64, len: u32) {
        for b in start..start + u64::from(len) {
            self.bytes.insert(b);
        }
    }

    fn advance(&mut self, mut edge: u64) -> u64 {
        while self.bytes.remove(&edge) {
            edge += 1;
        }
        // Drop stale bytes below the edge.
        self.bytes = self.bytes.split_off(&edge);
        edge
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The range-based queue must agree with the naive per-byte model
    /// on every interleaving of inserts and advances (within a window
    /// that avoids sequence wraparound, which the naive model cannot
    /// express).
    #[test]
    fn reasm_matches_naive_model(
        ops in proptest::collection::vec(
            prop_oneof![
                // insert(offset, len)
                (0u64..2000, 1u32..50).prop_map(|(o, l)| (0u8, o, l)),
                // advance(edge)
                (0u64..2050).prop_map(|e| (1u8, e, 0u32)),
            ],
            1..40,
        )
    ) {
        let base = 1_000_000u64;
        let mut real = ReasmQueue::new();
        let mut naive = NaiveReasm::default();
        let mut real_edge;
        let mut naive_edge = base;
        for (kind, a, b) in ops {
            match kind {
                0 => {
                    real.insert(SeqNum((base + a) as u32), b);
                    naive.insert(base + a, b);
                }
                _ => {
                    // Only advance forward (TCP edges are monotone).
                    let target = base + a;
                    if target >= naive_edge {
                        real_edge = real.advance(SeqNum(target as u32));
                        naive_edge = naive.advance(target);
                        prop_assert_eq!(
                            u64::from(real_edge.raw()),
                            naive_edge & 0xffff_ffff,
                            "edges diverged"
                        );
                    }
                }
            }
            prop_assert_eq!(real.is_empty(), naive.bytes.is_empty());
        }
    }
}

// --- Connection invariants ---------------------------------------------------

fn cfg() -> ConnCfg {
    let p = HostPersonality::freebsd4();
    ConnCfg {
        delayed_ack: DelayedAck::disabled(), // every segment ACKed: easy to audit
        second_syn: SecondSynBehavior::RstAlways,
        mss: p.mss,
        window: p.window,
        object_size: 0,
        sack: true,
    }
}

fn seg(seq: u32, flags: TcpFlags) -> TcpHeader {
    TcpHeader {
        src_port: 4000,
        dst_port: 80,
        seq: SeqNum(seq),
        ack: SeqNum(1001),
        flags,
        window: 65535,
        urgent: 0,
        options: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Feed an established connection arbitrary small data segments in
    /// arbitrary order. Invariants:
    /// 1. never panics;
    /// 2. every cumulative ACK acknowledges only bytes actually
    ///    received (the ACK edge never passes unreceived data);
    /// 3. the ACK edge is monotone;
    /// 4. SACK blocks only ever describe received bytes.
    #[test]
    fn receiver_acks_only_received_data(
        segments in proptest::collection::vec((0u32..60, 1usize..4), 1..50)
    ) {
        // Establish: irs = 1000, so data bytes start at 1001.
        let syn = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: SeqNum(1000),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 65535,
            urgent: 0,
            options: vec![TcpOption::Mss(1460)],
        };
        let mut out = Vec::new();
        let mut c = Conn::accept(&syn, SeqNum(5000), cfg(), &mut out);
        out.clear();
        c.on_segment(&seg(1001, TcpFlags::ACK), &[], &mut out);
        out.clear();

        let mut received = BTreeSet::new(); // byte offsets (0-based from 1001)
        let mut last_ack = 1001u32;
        for (off, len) in segments {
            let data = vec![0xAA; len];
            for b in off..off + len as u32 {
                received.insert(b);
            }
            c.on_segment(&seg(1001 + off, TcpFlags::ACK), &data, &mut out);
            for s in out.drain(..) {
                if !s.flags.contains(TcpFlags::ACK) {
                    continue;
                }
                let ack = s.ack.raw();
                // Monotone.
                prop_assert!(ack >= last_ack, "ACK regressed {last_ack} -> {ack}");
                last_ack = ack;
                // Covers only received bytes.
                for b in 0..ack.saturating_sub(1001) {
                    prop_assert!(
                        received.contains(&b),
                        "ACK {ack} covers unreceived byte {b}"
                    );
                }
                // SACK blocks describe received data only.
                for opt in &s.options {
                    if let TcpOption::Sack(blocks) = opt {
                        for &(l, r) in blocks {
                            prop_assert!(l < r, "empty/inverted SACK block");
                            for b in l.raw()..r.raw() {
                                prop_assert!(
                                    received.contains(&(b - 1001)),
                                    "SACK covers unreceived byte {b}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Arbitrary flag/sequence soup must never panic and never elicit
    /// data the server was not asked for.
    #[test]
    fn connection_survives_arbitrary_segments(
        soup in proptest::collection::vec((any::<u32>(), 0u8..64, 0usize..5), 1..60)
    ) {
        let syn = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: SeqNum(1000),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 65535,
            urgent: 0,
            options: vec![],
        };
        let mut out = Vec::new();
        let mut c = Conn::accept(&syn, SeqNum(5000), cfg(), &mut out);
        out.clear();
        for (sq, flags, dlen) in soup {
            let h = TcpHeader {
                src_port: 4000,
                dst_port: 80,
                seq: SeqNum(sq),
                ack: SeqNum(5001),
                flags: TcpFlags(flags),
                window: 1024,
                urgent: 0,
                options: vec![],
            };
            let data = vec![0u8; dlen];
            c.on_segment(&h, &data, &mut out);
            for s in out.drain(..) {
                prop_assert!(
                    s.data.is_empty(),
                    "server with no object must never send data"
                );
            }
        }
    }
}
