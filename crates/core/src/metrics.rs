//! Reordering metrics.
//!
//! The paper's primitive metric is "the number of exchanges between
//! pairs of test packets ... for a known load" (§I), reported as the
//! probability that a back-to-back pair is exchanged, and generalized by
//! parameterizing on inter-packet delay (§IV-C) — the [`GapProfile`].
//! For comparison with prior work we also implement the Bennett et al.
//! SACK-block metric \[2\] and the non-reversing-sequence metrics that the
//! IETF IPPM draft \[8\] (later RFC 4737) standardized.

use std::time::Duration;

/// A reordering-rate estimate: `reordered` events out of `total`
/// determinate samples. `Default` is the empty estimate (0/0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderEstimate {
    /// Reordered (exchanged) samples.
    pub reordered: usize,
    /// Determinate samples (discarded ones excluded, per §III-B).
    pub total: usize,
}

impl ReorderEstimate {
    /// New estimate.
    pub fn new(reordered: usize, total: usize) -> Self {
        assert!(reordered <= total, "more events than samples");
        ReorderEstimate { reordered, total }
    }

    /// Point estimate of the reordering probability (0 when no samples).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.reordered as f64 / self.total as f64
        }
    }

    /// Wilson score interval at critical value `z` (e.g. 1.96 for 95%).
    /// Well-behaved at the extremes (0 or all samples reordered), unlike
    /// the normal approximation.
    pub fn wilson_ci(&self, z: f64) -> (f64, f64) {
        let n = self.total as f64;
        if self.total == 0 {
            return (0.0, 1.0);
        }
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Merge two estimates (e.g. across measurement rounds).
    pub fn merge(&self, other: &ReorderEstimate) -> ReorderEstimate {
        ReorderEstimate {
            reordered: self.reordered + other.reordered,
            total: self.total + other.total,
        }
    }
}

/// The paper's primitive metric applied to an arbitrary arrival
/// sequence: the number of adjacent exchanges (bubble-sort swaps) needed
/// to restore sent order. For a 2-packet sample this is 0 or 1.
/// Computed as an O(n log n) merge count of inversions
/// ([`reorder_netsim::capture::count_inversions`]), which equals the
/// bubble-sort swap count exactly.
pub fn exchanges(arrival_order: &[u64]) -> usize {
    reorder_netsim::capture::count_inversions(arrival_order)
}

/// Non-reversing-order classification (IPPM draft \[8\] / RFC 4737
/// Type-P-Reordered): a packet is reordered iff its sequence value is
/// smaller than one already received. Returns a flag per arrival.
pub fn non_reversing_reordered(arrivals: &[u64]) -> Vec<bool> {
    let mut max_seen: Option<u64> = None;
    arrivals
        .iter()
        .map(|&s| {
            let reordered = max_seen.is_some_and(|m| s < m);
            if !reordered {
                max_seen = Some(s);
            }
            reordered
        })
        .collect()
}

/// RFC-4737-style reordering *extent* of each reordered packet: the
/// distance (in arrivals) back to the earliest arrived packet with a
/// larger sequence value. Ordered packets get extent 0.
pub fn reordering_extents(arrivals: &[u64]) -> Vec<usize> {
    arrivals
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            arrivals[..i]
                .iter()
                .position(|&earlier| earlier > s)
                .map(|j| i - j)
                .unwrap_or(0)
        })
        .collect()
}

/// The Bennett et al. SACK metric \[2\]: the maximum number of SACK blocks
/// a receiver would simultaneously hold while receiving `arrivals`
/// (sequence values, 1 unit apart, starting at `first`). "The number of
/// SACK blocks covering a reordered sequence is highly TCP-dependent" —
/// which is exactly why the paper replaced it — but it is the natural
/// point of comparison.
pub fn max_sack_blocks(arrivals: &[u64], first: u64) -> usize {
    let mut next = first;
    let mut blocks: Vec<(u64, u64)> = Vec::new(); // [start, end) disjoint sorted
    let mut max_blocks = 0;
    for &s in arrivals {
        if s == next {
            next += 1;
            // Coalesce queued blocks the edge reaches.
            while let Some(&(bs, be)) = blocks.first() {
                if bs <= next {
                    next = next.max(be);
                    blocks.remove(0);
                } else {
                    break;
                }
            }
        } else if s > next {
            // Insert [s, s+1) into the block set, merging neighbors.
            let mut merged = (s, s + 1);
            blocks.retain(|&(bs, be)| {
                if be >= merged.0 && bs <= merged.1 {
                    merged.0 = merged.0.min(bs);
                    merged.1 = merged.1.max(be);
                    false
                } else {
                    true
                }
            });
            blocks.push(merged);
            blocks.sort_unstable();
        }
        max_blocks = max_blocks.max(blocks.len());
    }
    max_blocks
}

/// An empirical CDF over reordering rates — Figure 5's presentation.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw values (NaNs rejected).
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| !v.is_nan()), "NaN in CDF input");
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations ≤ `x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// `(value, cumulative_fraction)` steps for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

/// One point of a time-domain reordering profile (Fig. 7).
#[derive(Debug, Clone, Copy)]
pub struct GapPoint {
    /// Inter-packet spacing of the sample pairs.
    pub gap: Duration,
    /// Measured exchange probability at that spacing.
    pub estimate: ReorderEstimate,
}

/// The reordering process as a function of inter-packet time — "strictly
/// more powerful than a traditional summary statistic" (§IV-C).
#[derive(Debug, Clone, Default)]
pub struct GapProfile {
    /// Points in sweep order (ascending gap by construction).
    pub points: Vec<GapPoint>,
}

impl GapProfile {
    /// Add a measured point.
    pub fn push(&mut self, gap: Duration, estimate: ReorderEstimate) {
        self.points.push(GapPoint { gap, estimate });
    }

    /// Linear interpolation of the reordering probability at `gap`.
    /// Panics when the profile is empty; clamps outside the measured
    /// range.
    pub fn interpolate(&self, gap: Duration) -> f64 {
        assert!(!self.points.is_empty(), "empty profile");
        let xs = &self.points;
        if gap <= xs[0].gap {
            return xs[0].estimate.rate();
        }
        if gap >= xs[xs.len() - 1].gap {
            return xs[xs.len() - 1].estimate.rate();
        }
        for w in xs.windows(2) {
            if gap >= w[0].gap && gap <= w[1].gap {
                let x0 = w[0].gap.as_nanos() as f64;
                let x1 = w[1].gap.as_nanos() as f64;
                let x = gap.as_nanos() as f64;
                let y0 = w[0].estimate.rate();
                let y1 = w[1].estimate.rate();
                if x1 == x0 {
                    return y0;
                }
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        unreachable!("windows cover the range");
    }

    /// Predict the exchange probability for a packet pair whose leading
    /// edges are separated by the serialization time of `bytes` at
    /// `bits_per_sec` — the §IV-C argument for why 1500-byte data
    /// packets reorder less than 40-byte probes.
    pub fn predict_for_size(&self, bytes: usize, bits_per_sec: u64) -> f64 {
        self.interpolate(reorder_netsim::serialization_delay(bytes, bits_per_sec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_rate_and_ci() {
        let e = ReorderEstimate::new(10, 100);
        assert!((e.rate() - 0.1).abs() < 1e-12);
        let (lo, hi) = e.wilson_ci(1.96);
        assert!(lo > 0.04 && lo < 0.1, "lo={lo}");
        assert!(hi > 0.1 && hi < 0.19, "hi={hi}");
        // Extremes stay in [0,1].
        let z = ReorderEstimate::new(0, 50).wilson_ci(1.96);
        assert!(z.0 >= 0.0 && z.1 <= 1.0 && z.1 > 0.0);
        let o = ReorderEstimate::new(50, 50).wilson_ci(1.96);
        assert!(o.0 < 1.0 && o.1 == 1.0);
    }

    #[test]
    fn estimate_empty_is_zero() {
        let e = ReorderEstimate::new(0, 0);
        assert_eq!(e.rate(), 0.0);
        assert_eq!(e.wilson_ci(1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "more events than samples")]
    fn estimate_rejects_impossible() {
        ReorderEstimate::new(5, 4);
    }

    #[test]
    fn merge_adds() {
        let a = ReorderEstimate::new(1, 10).merge(&ReorderEstimate::new(2, 5));
        assert_eq!(a, ReorderEstimate::new(3, 15));
    }

    #[test]
    fn exchanges_counts() {
        assert_eq!(exchanges(&[1, 2, 3, 4]), 0);
        assert_eq!(exchanges(&[2, 1]), 1);
        assert_eq!(exchanges(&[1, 3, 2, 4]), 1);
        assert_eq!(exchanges(&[4, 3, 2, 1]), 6);
        assert_eq!(exchanges(&[]), 0);
        assert_eq!(exchanges(&[9]), 0);
    }

    #[test]
    fn non_reversing_flags() {
        assert_eq!(
            non_reversing_reordered(&[1, 2, 4, 3, 5]),
            vec![false, false, false, true, false]
        );
        // A burst advanced past 5; 2,3,4 are all late.
        assert_eq!(
            non_reversing_reordered(&[1, 5, 2, 3, 4]),
            vec![false, false, true, true, true]
        );
    }

    #[test]
    fn extents() {
        assert_eq!(reordering_extents(&[1, 2, 3]), vec![0, 0, 0]);
        // 3 arrives, then 2: extent of 2 is distance back to 3 (1).
        assert_eq!(reordering_extents(&[1, 3, 2]), vec![0, 0, 1]);
        // 5 first, everything after is late by its distance to pos 0.
        assert_eq!(reordering_extents(&[5, 1, 2]), vec![0, 1, 2]);
    }

    #[test]
    fn sack_blocks_simple_swap_needs_one() {
        // Sent 1,2; received 2,1: one block while waiting for 1.
        assert_eq!(max_sack_blocks(&[2, 1], 1), 1);
        // In order: never any blocks.
        assert_eq!(max_sack_blocks(&[1, 2, 3], 1), 0);
    }

    #[test]
    fn sack_blocks_interleaved() {
        // 1,3,5 then 2,4: after 5 arrive blocks {3},{5} = 2 blocks.
        assert_eq!(max_sack_blocks(&[1, 3, 5, 2, 4], 1), 2);
        // Adjacent OOO coalesce: 1,3,4,5,2 → block {3,4,5} only.
        assert_eq!(max_sack_blocks(&[1, 3, 4, 5, 2], 1), 1);
    }

    #[test]
    fn cdf_basics() {
        let c = Cdf::new(vec![0.0, 0.1, 0.1, 0.4]);
        assert_eq!(c.len(), 4);
        assert!((c.fraction_at_most(0.0) - 0.25).abs() < 1e-12);
        assert!((c.fraction_at_most(0.1) - 0.75).abs() < 1e-12);
        assert!((c.fraction_at_most(1.0) - 1.0).abs() < 1e-12);
        assert!((c.fraction_at_most(-0.5) - 0.0).abs() < 1e-12);
        assert!((c.quantile(0.5) - 0.1).abs() < 1e-12);
        assert!((c.quantile(1.0) - 0.4).abs() < 1e-12);
        let pts = c.points();
        assert_eq!(pts.len(), 4);
        assert!((pts[3].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        Cdf::new(vec![f64::NAN]);
    }

    #[test]
    fn profile_interpolates_and_predicts() {
        let mut p = GapProfile::default();
        p.push(Duration::ZERO, ReorderEstimate::new(10, 100)); // 0.10
        p.push(Duration::from_micros(50), ReorderEstimate::new(2, 100)); // 0.02
        p.push(Duration::from_micros(250), ReorderEstimate::new(0, 100)); // 0.00
        assert!((p.interpolate(Duration::ZERO) - 0.10).abs() < 1e-12);
        assert!((p.interpolate(Duration::from_micros(25)) - 0.06).abs() < 1e-12);
        assert!((p.interpolate(Duration::from_micros(500)) - 0.0).abs() < 1e-12);
        // 1500 bytes at 100 Mbit/s = 120 us → between 50 and 250 us.
        let pred = p.predict_for_size(1500, 100_000_000);
        assert!(pred < 0.02 && pred > 0.0);
        // 40-byte probes at the same rate are near back-to-back.
        let small = p.predict_for_size(40, 100_000_000);
        assert!(small > pred, "small packets must reorder more");
    }
}
