//! A closed-loop TCP sender over the simulated network — the evaluation
//! rig for the reordering-robust TCP proposals of the related work
//! (§II: "several researchers have used [existing studies] to justify
//! modifications to TCP designed to better tolerate packet reordering
//! ... Most of these approaches dynamically change the fast retransmit
//! threshold"; the paper argues such projects need exactly the
//! measurements this toolkit produces).
//!
//! The sender implements Reno-style congestion control driven entirely
//! by the acknowledgment stream a [`reorder_tcpstack::TcpHost`]
//! receiver generates: slow start, congestion avoidance, fast
//! retransmit at a configurable (or adaptive) duplicate-ACK threshold,
//! halving on fast retransmit, and a coarse retransmission timeout.
//! Running it across a reordering path measures the §I claim directly:
//! reordering misread as loss halves the window and clamps goodput, and
//! raising/adapting `dupthresh` wins it back.

use crate::probe::{ProbeError, Prober};
use reorder_netsim::SimTime;
use reorder_wire::{Ipv4Addr4, TcpFlags};
use std::time::Duration;

/// Fast-retransmit threshold policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupThresh {
    /// Fixed threshold (standard TCP uses 3).
    Fixed(usize),
    /// Blanton-Allman-style: start at the given value; each time a fast
    /// retransmission is discovered to be spurious, raise the threshold
    /// to the duplicate-ACK count that triggered it plus one.
    Adaptive(usize),
    /// Never fast-retransmit (timeout-only recovery) — the upper bound
    /// a reordering-tolerant sender could reach on a loss-free path.
    Never,
}

/// Sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Bytes to transfer.
    pub bytes: usize,
    /// Segment size.
    pub mss: usize,
    /// Threshold policy.
    pub dupthresh: DupThresh,
    /// Initial congestion window in segments.
    pub initial_cwnd: usize,
    /// Slow-start threshold in segments.
    pub initial_ssthresh: usize,
    /// Retransmission timeout (coarse, fixed — fine for a controlled
    /// path whose RTT is stable).
    pub rto: Duration,
    /// Hard wall-clock limit on the transfer (simulated time).
    pub deadline: Duration,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            bytes: 256 * 1024,
            mss: 1000,
            dupthresh: DupThresh::Fixed(3),
            initial_cwnd: 2,
            initial_ssthresh: 64,
            rto: Duration::from_millis(300),
            deadline: Duration::from_secs(600),
        }
    }
}

/// Transfer outcome.
#[derive(Debug, Clone, Copy)]
pub struct TransferStats {
    /// Bytes acknowledged.
    pub bytes_acked: usize,
    /// Simulated transfer duration.
    pub elapsed: Duration,
    /// Fast retransmissions fired.
    pub fast_retransmits: usize,
    /// Fast retransmissions that were spurious (the "lost" segment had
    /// actually been delivered — detectable here because the receiver's
    /// cumulative ACK after recovery jumps past data we never
    /// re-sent... tracked directly via duplicate delivery accounting).
    pub spurious_retransmits: usize,
    /// Timeout-based retransmissions.
    pub timeouts: usize,
    /// Final duplicate-ACK threshold (interesting for `Adaptive`).
    pub final_dupthresh: usize,
}

impl TransferStats {
    /// Goodput in bits per second of simulated time.
    pub fn goodput_bps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes_acked as f64 * 8.0 / self.elapsed.as_secs_f64()
    }
}

/// Drive a full transfer to `target:port` (which must be a
/// [`reorder_tcpstack::TcpHost`]-style receiver; data to a listening
/// port is ACKed per its stack rules even though the payload is
/// discarded above the HTTP trigger check).
pub fn run_transfer(
    p: &mut Prober,
    target: Ipv4Addr4,
    port: u16,
    cfg: SenderConfig,
) -> Result<TransferStats, ProbeError> {
    let mut conn = p.handshake(target, port, cfg.mss as u16, 65535, Duration::from_secs(2))?;
    let flow = conn.flow;
    let base = conn.snd_nxt;
    let total_segs = cfg.bytes.div_ceil(cfg.mss);
    let seg_len = cfg.mss as u32;

    let mut cwnd = cfg.initial_cwnd as f64;
    let mut ssthresh = cfg.initial_ssthresh as f64;
    let (mut thresh, adaptive) = match cfg.dupthresh {
        DupThresh::Fixed(n) => (n, false),
        DupThresh::Adaptive(n) => (n, true),
        DupThresh::Never => (usize::MAX, false),
    };

    let mut snd_una = 0usize; // segment index of first unacked
    let mut snd_nxt = 0usize; // next new segment index
    let mut dupacks = 0usize;
    let mut fast_retransmits = 0usize;
    let mut spurious = 0usize;
    let mut timeouts = 0usize;
    // Recovery bookkeeping: after a fast retransmit, if the next
    // cumulative ACK advances past *more* than the retransmitted
    // segment without further retransmissions, the original had been
    // delivered and the retransmit was spurious (DSACK-style
    // inference, simplified for a single-retransmit recovery).
    let mut in_recovery: Option<(usize, usize)> = None; // (seg, dupacks at trigger)
    let mut last_progress = p.now();

    let start = p.now();
    let deadline = start + cfg.deadline;

    let seg_seq = |i: usize| base + (i as u32) * seg_len;

    while snd_una < total_segs {
        if p.now() >= deadline {
            break;
        }
        // Fill the window.
        let window = cwnd.floor().max(1.0) as usize;
        while snd_nxt < total_segs && snd_nxt - snd_una < window {
            let data = vec![(snd_nxt % 251) as u8; cfg.mss];
            let pkt = p
                .tcp_pkt(&conn)
                .seq(seg_seq(snd_nxt))
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .data(data)
                .build();
            p.send(pkt);
            snd_nxt += 1;
        }
        // Await an ACK (or run into the RTO).
        let ack_pkt = p.recv_where(
            |pkt| {
                pkt.flow() == Some(flow.reversed())
                    && pkt.tcp().is_some_and(|t| {
                        t.flags.contains(TcpFlags::ACK)
                            && !t.flags.intersects(TcpFlags::SYN | TcpFlags::RST)
                    })
            },
            cfg.rto,
        );
        match ack_pkt {
            Some(r) => {
                let ack = r.pkt.tcp().expect("tcp").ack;
                let acked_segs = ((ack - base) / seg_len as i32).max(0) as usize;
                if acked_segs > snd_una {
                    // New data acknowledged.
                    if let Some((seg, trigger_dups)) = in_recovery.take() {
                        // If the ACK jumped beyond the retransmitted
                        // segment immediately, everything (including
                        // the original) had arrived: spurious.
                        if acked_segs > seg + 1 {
                            spurious += 1;
                            if adaptive {
                                thresh = (trigger_dups + 1).max(thresh);
                            }
                        }
                    }
                    snd_una = acked_segs;
                    // After a go-back-N rewind, a retransmission that
                    // plugs a hole can coalesce with queued segments and
                    // jump the cumulative ACK past the rewound send
                    // point; never send below snd_una again.
                    snd_nxt = snd_nxt.max(snd_una);
                    dupacks = 0;
                    last_progress = p.now();
                    if cwnd < ssthresh {
                        cwnd += 1.0; // slow start
                    } else {
                        cwnd += 1.0 / cwnd; // congestion avoidance
                    }
                } else if snd_nxt > snd_una {
                    // Duplicate ACK.
                    dupacks += 1;
                    if dupacks >= thresh && in_recovery.is_none() {
                        // Fast retransmit of the first unacked segment.
                        fast_retransmits += 1;
                        in_recovery = Some((snd_una, dupacks));
                        ssthresh = (cwnd / 2.0).max(2.0);
                        cwnd = ssthresh;
                        let data = vec![(snd_una % 251) as u8; cfg.mss];
                        let pkt = p
                            .tcp_pkt(&conn)
                            .seq(seg_seq(snd_una))
                            .ack(conn.rcv_nxt)
                            .flags(TcpFlags::ACK)
                            .data(data)
                            .build();
                        p.send(pkt);
                        dupacks = 0;
                    }
                }
            }
            None => {
                // RTO fired with nothing in flight acked recently.
                if p.now().since(last_progress) >= cfg.rto && snd_una < snd_nxt {
                    timeouts += 1;
                    in_recovery = None;
                    ssthresh = (cwnd / 2.0).max(2.0);
                    cwnd = cfg.initial_cwnd as f64;
                    snd_nxt = snd_una; // go-back-N from the hole
                    dupacks = 0;
                    last_progress = p.now();
                }
            }
        }
    }
    let elapsed = p.now().since(start);
    p.close(&mut conn, Duration::from_secs(1));
    Ok(TransferStats {
        bytes_acked: (snd_una * cfg.mss).min(cfg.bytes),
        elapsed,
        fast_retransmits,
        spurious_retransmits: spurious,
        timeouts,
        final_dupthresh: thresh,
    })
}

/// Convenience: elapsed simulated time guard for tests.
pub fn sim_elapsed(start: SimTime, p: &Prober) -> Duration {
    p.now().since(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use reorder_tcpstack::{DelayedAck, HostPersonality};

    /// Receiver that ACKs every segment. A delaying receiver stalls
    /// 200 ms whenever the in-flight parity leaves one segment pending
    /// (the classic odd-window/delayed-ACK interaction), which swamps
    /// the congestion-control effects these tests compare.
    fn eager_receiver() -> HostPersonality {
        HostPersonality {
            delayed_ack: DelayedAck::disabled(),
            ..HostPersonality::freebsd4()
        }
    }

    fn transfer(fwd_swap: f64, rev_swap: f64, policy: DupThresh, seed: u64) -> TransferStats {
        let mut sc = scenario::validation_rig_with(fwd_swap, rev_swap, eager_receiver(), seed);
        let cfg = SenderConfig {
            bytes: 64 * 1024,
            dupthresh: policy,
            ..SenderConfig::default()
        };
        run_transfer(&mut sc.prober, sc.target, 80, cfg).expect("transfer")
    }

    #[test]
    fn clean_path_completes_without_retransmits() {
        let s = transfer(0.0, 0.0, DupThresh::Fixed(3), 1);
        assert_eq!(s.bytes_acked, 64 * 1024);
        assert_eq!(s.fast_retransmits, 0);
        assert_eq!(s.timeouts, 0);
        assert!(s.goodput_bps() > 1e6, "goodput {}", s.goodput_bps());
    }

    #[test]
    fn reordering_causes_spurious_fast_retransmits_at_thresh_one() {
        // dupthresh=1 misfires on every exchange.
        let s = transfer(0.3, 0.0, DupThresh::Fixed(1), 2);
        assert_eq!(s.bytes_acked, 64 * 1024);
        assert!(s.fast_retransmits > 5, "{s:?}");
        assert!(s.spurious_retransmits > 0, "{s:?}");
    }

    #[test]
    fn higher_threshold_restores_goodput() {
        let low = transfer(0.3, 0.0, DupThresh::Fixed(1), 3);
        let never = transfer(0.3, 0.0, DupThresh::Never, 3);
        assert!(
            never.goodput_bps() > low.goodput_bps(),
            "never {} <= low {}",
            never.goodput_bps(),
            low.goodput_bps()
        );
        assert_eq!(never.fast_retransmits, 0);
    }

    #[test]
    fn adaptive_threshold_converges_and_beats_static() {
        let fixed = transfer(0.3, 0.0, DupThresh::Fixed(1), 4);
        let adaptive = transfer(0.3, 0.0, DupThresh::Adaptive(1), 4);
        assert!(
            adaptive.final_dupthresh > 1,
            "adaptive threshold must rise: {adaptive:?}"
        );
        assert!(adaptive.spurious_retransmits <= fixed.spurious_retransmits);
    }

    #[test]
    fn deadline_bounds_pathological_paths() {
        // Heavy loss without working retransmission limits: still ends.
        let mut sc = scenario::lossy_rig(0.4, 0.4, 5);
        let cfg = SenderConfig {
            bytes: 32 * 1024,
            deadline: Duration::from_secs(5),
            ..SenderConfig::default()
        };
        let s = run_transfer(&mut sc.prober, sc.target, 80, cfg);
        if let Ok(s) = s {
            assert!(s.elapsed <= Duration::from_secs(6));
        } // handshake failure under 40% loss is also acceptable
    }
}
