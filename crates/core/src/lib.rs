//! # reorder-core
//!
//! A faithful reimplementation of the single-ended packet-reordering
//! measurement techniques of **"Measuring Packet Reordering"**
//! (J. Bellardo & S. Savage, IMC 2002), running against the
//! deterministic network simulator in `reorder-netsim` and the
//! personality-rich TCP endpoints in `reorder-tcpstack`.
//!
//! ## The techniques
//!
//! All four estimate *one-way* reordering between a probe host and an
//! arbitrary TCP server, with no software on the remote end:
//!
//! * [`techniques::SingleConnectionTest`] (§III-B) — a sequence hole
//!   plus two straddling 1-byte segments; the ACK pattern encodes both
//!   directions. The reversed variant defeats delayed ACKs.
//! * [`techniques::DualConnectionTest`] (§III-C) — two connections, one
//!   out-of-order probe each; the remote's global IPID counter
//!   timestamps the replies. [`techniques::IpidValidator`] rejects
//!   hosts with random/zero IPIDs or load-balanced connection splits.
//! * [`techniques::SynTest`] (§III-D) — pairs of SYNs differing only in
//!   sequence number; immune to per-flow load balancers.
//! * [`techniques::DataTransferTest`] (§III-E) — the baseline: watch a
//!   clamped HTTP transfer's sequence numbers (reverse path only).
//!
//! ## The metric
//!
//! The probability that a pair of test packets is *exchanged*, reported
//! per direction and — the paper's key generalization — as a function
//! of the inter-packet gap ([`metrics::GapProfile`], §IV-C).
//!
//! ## Quick start
//!
//! Every technique sits behind the [`measurer::Technique`] trait;
//! dispatch goes through [`measurer::technique`] (or the full
//! [`measurer::registry`]), keyed by [`TestKind`] — which parses from
//! and prints as its command-line spelling. A [`measurer::Session`]
//! holds the conversation with one target, and the [`Measurer`]
//! builder folds a whole plan (technique + baseline + gap sweep) into
//! one [`Measurement`] report:
//!
//! ```
//! use reorder_core::{Measurer, Session, TestKind};
//! use reorder_core::scenario;
//!
//! // A controlled path that swaps 10% of adjacent forward pairs.
//! let mut sc = scenario::validation_rig(0.10, 0.0, 42);
//! // Reuse: amenability probe, measurement and baseline share
//! // handshakes (the survey engine's per-host fast path).
//! let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
//! let report = Measurer::new(TestKind::DualConnection)
//!     .with_samples(50)
//!     .with_baseline(true)
//!     .run(&mut session)
//!     .expect("measurement");
//! assert!(report.fwd.rate() > 0.0 && report.fwd.rate() < 0.35);
//! assert!(report.baseline_rev.is_some());
//! ```
//!
//! The pre-0.2 per-struct `run()`/`probe_amenability()` methods were
//! deprecated in 0.2.0 and removed in 0.3.0; the [`Technique`] trait,
//! [`technique`] factory and [`Measurer`] builder are the only
//! dispatch points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod budget;
pub mod impact;
pub mod jsonx;
pub mod measurer;
pub mod metrics;
pub mod probe;
pub mod rfc4737;
pub mod sample;
pub mod scenario;
pub mod sender;
pub mod stats;
pub mod techniques;
pub mod telemetry;
pub mod validate;

pub use budget::{Budget, HostErrorKind};
pub use measurer::{
    registry, technique, Measurement, Measurer, Requirements, Session, SessionStats, Technique,
};
pub use probe::{ClientConn, ProbeError, Prober};
pub use sample::{MeasurementRun, Order, SampleOutcome, TestConfig};
pub use techniques::{
    DataTransferTest, DualConnectionTest, IpidValidator, IpidVerdict, SingleConnectionTest,
    SynTest, TestKind, UnknownTestKind,
};
