//! The prior-art baselines of §II, implemented for comparison:
//!
//! * **Bennett et al.** \[2\] — bursts of ICMP echo requests; reordering
//!   judged from the order of the echo replies. Cannot attribute an
//!   exchange to the forward or reverse path, and falls apart when ICMP
//!   is filtered or rate-limited.
//! * **Paxson** \[10\] — passive analysis of the TCP sequence numbers in
//!   a data transfer's packet trace. Unidirectional, but entangled with
//!   TCP's own sending dynamics and requiring (in the real world)
//!   cooperation from both endpoints; here we reuse the Data Transfer
//!   Test's machinery and report the session-level statistics Paxson
//!   reported.

use crate::metrics::{self, ReorderEstimate};
use crate::probe::{ProbeError, Prober};
use crate::sample::TestConfig;
use crate::techniques::DataTransferTest;
use reorder_wire::{Ipv4Addr4, PacketBuilder};
use std::time::Duration;

/// Result of one ICMP burst (Bennett-style).
#[derive(Debug, Clone)]
pub struct IcmpBurstResult {
    /// Echo sequence numbers in reply arrival order.
    pub arrival_order: Vec<u16>,
    /// Requests sent.
    pub sent: usize,
    /// Replies received.
    pub received: usize,
}

impl IcmpBurstResult {
    /// Did the burst see at least one reordering event? (The metric
    /// Bennett et al. report for 5-packet bursts.)
    pub fn any_reordered(&self) -> bool {
        self.exchanges() > 0
    }

    /// Round-trip exchange count. Note the inherent ambiguity the paper
    /// criticizes: an exchange may have happened on the request path,
    /// the reply path, or both — this number cannot say.
    pub fn exchanges(&self) -> usize {
        let seq: Vec<u64> = self.arrival_order.iter().map(|&s| u64::from(s)).collect();
        metrics::exchanges(&seq)
    }

    /// The SACK-block metric of Bennett et al.: how many SACK ranges a
    /// TCP receiver would have needed to describe this arrival order.
    pub fn sack_blocks(&self) -> usize {
        let seq: Vec<u64> = self.arrival_order.iter().map(|&s| u64::from(s)).collect();
        metrics::max_sack_blocks(&seq, seq.iter().copied().min().unwrap_or(0))
    }
}

/// Bennett-style ICMP burst prober.
#[derive(Debug, Clone)]
pub struct IcmpBurstTest {
    /// Packets per burst (Bennett et al. used 5 and 100).
    pub burst: usize,
    /// Payload size per request (their experiments: 56 and 512 bytes).
    pub payload: usize,
    /// Gap between requests within a burst.
    pub gap: Duration,
    /// How long to wait for stragglers after the burst.
    pub collect_timeout: Duration,
}

impl Default for IcmpBurstTest {
    fn default() -> Self {
        IcmpBurstTest {
            burst: 5,
            payload: 56,
            gap: Duration::ZERO,
            collect_timeout: Duration::from_millis(900),
        }
    }
}

impl IcmpBurstTest {
    /// Fire one burst at `target` and collect replies.
    pub fn run_burst(
        &self,
        p: &mut Prober,
        target: Ipv4Addr4,
        ident: u16,
    ) -> Result<IcmpBurstResult, ProbeError> {
        p.flush();
        for i in 0..self.burst {
            let ipid = p.alloc_ipid();
            let pkt = PacketBuilder::icmp_echo(ident, i as u16)
                .src(p.local_addr, 0)
                .dst(target, 0)
                .ipid(ipid)
                .data(vec![0xA5; self.payload])
                .build();
            p.send(pkt);
            if !self.gap.is_zero() {
                p.run_for(self.gap);
            }
        }
        let local = p.local_addr;
        let replies = p.recv_n_where(
            move |pkt| {
                pkt.ip.dst == local
                    && pkt.icmp().is_some_and(|h| {
                        h.icmp_type == reorder_wire::IcmpType::EchoReply && h.ident == ident
                    })
            },
            self.burst,
            self.collect_timeout,
        );
        if replies.is_empty() {
            return Err(ProbeError::HostUnsuitable(
                "no ICMP echo replies (filtered?)".to_string(),
            ));
        }
        Ok(IcmpBurstResult {
            arrival_order: replies
                .iter()
                .map(|r| r.pkt.icmp().expect("icmp").seq)
                .collect(),
            sent: self.burst,
            received: replies.len(),
        })
    }

    /// Run `bursts` bursts and estimate the fraction with ≥ 1 exchange
    /// (the headline Bennett number: "for bursts of five 56-byte packets
    /// ... over 90 percent saw at least one reordering event").
    pub fn run(
        &self,
        p: &mut Prober,
        target: Ipv4Addr4,
        bursts: usize,
        pace: Duration,
    ) -> Result<ReorderEstimate, ProbeError> {
        let mut with_event = 0;
        let mut completed = 0;
        for b in 0..bursts {
            p.run_for(pace);
            match self.run_burst(p, target, 0x4000 + b as u16) {
                Ok(res) => {
                    completed += 1;
                    if res.any_reordered() {
                        with_event += 1;
                    }
                }
                Err(ProbeError::HostUnsuitable(e)) => return Err(ProbeError::HostUnsuitable(e)),
                Err(_) => {}
            }
        }
        Ok(ReorderEstimate::new(with_event, completed))
    }
}

/// Paxson-style passive session statistics from one observed transfer.
#[derive(Debug, Clone)]
pub struct PaxsonSessionStats {
    /// Data packets observed.
    pub packets: usize,
    /// Packets flagged reordered by the non-reversing-sequence rule.
    pub reordered_packets: usize,
    /// Whether the session had any reordering event.
    pub any_event: bool,
}

impl PaxsonSessionStats {
    /// Fraction of packets delivered out of order.
    pub fn packet_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.reordered_packets as f64 / self.packets as f64
        }
    }
}

/// Run one Paxson-style observation: perform a TCP transfer and apply
/// the trace-analysis rule to the arrival sequence. (Paxson reported,
/// across sessions: the fraction of sessions with ≥ 1 event, and the
/// fraction of packets reordered.)
pub fn paxson_session(
    p: &mut Prober,
    target: Ipv4Addr4,
    port: u16,
) -> Result<PaxsonSessionStats, ProbeError> {
    let run = crate::measurer::Technique::execute(
        &DataTransferTest::new(TestConfig::default()),
        &mut crate::measurer::Session::new(p, target, port),
    )?;
    // Reconstruct the arrival sequence from the pairwise samples: the
    // first element of each pair plus the final pair's second element.
    let mut arrivals: Vec<u64> = Vec::with_capacity(run.samples.len() + 1);
    for (i, s) in run.samples.iter().enumerate() {
        let rev = s.forensics.rev.as_ref().expect("transfer samples have rev");
        // Samples store (min, max); recover arrival order from verdict.
        let (first, second) = if s.outcome.rev == crate::sample::Order::Reordered {
            (rev[1].seq.expect("seq"), rev[0].seq.expect("seq"))
        } else {
            (rev[0].seq.expect("seq"), rev[1].seq.expect("seq"))
        };
        if i == 0 {
            arrivals.push(u64::from(first.raw()));
        }
        arrivals.push(u64::from(second.raw()));
    }
    let flags = metrics::non_reversing_reordered(&arrivals);
    let reordered = flags.iter().filter(|&&f| f).count();
    Ok(PaxsonSessionStats {
        packets: arrivals.len(),
        reordered_packets: reordered,
        any_event: reordered > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn icmp_burst_on_clean_path_sees_nothing() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 100);
        let est = IcmpBurstTest::default()
            .run(&mut sc.prober, sc.target, 20, Duration::from_millis(5))
            .expect("run");
        assert_eq!(est.reordered, 0);
        assert_eq!(est.total, 20);
    }

    #[test]
    fn icmp_burst_sees_swaps_but_cannot_attribute() {
        // Forward-only swaps...
        let mut sc = scenario::validation_rig(0.5, 0.0, 101);
        let fwd_only = IcmpBurstTest::default()
            .run(&mut sc.prober, sc.target, 30, Duration::from_millis(5))
            .expect("run");
        // ...and reverse-only swaps...
        let mut sc = scenario::validation_rig(0.0, 0.5, 102);
        let rev_only = IcmpBurstTest::default()
            .run(&mut sc.prober, sc.target, 30, Duration::from_millis(5))
            .expect("run");
        // ...both show up, indistinguishably (the §II criticism).
        assert!(fwd_only.rate() > 0.3, "fwd {:?}", fwd_only);
        assert!(rev_only.rate() > 0.3, "rev {:?}", rev_only);
    }

    #[test]
    fn icmp_filtered_host_unusable() {
        let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::hardened(), 103);
        let err = IcmpBurstTest::default()
            .run(&mut sc.prober, sc.target, 3, Duration::from_millis(5))
            .unwrap_err();
        assert!(matches!(err, ProbeError::HostUnsuitable(_)));
    }

    #[test]
    fn burst_metrics() {
        let r = IcmpBurstResult {
            arrival_order: vec![0, 2, 1, 3, 4],
            sent: 5,
            received: 5,
        };
        assert!(r.any_reordered());
        assert_eq!(r.exchanges(), 1);
        assert_eq!(r.sack_blocks(), 1);
        let clean = IcmpBurstResult {
            arrival_order: vec![0, 1, 2],
            sent: 5,
            received: 3,
        };
        assert!(!clean.any_reordered());
        assert_eq!(clean.sack_blocks(), 0);
    }

    #[test]
    fn paxson_session_counts_events() {
        let mut sc = scenario::validation_rig(0.0, 0.3, 104);
        let stats = paxson_session(&mut sc.prober, sc.target, 80).expect("session");
        assert!(stats.packets >= 60);
        assert!(stats.any_event);
        assert!(stats.packet_rate() > 0.02);
        // Clean path: no events.
        let mut sc = scenario::validation_rig(0.0, 0.0, 105);
        let stats = paxson_session(&mut sc.prober, sc.target, 80).expect("session");
        assert!(!stats.any_event);
        assert_eq!(stats.packet_rate(), 0.0);
    }
}
