//! Zero-dependency campaign telemetry: monotonic counters and span
//! timers behind a runtime [`TelemetryMode`], accumulated into a
//! [`WorkerTelemetry`] that is an exactly mergeable monoid.
//!
//! The design borrows the aggregation layer's contract wholesale:
//! telemetry state is integer counters plus [`Moments`] /
//! [`QuantileSketch`] accumulators, all of which merge associatively
//! and commutatively down to the last bit. Each campaign worker owns
//! one [`WorkerTelemetry`]; any partitioning of the same observations
//! across workers merges to identical state, so a metrics document is
//! independent of the worker count and steal schedule — the same law
//! `ShardAggregator` obeys for campaign results.
//!
//! Cost contract: with [`TelemetryMode::Off`] nothing is measured — a
//! [`TelemetryMode::start`] is a branch returning an empty
//! [`Stopwatch`], never a clock syscall, and recording an empty
//! stopwatch is another branch. `Summary` records counters and span
//! moments (one `Instant::now` pair per span); `Full` additionally
//! feeds every span duration into a [`QuantileSketch`] for latency
//! distributions. Wall-clock durations are inherently nondeterministic,
//! so they live only in telemetry output — never in campaign reports,
//! whose bytes stay pinned regardless of mode.

use crate::jsonx;
use crate::stats::{Moments, QuantileSketch};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Intern a dynamic label as `&'static str` — the checkpoint-restore
/// path for telemetry and aggregate maps, whose keys are static by
/// construction everywhere else. Each distinct label leaks exactly
/// once (deduplicated through a global set), so memory growth is
/// bounded by the label vocabulary, which is finite: restored
/// documents carry only labels some build emitted.
pub fn intern_label(label: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("label interner poisoned");
    match set.get(label) {
        Some(&interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// How much the telemetry layer measures. Runtime-selected (the CLI's
/// `--telemetry`), default [`TelemetryMode::Off`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Measure nothing. The instrumented code paths reduce to a few
    /// well-predicted branches; no clock is read.
    #[default]
    Off,
    /// Counters plus per-span count/mean/stddev ([`Moments`]).
    Summary,
    /// Everything in `Summary`, plus a [`QuantileSketch`] latency
    /// distribution per span label.
    Full,
}

impl TelemetryMode {
    /// Every accepted spelling, for error messages and usage text.
    pub const ACCEPTED: [&'static str; 3] = ["off", "summary", "full"];

    /// Exhaustive, case-sensitive parse; the error lists the accepted
    /// set.
    pub fn parse(name: &str) -> Result<TelemetryMode, String> {
        match name {
            "off" => Ok(TelemetryMode::Off),
            "summary" => Ok(TelemetryMode::Summary),
            "full" => Ok(TelemetryMode::Full),
            other => Err(format!(
                "unknown telemetry mode `{other}` (accepted: {})",
                TelemetryMode::ACCEPTED.join(", ")
            )),
        }
    }

    /// Whether anything is measured at all.
    pub fn is_enabled(self) -> bool {
        self != TelemetryMode::Off
    }

    /// Start timing a span: reads the clock when enabled, otherwise
    /// returns an empty [`Stopwatch`] without any syscall.
    pub fn start(self) -> Stopwatch {
        if self.is_enabled() {
            // reorder-lint: allow(wall-clock, span timing is observability-only; telemetry never feeds report bytes — proven by the pinned-hash determinism suite)
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }
}

impl fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Summary => "summary",
            TelemetryMode::Full => "full",
        })
    }
}

/// A started (or deliberately empty) span timer — the value
/// [`TelemetryMode::start`] hands out. Copyable and inert: dropping it
/// records nothing; hand it to [`WorkerTelemetry::span`] to record.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// A stopwatch that never ran (what [`TelemetryMode::Off`] hands
    /// out); recording it is a no-op.
    pub fn empty() -> Stopwatch {
        Stopwatch(None)
    }

    /// Seconds since [`TelemetryMode::start`], or `None` for an empty
    /// stopwatch.
    pub fn elapsed_secs(self) -> Option<f64> {
        self.0.map(|t| t.elapsed().as_secs_f64())
    }
}

/// Mergeable duration statistics for one span label: count, mean and
/// stddev via [`Moments`] (seconds), plus a [`QuantileSketch`] latency
/// distribution populated in [`TelemetryMode::Full`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Span durations in seconds (count / mean / stddev).
    pub secs: Moments,
    /// Latency distribution (empty unless recorded under `Full`).
    pub sketch: QuantileSketch,
}

impl SpanStats {
    /// Fold in one span duration.
    pub fn record(&mut self, mode: TelemetryMode, secs: f64) {
        self.secs.push(secs);
        if mode == TelemetryMode::Full {
            self.sketch.push(secs);
        }
    }

    /// Spans recorded.
    pub fn count(&self) -> u64 {
        self.secs.count()
    }

    /// Total seconds across recorded spans.
    pub fn total_secs(&self) -> f64 {
        self.secs.mean() * self.secs.count() as f64
    }

    /// Combine two accumulators — exactly associative and commutative
    /// ([`Moments::merge`] / [`QuantileSketch::merge`]).
    pub fn merge(&mut self, other: &SpanStats) {
        self.secs = self.secs.merge(&other.secs);
        self.sketch.merge(&other.sketch);
    }

    /// Serialize the exact accumulator state (integer fixed-point
    /// moments plus sketch buckets) — the checkpoint form, distinct
    /// from the rounded display document in `WorkerTelemetry::to_json`.
    pub fn state_json(&self) -> String {
        format!(
            "{{\"secs\":{},\"sketch\":{}}}",
            self.secs.to_json(),
            self.sketch.to_json()
        )
    }

    /// Parse a [`SpanStats::state_json`] document back bit-exactly.
    pub fn from_state_json(text: &str) -> Result<SpanStats, String> {
        Ok(SpanStats {
            secs: Moments::from_json(jsonx::field(text, "secs")?)?,
            sketch: QuantileSketch::from_json(jsonx::field(text, "sketch")?)?,
        })
    }
}

/// One worker's telemetry: monotonic counters and per-label span
/// statistics, both keyed by `&'static str` labels. An exactly
/// mergeable monoid: [`WorkerTelemetry::new`] is the identity and
/// [`WorkerTelemetry::merge`] is associative and commutative, so any
/// partition of observations across workers merges to identical state
/// (asserted by `tests/prop_telemetry.rs`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl WorkerTelemetry {
    /// The empty telemetry state (the monoid identity).
    pub fn new() -> Self {
        WorkerTelemetry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty()
    }

    /// Add `n` to the monotonic counter `key`. Zero-valued adds still
    /// materialize the counter, so a document always carries the full
    /// key set its producer observed.
    pub fn count(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Current value of counter `key` (0 when never counted).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All span statistics, in key order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStats)> + '_ {
        self.spans.iter().map(|(&k, v)| (k, v))
    }

    /// Span statistics for `key`, when any were recorded.
    pub fn span_stats(&self, key: &str) -> Option<&SpanStats> {
        self.spans.get(key)
    }

    /// Record a finished span: a no-op for an empty stopwatch (the
    /// `Off`-mode fast path — one branch, no map lookup).
    pub fn span(&mut self, key: &'static str, mode: TelemetryMode, sw: Stopwatch) {
        if let Some(secs) = sw.elapsed_secs() {
            self.record_span(key, mode, secs);
        }
    }

    /// Fold an explicit span duration (seconds) into `key` — the
    /// testable core of [`WorkerTelemetry::span`].
    pub fn record_span(&mut self, key: &'static str, mode: TelemetryMode, secs: f64) {
        self.spans.entry(key).or_default().record(mode, secs);
    }

    /// Absorb another worker's telemetry. Counters add; span stats
    /// merge via [`SpanStats::merge`]. Exactly associative and
    /// commutative with [`WorkerTelemetry::new`] as identity.
    pub fn merge(&mut self, other: &WorkerTelemetry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, s) in &other.spans {
            self.spans.entry(k).or_default().merge(s);
        }
    }

    /// Hand-rolled JSON object: `{"counters":{...},"spans":{...}}`.
    /// Keys are emitted in sorted order and floats with fixed
    /// 9-decimal precision, so equal state renders equal bytes — the
    /// schema golden test pins this format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"total_s\":{:.9},\"mean_s\":{:.9},\"stddev_s\":{:.9}",
                s.count(),
                s.total_secs(),
                s.secs.mean(),
                s.secs.stddev()
            ));
            if s.sketch.count() > 0 {
                for (label, q) in [("p50_s", 0.5), ("p90_s", 0.9), ("p99_s", 0.99)] {
                    if let Some(v) = s.sketch.quantile(q) {
                        out.push_str(&format!(",\"{label}\":{v:.9}"));
                    }
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Serialize the exact telemetry state for checkpoints. Unlike the
    /// display document [`WorkerTelemetry::to_json`] (whose floats are
    /// rounded to 9 decimals and golden-pinned), this emits the raw
    /// integer accumulator state and round-trips bit-exactly through
    /// [`WorkerTelemetry::from_state_json`]: merging restored state
    /// equals merging the originals.
    pub fn state_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{}", s.state_json()));
        }
        out.push_str("}}");
        out
    }

    /// Parse a [`WorkerTelemetry::state_json`] document back into the
    /// exact state, interning restored labels via [`intern_label`].
    /// Rejects malformed documents rather than defaulting fields.
    pub fn from_state_json(text: &str) -> Result<WorkerTelemetry, String> {
        let mut tel = WorkerTelemetry::new();
        for elem in jsonx::elements(jsonx::field(text, "counters")?)? {
            let (key, val) = jsonx::member(elem)?;
            let n: u64 = val.parse().map_err(|_| format!("bad counter `{key}`"))?;
            tel.counters.insert(intern_label(key), n);
        }
        for elem in jsonx::elements(jsonx::field(text, "spans")?)? {
            let (key, val) = jsonx::member(elem)?;
            tel.spans
                .insert(intern_label(key), SpanStats::from_state_json(val)?);
        }
        Ok(tel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_round_trips() {
        for name in TelemetryMode::ACCEPTED {
            let mode = TelemetryMode::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(mode.to_string(), name);
        }
        let err = TelemetryMode::parse("verbose").unwrap_err();
        for name in TelemetryMode::ACCEPTED {
            assert!(err.contains(name), "error must list `{name}`: {err}");
        }
    }

    #[test]
    fn off_mode_stopwatch_is_empty() {
        let sw = TelemetryMode::Off.start();
        assert!(sw.elapsed_secs().is_none());
        let mut tel = WorkerTelemetry::new();
        tel.span("host", TelemetryMode::Off, sw);
        assert!(tel.is_empty(), "Off must record nothing");
    }

    #[test]
    fn summary_records_moments_not_sketch() {
        let mut tel = WorkerTelemetry::new();
        tel.record_span("host", TelemetryMode::Summary, 0.25);
        tel.record_span("host", TelemetryMode::Summary, 0.75);
        let s = tel.span_stats("host").expect("recorded");
        assert_eq!(s.count(), 2);
        assert!((s.secs.mean() - 0.5).abs() < 1e-12);
        assert_eq!(s.sketch.count(), 0, "sketch is Full-only");
    }

    #[test]
    fn full_feeds_the_sketch() {
        let mut tel = WorkerTelemetry::new();
        for i in 1..=100 {
            tel.record_span("measure", TelemetryMode::Full, i as f64 * 1e-3);
        }
        let s = tel.span_stats("measure").expect("recorded");
        assert_eq!(s.sketch.count(), 100);
        // Zero-based rank round(0.5·99) = 50 → the 51st value, 51ms,
        // within the sketch's 0.39% relative error.
        let p50 = s.sketch.quantile(0.5).expect("non-empty");
        assert!((p50 - 0.051).abs() / 0.051 < 0.01, "p50 ≈ 51ms, got {p50}");
    }

    #[test]
    fn counters_add_and_merge() {
        let mut a = WorkerTelemetry::new();
        a.count("netsim.events", 10);
        a.count("netsim.events", 5);
        let mut b = WorkerTelemetry::new();
        b.count("netsim.events", 7);
        b.count("pool.hits", 3);
        a.merge(&b);
        assert_eq!(a.counter("netsim.events"), 22);
        assert_eq!(a.counter("pool.hits"), 3);
        assert_eq!(a.counter("absent"), 0);
    }

    #[test]
    fn live_stopwatch_records_a_span() {
        let mode = TelemetryMode::Summary;
        let sw = mode.start();
        let mut tel = WorkerTelemetry::new();
        tel.span("host", mode, sw);
        let s = tel.span_stats("host").expect("recorded");
        assert_eq!(s.count(), 1);
        assert!(s.secs.mean() >= 0.0);
    }

    #[test]
    fn state_json_round_trips_exactly() {
        let mut tel = WorkerTelemetry::new();
        tel.count("netsim.events", 12345);
        tel.count("pool.hits", 0);
        for i in 0..50 {
            tel.record_span("host", TelemetryMode::Full, 0.001 + i as f64 * 1e-4);
            tel.record_span("measure", TelemetryMode::Summary, 0.3125 * (i + 1) as f64);
        }
        let restored = WorkerTelemetry::from_state_json(&tel.state_json())
            .expect("state_json must parse back");
        assert_eq!(restored, tel, "state round-trip must be bit-exact");
        assert_eq!(restored.state_json(), tel.state_json());
    }

    #[test]
    fn state_json_rejects_malformed_documents() {
        assert!(WorkerTelemetry::from_state_json("{}").is_err());
        assert!(WorkerTelemetry::from_state_json("{\"counters\":{\"k\":x},\"spans\":{}}").is_err());
        assert!(
            WorkerTelemetry::from_state_json("{\"counters\":{},\"spans\":{\"k\":{}}}").is_err(),
            "span without accumulators must be rejected"
        );
    }

    #[test]
    fn intern_label_dedupes() {
        let a = intern_label("campaign.test.label");
        let b = intern_label(&String::from("campaign.test.label"));
        assert!(std::ptr::eq(a, b), "same label must intern to one slice");
    }

    #[test]
    fn json_shape_is_stable() {
        let mut tel = WorkerTelemetry::new();
        tel.count("pool.hits", 2);
        tel.record_span("host", TelemetryMode::Summary, 0.5);
        let json = tel.to_json();
        assert!(json.starts_with("{\"counters\":{\"pool.hits\":2}"));
        assert!(json.contains("\"spans\":{\"host\":{\"count\":1,"));
        assert!(json.contains("\"total_s\":0.500000000"));
        assert!(!json.contains("p50_s"), "no quantiles without a sketch");
    }
}
