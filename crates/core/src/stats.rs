//! Descriptive statistics and the paired-difference test of §IV-B.
//!
//! "We compute a standard pair-difference test statistic [Jain, *The Art
//! of Computer Systems Performance Analysis*] for each host, comparing
//! the results of each pair of tests. The null hypothesis is that the
//! difference between tests can be explained purely in terms of
//! intra-test variability."

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for n < 2).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Two-sided critical value of the standard normal for the given
/// confidence level. Only the levels used by the experiments are
/// tabulated; anything else panics loudly rather than silently
/// approximating.
pub fn z_critical(confidence: f64) -> f64 {
    // (confidence, z)
    const TABLE: &[(f64, f64)] = &[
        (0.90, 1.6449),
        (0.95, 1.9600),
        (0.99, 2.5758),
        (0.995, 2.8070),
        (0.999, 3.2905),
    ];
    for &(c, z) in TABLE {
        if (confidence - c).abs() < 1e-9 {
            return z;
        }
    }
    panic!("untabulated confidence level {confidence}");
}

/// Online (single-pass) mean/variance accumulator — Welford's
/// algorithm. Lets a campaign aggregate per-host statistics in O(1)
/// memory per series instead of retaining every observation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Streaming {
    /// Empty accumulator.
    pub fn new() -> Self {
        Streaming::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty, matching [`mean`]).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2, matching [`variance`]).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Normal-approximation confidence interval for the mean at a
    /// tabulated `confidence` level (see [`z_critical`]).
    pub fn ci(&self, confidence: f64) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 0.0);
        }
        let se = self.stddev() / (self.n as f64).sqrt();
        let z = z_critical(confidence);
        (self.mean - z * se, self.mean + z * se)
    }

    /// Combine two accumulators (Chan et al. parallel update). The
    /// in-process campaign engine absorbs reports in host-id order and
    /// doesn't need it; this is the merge operation for cross-process
    /// sharding (concatenating independently aggregated shards — see
    /// the ROADMAP `--shard K/N` item).
    pub fn merge(&self, other: &Streaming) -> Streaming {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        Streaming { n, mean, m2 }
    }
}

/// Mantissa bits per octave sub-bucket of [`QuantileSketch`]: 2^7 =
/// 128 log-spaced buckets per power of two.
const SKETCH_SUB_BITS: u32 = 7;

/// Worst-case relative error of a [`QuantileSketch`] quantile: a
/// bucket spans a relative width of 2^-7 of its octave and the
/// reported representative is the bucket midpoint, so the answer is
/// within 2^-8 ≈ 0.39% (relative) of a value holding the exact rank.
pub const SKETCH_RELATIVE_ERROR: f64 = 1.0 / (1u64 << (SKETCH_SUB_BITS + 1)) as f64;

/// Bucket key of a strictly positive, normal `f64`: the exponent field
/// concatenated with the top [`SKETCH_SUB_BITS`] mantissa bits.
/// `f64::to_bits` is monotone on positive floats, so equal keys bound
/// a bucket whose width is 2^-7 of its octave — the DDSketch
/// log-bucket scheme, computed from raw bits instead of `ln` (no libm
/// in the hot path, and bit-exact across platforms).
fn sketch_key(magnitude: f64) -> i32 {
    (magnitude.to_bits() >> (52 - SKETCH_SUB_BITS)) as i32
}

/// Midpoint of the bucket `key` addresses — the value [`QuantileSketch`]
/// reports for every observation that landed in the bucket.
fn sketch_rep(key: i32) -> f64 {
    let lo = f64::from_bits((key as u64) << (52 - SKETCH_SUB_BITS));
    let hi = f64::from_bits(((key as u64) + 1) << (52 - SKETCH_SUB_BITS));
    if hi.is_finite() {
        0.5 * (lo + hi)
    } else {
        lo
    }
}

/// A mergeable quantile sketch over `f64` observations — the
/// DDSketch-style summary that replaces fixed-bucket histograms in
/// campaign aggregation (true Fig. 5 CDFs that survive a shard merge).
///
/// * **Bounded relative error.** `quantile(q)` is within
///   [`SKETCH_RELATIVE_ERROR`] (relative) of a value holding the exact
///   zero-based rank `round(q·(n−1))`. Values with magnitude below
///   [`f64::MIN_POSITIVE`] (zero and subnormals) collapse into an
///   exact zero bucket.
/// * **Exactly mergeable.** The state is integer bucket counts, so
///   [`QuantileSketch::merge`] is associative *and* commutative down
///   to the last bit: any partitioning of a stream across shards, in
///   any order, merges to the same sketch. That is what makes a
///   sharded campaign summary independent of the worker count.
/// * **NaN quarantine.** NaN observations land in [`QuantileSketch::nans`]
///   and never a bucket, matching `reorder-survey`'s
///   `RateHistogram::nans` upstream (the PR 5 rule: a NaN must not
///   fatten the heavy tail).
/// * **Checkpointable.** [`QuantileSketch::to_json`] /
///   [`QuantileSketch::from_json`] round-trip the exact state, the
///   persistence primitive for interrupted-campaign resume.
///
/// Memory is O(distinct buckets): observations spanning the rate range
/// `[1e-6, 1]` touch at most ~20 octaves × 128 buckets, stored sparsely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Observations with |x| < `f64::MIN_POSITIVE` (exact zeros and
    /// subnormals — below the sketch's relative-error regime).
    zero: u64,
    /// Quarantined NaN observations.
    nan: u64,
    /// Bucket counts for negative observations, keyed by magnitude.
    neg: std::collections::BTreeMap<i32, u64>,
    /// Bucket counts for positive observations.
    pos: std::collections::BTreeMap<i32, u64>,
    /// Total non-NaN observations (cached; equals zero + Σneg + Σpos).
    count: u64,
}

impl QuantileSketch {
    /// Empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        self.count += 1;
        let mag = x.abs();
        if mag < f64::MIN_POSITIVE {
            self.zero += 1;
        } else if x < 0.0 {
            *self.neg.entry(sketch_key(mag)).or_insert(0) += 1;
        } else {
            *self.pos.entry(sketch_key(mag)).or_insert(0) += 1;
        }
    }

    /// Non-NaN observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations that were exactly zero (or subnormal).
    pub fn zeros(&self) -> u64 {
        self.zero
    }

    /// Quarantined NaN observations — never part of any quantile.
    pub fn nans(&self) -> u64 {
        self.nan
    }

    /// Fold `other` into `self`. Pure integer bucket addition:
    /// associative, commutative, and lossless, so shard sketches merge
    /// to the exact sketch of the concatenated stream.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.zero += other.zero;
        self.nan += other.nan;
        self.count += other.count;
        for (&k, &c) in &other.neg {
            *self.neg.entry(k).or_insert(0) += c;
        }
        for (&k, &c) in &other.pos {
            *self.pos.entry(k).or_insert(0) += c;
        }
    }

    /// The value at zero-based rank `round(q·(n−1))` of the sorted
    /// stream, to within [`SKETCH_RELATIVE_ERROR`] relative error
    /// (exact for zeros). `None` on an empty sketch. `q` is clamped to
    /// [0, 1].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        // Ascending value order: most-negative first (largest
        // magnitude key), then zero, then positives.
        for (&k, &c) in self.neg.iter().rev() {
            cum += c;
            if cum > rank {
                return Some(-sketch_rep(k));
            }
        }
        cum += self.zero;
        if cum > rank {
            return Some(0.0);
        }
        for (&k, &c) in &self.pos {
            cum += c;
            if cum > rank {
                return Some(sketch_rep(k));
            }
        }
        // Unreachable when the cached count matches the buckets; the
        // max bucket is the honest fallback.
        self.pos.keys().next_back().map(|&k| sketch_rep(k))
    }

    /// `(representative value, count)` rows of the positive buckets in
    /// ascending value order — the hook breakdown views (rate
    /// histograms, CDF tables) derive their rows from.
    pub fn positive_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.pos.iter().map(|(&k, &c)| (sketch_rep(k), c))
    }

    /// Serialize the exact sketch state as one JSON object (stable key
    /// order, integers only — the checkpoint format).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + 16 * (self.neg.len() + self.pos.len()));
        let _ = write!(
            s,
            "{{\"sub_bits\":{SKETCH_SUB_BITS},\"zero\":{},\"nan\":{},\"neg\":[",
            self.zero, self.nan
        );
        for (i, (k, c)) in self.neg.iter().enumerate() {
            let _ = write!(s, "{}[{k},{c}]", if i > 0 { "," } else { "" });
        }
        s.push_str("],\"pos\":[");
        for (i, (k, c)) in self.pos.iter().enumerate() {
            let _ = write!(s, "{}[{k},{c}]", if i > 0 { "," } else { "" });
        }
        s.push_str("]}");
        s
    }

    /// Parse a [`QuantileSketch::to_json`] string back into the exact
    /// sketch state. Rejects malformed input and a `sub_bits` stamp
    /// other than this build's (bucket keys are not comparable across
    /// resolutions, so a silent cross-resolution merge would corrupt
    /// quantiles).
    pub fn from_json(text: &str) -> Result<QuantileSketch, String> {
        fn field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
            let pat = format!("\"{key}\":");
            let at = text
                .find(&pat)
                .ok_or_else(|| format!("missing `{key}` in sketch JSON"))?;
            Ok(&text[at + pat.len()..])
        }
        fn number(text: &str, key: &str) -> Result<u64, String> {
            let rest = field(text, key)?;
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end]
                .parse()
                .map_err(|_| format!("bad `{key}` in sketch JSON"))
        }
        fn pairs(text: &str, key: &str) -> Result<std::collections::BTreeMap<i32, u64>, String> {
            let rest = field(text, key)?;
            let rest = rest
                .strip_prefix('[')
                .ok_or_else(|| format!("`{key}` is not an array"))?;
            // The payload runs to the `]` that closes the outer array:
            // track bracket depth (entries are `[k,c]` pairs).
            let mut depth = 1i32;
            let mut end = None;
            for (i, ch) in rest.char_indices() {
                match ch {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let end = end.ok_or_else(|| format!("unterminated `{key}` array"))?;
            let body = &rest[..end];
            let mut map = std::collections::BTreeMap::new();
            for pair in body.split("],") {
                let pair = pair.trim_matches(|c| c == '[' || c == ']' || c == ',' || c == ' ');
                if pair.is_empty() {
                    continue;
                }
                let (k, c) = pair
                    .split_once(',')
                    .ok_or_else(|| format!("bad pair `{pair}` in `{key}`"))?;
                let k: i32 = k
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad key `{k}` in `{key}`"))?;
                let c: u64 = c
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad count `{c}` in `{key}`"))?;
                if map.insert(k, c).is_some() {
                    return Err(format!("duplicate key {k} in `{key}`"));
                }
            }
            Ok(map)
        }
        let sub_bits = number(text, "sub_bits")?;
        if sub_bits != u64::from(SKETCH_SUB_BITS) {
            return Err(format!(
                "sketch resolution mismatch: file has sub_bits={sub_bits}, build uses {SKETCH_SUB_BITS}"
            ));
        }
        let mut sk = QuantileSketch {
            zero: number(text, "zero")?,
            nan: number(text, "nan")?,
            neg: pairs(text, "neg")?,
            pos: pairs(text, "pos")?,
            count: 0,
        };
        sk.count = sk.zero + sk.neg.values().sum::<u64>() + sk.pos.values().sum::<u64>();
        Ok(sk)
    }
}

/// Scale of the [`Moments`] fixed-point domain: 2^80. Power-of-two, so
/// `x * MOMENTS_SCALE` is exact for every representable input.
const MOMENTS_SCALE: f64 = (1u128 << 80) as f64;

/// Order-independent streaming moments: count, mean, variance and CI
/// over a bounded-range series, accumulated as **fixed-point integers**
/// so that [`Moments::merge`] and [`Moments::push`] commute *exactly* —
/// unlike [`Streaming`]'s floating-point Welford state, whose merge is
/// associative only to rounding error.
///
/// The campaign aggregation spine needs this stronger law: per-worker
/// shard aggregators fold whichever hosts the work-stealing scheduler
/// hands them, so the partition of hosts across shards is
/// nondeterministic. With `Moments`, any partition merges to
/// bit-identical state, which is what lets the rendered summary stay
/// byte-identical across worker counts without an id-order funnel.
///
/// Inputs quantize to multiples of 2^-80 (far below any rendered
/// precision) and must be finite with |x| ≤ 2^20 — the domain of
/// per-host rates (∈ [0, 1]) and second-scale latencies. Out-of-range
/// inputs panic rather than silently saturating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Moments {
    n: u64,
    /// Σx in fixed point (units of 2^-80).
    sum: i128,
    /// Σx² in fixed point (x² computed in f64, then quantized).
    sumsq: i128,
}

impl Moments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    fn fixed(x: f64) -> i128 {
        // x ≤ 2^40 (an in-domain input or its square) times the 2^80
        // scale stays below i128::MAX (2^127).
        debug_assert!(x.is_finite() && x.abs() <= (1u64 << 40) as f64);
        (x * MOMENTS_SCALE).round() as i128
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        assert!(
            x.is_finite() && x.abs() <= (1u64 << 20) as f64,
            "Moments input out of domain: {x}"
        );
        self.n += 1;
        self.sum += Self::fixed(x);
        self.sumsq += Self::fixed(x * x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty, matching [`mean`]).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum as f64 / MOMENTS_SCALE) / self.n as f64
        }
    }

    /// Unbiased sample variance (0 for n < 2, matching [`variance`]).
    /// Computed from the exact integer sums; clamped at zero against
    /// cancellation on near-constant series.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let s = self.sum as f64 / MOMENTS_SCALE;
        let ss = self.sumsq as f64 / MOMENTS_SCALE;
        ((ss - s * s / n) / (n - 1.0)).max(0.0)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Normal-approximation confidence interval for the mean at a
    /// tabulated `confidence` level (see [`z_critical`]).
    pub fn ci(&self, confidence: f64) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 0.0);
        }
        let se = self.stddev() / (self.n as f64).sqrt();
        let z = z_critical(confidence);
        let m = self.mean();
        (m - z * se, m + z * se)
    }

    /// Combine two accumulators. Integer addition of the fixed-point
    /// sums: exactly associative and commutative, so any partitioning
    /// of a series across shards merges to identical state.
    pub fn merge(&self, other: &Moments) -> Moments {
        Moments {
            n: self.n + other.n,
            sum: self.sum + other.sum,
            sumsq: self.sumsq + other.sumsq,
        }
    }

    /// Serialize the exact accumulator state as one JSON object. The
    /// fixed-point sums are integers, so the round-trip through
    /// [`Moments::from_json`] is bit-exact — the checkpoint primitive
    /// the campaign orchestrator persists at shard boundaries.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\":{},\"sum\":{},\"sumsq\":{}}}",
            self.n, self.sum, self.sumsq
        )
    }

    /// Parse a [`Moments::to_json`] string back into the exact state.
    /// Rejects malformed input rather than defaulting any field.
    pub fn from_json(text: &str) -> Result<Moments, String> {
        fn int<T: std::str::FromStr>(text: &str, key: &str) -> Result<T, String> {
            let pat = format!("\"{key}\":");
            let at = text
                .find(&pat)
                .ok_or_else(|| format!("missing `{key}` in moments JSON"))?;
            let rest = &text[at + pat.len()..];
            let end = rest
                .char_indices()
                .find(|&(i, c)| !(c.is_ascii_digit() || (i == 0 && c == '-')))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            rest[..end]
                .parse()
                .map_err(|_| format!("bad `{key}` in moments JSON"))
        }
        Ok(Moments {
            n: int(text, "n")?,
            sum: int(text, "sum")?,
            sumsq: int(text, "sumsq")?,
        })
    }
}

/// Result of a paired-difference analysis.
#[derive(Debug, Clone, Copy)]
pub struct PairDifference {
    /// Number of paired observations.
    pub n: usize,
    /// Mean of the differences a_i − b_i.
    pub mean_diff: f64,
    /// Confidence interval for the mean difference.
    pub ci: (f64, f64),
    /// Whether the CI contains zero — i.e. the observed difference is
    /// explainable by intra-test variability (the null hypothesis).
    pub supports_null: bool,
}

/// Paired-difference test at `confidence` on equal-length observation
/// series (Jain §13.4.1). Observations are paired index-wise; callers
/// align them by measurement round. Panics if the series lengths differ
/// or fewer than 2 pairs exist.
pub fn pair_difference(a: &[f64], b: &[f64], confidence: f64) -> PairDifference {
    assert_eq!(a.len(), b.len(), "paired series must align");
    assert!(a.len() >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let md = mean(&diffs);
    let se = stddev(&diffs) / (n as f64).sqrt();
    let z = z_critical(confidence);
    let ci = (md - z * se, md + z * se);
    PairDifference {
        n,
        mean_diff: md,
        ci,
        supports_null: ci.0 <= 0.0 && 0.0 <= ci.1,
    }
}

/// Lag-`k` sample autocorrelation. The §IV-B pair-difference analysis
/// assumes "the reordering process is stationary over the time-period
/// between measurements"; autocorrelation of a measurement series is
/// the standard first check on that assumption.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    if xs.len() <= k + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    // reorder-lint: allow(float-eq, exact-zero divisor guard; any nonzero sum of squares is valid)
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = xs.windows(k + 1).map(|w| (w[0] - m) * (w[k] - m)).sum();
    num / denom
}

/// Pearson correlation of two equal-length series.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must align");
    let ma = mean(a);
    let mb = mean(b);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    // reorder-lint: allow(float-eq, exact-zero divisor guard; any nonzero sum of squares is valid)
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Wald–Wolfowitz runs test against the series median: returns the
/// z-statistic of the observed number of runs. |z| ≫ 2 suggests the
/// series is not exchangeable (trend or strong oscillation) — i.e. the
/// stationarity assumption of §IV-B deserves suspicion.
pub fn runs_test_z(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len();
    // Midpoint median (average of the middle two for even n) so that a
    // two-valued series splits cleanly instead of tying with the median.
    let median = if n.is_multiple_of(2) {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    } else {
        sorted[n / 2]
    };
    // Classify above/below, dropping exact ties.
    let signs: Vec<bool> = xs
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    let n1 = signs.iter().filter(|&&s| s).count() as f64;
    let n2 = signs.len() as f64 - n1;
    // reorder-lint: allow(float-eq, counts cast from integers; zero is exactly representable)
    if n1 == 0.0 || n2 == 0.0 {
        return 0.0;
    }
    let runs = 1.0 + signs.windows(2).filter(|w| w[0] != w[1]).count() as f64;
    let expected = 2.0 * n1 * n2 / (n1 + n2) + 1.0;
    let var = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n1 - n2) / ((n1 + n2) * (n1 + n2) * (n1 + n2 - 1.0));
    if var <= 0.0 {
        return 0.0;
    }
    (runs - expected) / var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn streaming_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Streaming::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.variance() - variance(&xs)).abs() < 1e-12);
        let (lo, hi) = s.ci(0.95);
        assert!(lo < s.mean() && s.mean() < hi);
        // Empty accumulator mirrors the batch conventions.
        let e = Streaming::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.ci(0.95), (0.0, 0.0));
    }

    #[test]
    fn streaming_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 * 0.25).collect();
        let mut whole = Streaming::new();
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-10);
        assert!((merged.variance() - whole.variance()).abs() < 1e-10);
        // Identity element.
        assert_eq!(whole.merge(&Streaming::new()), whole);
        assert_eq!(Streaming::new().merge(&whole), whole);
    }

    #[test]
    fn sketch_quantiles_hit_exact_ranks_within_epsilon() {
        let mut sk = QuantileSketch::new();
        let mut vals: Vec<f64> = (0..1000)
            .map(|i| ((i * 193) % 997) as f64 / 997.0)
            .collect();
        for &v in &vals {
            sk.push(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sk.count(), 1000);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = (q * 999.0f64).round() as usize;
            let exact = vals[rank];
            let got = sk.quantile(q).unwrap();
            if exact == 0.0 {
                assert_eq!(got, 0.0, "q={q}");
            } else {
                assert!(
                    (got - exact).abs() / exact <= SKETCH_RELATIVE_ERROR,
                    "q={q}: got {got}, exact {exact}"
                );
            }
        }
        assert_eq!(QuantileSketch::new().quantile(0.5), None);
    }

    #[test]
    fn sketch_handles_zero_negative_and_nan() {
        let mut sk = QuantileSketch::new();
        for v in [0.0, -2.5, 4.0, f64::NAN, 0.0] {
            sk.push(v);
        }
        assert_eq!(sk.count(), 4);
        assert_eq!(sk.zeros(), 2);
        assert_eq!(sk.nans(), 1);
        // Sorted stream: -2.5, 0, 0, 4 → q=0 is the most negative.
        let lo = sk.quantile(0.0).unwrap();
        assert!((lo + 2.5).abs() / 2.5 <= SKETCH_RELATIVE_ERROR, "{lo}");
        assert_eq!(sk.quantile(0.4), Some(0.0));
        let hi = sk.quantile(1.0).unwrap();
        assert!((hi - 4.0).abs() / 4.0 <= SKETCH_RELATIVE_ERROR, "{hi}");
    }

    #[test]
    fn sketch_merge_is_exact_and_commutative() {
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for i in 0..500 {
            let v = ((i * 37) % 251) as f64 * 0.004;
            whole.push(v);
            if i % 3 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole, "merge must equal the unsplit sketch");
        assert_eq!(ab, ba, "merge must commute");
    }

    #[test]
    fn sketch_json_roundtrip_is_lossless() {
        let mut sk = QuantileSketch::new();
        for v in [0.0, 0.013, 0.5, -1.25, f64::NAN, 3e-4, 0.013] {
            sk.push(v);
        }
        let json = sk.to_json();
        let back = QuantileSketch::from_json(&json).expect("roundtrip");
        assert_eq!(back, sk);
        assert_eq!(back.to_json(), json);
        // Empty sketch round-trips too.
        let empty = QuantileSketch::new();
        assert_eq!(QuantileSketch::from_json(&empty.to_json()).unwrap(), empty);
        // Malformed input and resolution mismatches are rejected.
        assert!(QuantileSketch::from_json("{}").is_err());
        assert!(
            QuantileSketch::from_json(&json.replace("\"sub_bits\":7", "\"sub_bits\":5"))
                .unwrap_err()
                .contains("resolution")
        );
    }

    #[test]
    fn moments_match_batch_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - mean(&xs)).abs() < 1e-9);
        assert!((m.variance() - variance(&xs)).abs() < 1e-9);
        let (lo, hi) = m.ci(0.95);
        assert!(lo < m.mean() && m.mean() < hi);
        let e = Moments::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.ci(0.95), (0.0, 0.0));
    }

    #[test]
    fn moments_merge_is_partition_invariant_bitwise() {
        // The law Streaming cannot give: ANY partition of the series
        // merges to bit-identical state.
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 17) as f64 * 0.25).collect();
        let mut whole = Moments::new();
        for &x in &xs {
            whole.push(x);
        }
        for stride in [2usize, 3, 7] {
            let mut parts = vec![Moments::new(); stride];
            for (i, &x) in xs.iter().enumerate() {
                parts[i % stride].push(x);
            }
            // Left fold and right fold must agree exactly.
            let l = parts.iter().fold(Moments::new(), |acc, p| acc.merge(p));
            let r = parts
                .iter()
                .rev()
                .fold(Moments::new(), |acc, p| p.merge(&acc));
            assert_eq!(l, whole, "stride {stride}");
            assert_eq!(r, whole, "stride {stride} (reversed)");
        }
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn moments_reject_out_of_domain_input() {
        Moments::new().push(f64::INFINITY);
    }

    #[test]
    fn z_table() {
        assert!((z_critical(0.95) - 1.96).abs() < 1e-3);
        assert!((z_critical(0.999) - 3.2905).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "untabulated")]
    fn z_unknown_level_panics() {
        z_critical(0.42);
    }

    #[test]
    fn identical_series_support_null() {
        let a = [0.1, 0.2, 0.15, 0.12, 0.18, 0.2];
        let d = pair_difference(&a, &a, 0.999);
        assert!(d.supports_null);
        assert_eq!(d.mean_diff, 0.0);
        assert_eq!(d.n, 6);
    }

    #[test]
    fn noisy_equal_means_support_null() {
        // Same underlying rate, independent noise.
        let a: Vec<f64> = (0..40)
            .map(|i| 0.1 + 0.01 * ((i * 7 % 13) as f64 - 6.0))
            .collect();
        let b: Vec<f64> = (0..40)
            .map(|i| 0.1 + 0.01 * ((i * 11 % 13) as f64 - 6.0))
            .collect();
        let d = pair_difference(&a, &b, 0.999);
        assert!(d.supports_null, "mean_diff={} ci={:?}", d.mean_diff, d.ci);
    }

    #[test]
    fn shifted_series_reject_null() {
        let a: Vec<f64> = (0..40).map(|i| 0.30 + 0.001 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 0.10 + 0.001 * (i % 7) as f64).collect();
        let d = pair_difference(&a, &b, 0.999);
        assert!(!d.supports_null);
        assert!(d.mean_diff > 0.15);
        assert!(d.ci.0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "paired series must align")]
    fn mismatched_lengths_panic() {
        pair_difference(&[1.0, 2.0], &[1.0], 0.95);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0);
    }

    #[test]
    fn autocorrelation_detects_persistence() {
        // Slow sine: strongly positively correlated at lag 1.
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 / 10.0).sin()).collect();
        assert!(autocorrelation(&xs, 1) > 0.8);
        // Alternating series: strongly negative at lag 1.
        let alt: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1) < -0.8);
    }

    #[test]
    fn correlation_bounds_and_sign() {
        let a: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &[5.0; 32]), 0.0);
    }

    #[test]
    fn runs_test_flags_trend_but_not_noise() {
        // A monotone trend has exactly 2 runs: far fewer than expected.
        let trend: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert!(runs_test_z(&trend) < -3.0);
        // Perfect alternation has the maximum number of runs.
        let alt: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(runs_test_z(&alt) > 3.0);
        // A fixed scrambled series stays well within bounds (a plain
        // multiplicative sequence would be a sawtooth and rightly get
        // flagged; xor-mixing breaks the periodicity).
        let noise: Vec<f64> = (0u64..40)
            .map(|i| (((i * 2_654_435_761) ^ (i << 7) ^ 0x9e37_79b9) % 1000) as f64)
            .collect();
        assert!(runs_test_z(&noise).abs() < 2.5);
    }
}
