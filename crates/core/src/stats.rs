//! Descriptive statistics and the paired-difference test of §IV-B.
//!
//! "We compute a standard pair-difference test statistic [Jain, *The Art
//! of Computer Systems Performance Analysis*] for each host, comparing
//! the results of each pair of tests. The null hypothesis is that the
//! difference between tests can be explained purely in terms of
//! intra-test variability."

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for n < 2).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Two-sided critical value of the standard normal for the given
/// confidence level. Only the levels used by the experiments are
/// tabulated; anything else panics loudly rather than silently
/// approximating.
pub fn z_critical(confidence: f64) -> f64 {
    // (confidence, z)
    const TABLE: &[(f64, f64)] = &[
        (0.90, 1.6449),
        (0.95, 1.9600),
        (0.99, 2.5758),
        (0.995, 2.8070),
        (0.999, 3.2905),
    ];
    for &(c, z) in TABLE {
        if (confidence - c).abs() < 1e-9 {
            return z;
        }
    }
    panic!("untabulated confidence level {confidence}");
}

/// Online (single-pass) mean/variance accumulator — Welford's
/// algorithm. Lets a campaign aggregate per-host statistics in O(1)
/// memory per series instead of retaining every observation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Streaming {
    /// Empty accumulator.
    pub fn new() -> Self {
        Streaming::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty, matching [`mean`]).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2, matching [`variance`]).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Normal-approximation confidence interval for the mean at a
    /// tabulated `confidence` level (see [`z_critical`]).
    pub fn ci(&self, confidence: f64) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 0.0);
        }
        let se = self.stddev() / (self.n as f64).sqrt();
        let z = z_critical(confidence);
        (self.mean - z * se, self.mean + z * se)
    }

    /// Combine two accumulators (Chan et al. parallel update). The
    /// in-process campaign engine absorbs reports in host-id order and
    /// doesn't need it; this is the merge operation for cross-process
    /// sharding (concatenating independently aggregated shards — see
    /// the ROADMAP `--shard K/N` item).
    pub fn merge(&self, other: &Streaming) -> Streaming {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        Streaming { n, mean, m2 }
    }
}

/// Result of a paired-difference analysis.
#[derive(Debug, Clone, Copy)]
pub struct PairDifference {
    /// Number of paired observations.
    pub n: usize,
    /// Mean of the differences a_i − b_i.
    pub mean_diff: f64,
    /// Confidence interval for the mean difference.
    pub ci: (f64, f64),
    /// Whether the CI contains zero — i.e. the observed difference is
    /// explainable by intra-test variability (the null hypothesis).
    pub supports_null: bool,
}

/// Paired-difference test at `confidence` on equal-length observation
/// series (Jain §13.4.1). Observations are paired index-wise; callers
/// align them by measurement round. Panics if the series lengths differ
/// or fewer than 2 pairs exist.
pub fn pair_difference(a: &[f64], b: &[f64], confidence: f64) -> PairDifference {
    assert_eq!(a.len(), b.len(), "paired series must align");
    assert!(a.len() >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let md = mean(&diffs);
    let se = stddev(&diffs) / (n as f64).sqrt();
    let z = z_critical(confidence);
    let ci = (md - z * se, md + z * se);
    PairDifference {
        n,
        mean_diff: md,
        ci,
        supports_null: ci.0 <= 0.0 && 0.0 <= ci.1,
    }
}

/// Lag-`k` sample autocorrelation. The §IV-B pair-difference analysis
/// assumes "the reordering process is stationary over the time-period
/// between measurements"; autocorrelation of a measurement series is
/// the standard first check on that assumption.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    if xs.len() <= k + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = xs.windows(k + 1).map(|w| (w[0] - m) * (w[k] - m)).sum();
    num / denom
}

/// Pearson correlation of two equal-length series.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must align");
    let ma = mean(a);
    let mb = mean(b);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Wald–Wolfowitz runs test against the series median: returns the
/// z-statistic of the observed number of runs. |z| ≫ 2 suggests the
/// series is not exchangeable (trend or strong oscillation) — i.e. the
/// stationarity assumption of §IV-B deserves suspicion.
pub fn runs_test_z(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len();
    // Midpoint median (average of the middle two for even n) so that a
    // two-valued series splits cleanly instead of tying with the median.
    let median = if n.is_multiple_of(2) {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    } else {
        sorted[n / 2]
    };
    // Classify above/below, dropping exact ties.
    let signs: Vec<bool> = xs
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    let n1 = signs.iter().filter(|&&s| s).count() as f64;
    let n2 = signs.len() as f64 - n1;
    if n1 == 0.0 || n2 == 0.0 {
        return 0.0;
    }
    let runs = 1.0 + signs.windows(2).filter(|w| w[0] != w[1]).count() as f64;
    let expected = 2.0 * n1 * n2 / (n1 + n2) + 1.0;
    let var = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n1 - n2) / ((n1 + n2) * (n1 + n2) * (n1 + n2 - 1.0));
    if var <= 0.0 {
        return 0.0;
    }
    (runs - expected) / var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn streaming_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Streaming::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.variance() - variance(&xs)).abs() < 1e-12);
        let (lo, hi) = s.ci(0.95);
        assert!(lo < s.mean() && s.mean() < hi);
        // Empty accumulator mirrors the batch conventions.
        let e = Streaming::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.ci(0.95), (0.0, 0.0));
    }

    #[test]
    fn streaming_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 * 0.25).collect();
        let mut whole = Streaming::new();
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-10);
        assert!((merged.variance() - whole.variance()).abs() < 1e-10);
        // Identity element.
        assert_eq!(whole.merge(&Streaming::new()), whole);
        assert_eq!(Streaming::new().merge(&whole), whole);
    }

    #[test]
    fn z_table() {
        assert!((z_critical(0.95) - 1.96).abs() < 1e-3);
        assert!((z_critical(0.999) - 3.2905).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "untabulated")]
    fn z_unknown_level_panics() {
        z_critical(0.42);
    }

    #[test]
    fn identical_series_support_null() {
        let a = [0.1, 0.2, 0.15, 0.12, 0.18, 0.2];
        let d = pair_difference(&a, &a, 0.999);
        assert!(d.supports_null);
        assert_eq!(d.mean_diff, 0.0);
        assert_eq!(d.n, 6);
    }

    #[test]
    fn noisy_equal_means_support_null() {
        // Same underlying rate, independent noise.
        let a: Vec<f64> = (0..40)
            .map(|i| 0.1 + 0.01 * ((i * 7 % 13) as f64 - 6.0))
            .collect();
        let b: Vec<f64> = (0..40)
            .map(|i| 0.1 + 0.01 * ((i * 11 % 13) as f64 - 6.0))
            .collect();
        let d = pair_difference(&a, &b, 0.999);
        assert!(d.supports_null, "mean_diff={} ci={:?}", d.mean_diff, d.ci);
    }

    #[test]
    fn shifted_series_reject_null() {
        let a: Vec<f64> = (0..40).map(|i| 0.30 + 0.001 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 0.10 + 0.001 * (i % 7) as f64).collect();
        let d = pair_difference(&a, &b, 0.999);
        assert!(!d.supports_null);
        assert!(d.mean_diff > 0.15);
        assert!(d.ci.0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "paired series must align")]
    fn mismatched_lengths_panic() {
        pair_difference(&[1.0, 2.0], &[1.0], 0.95);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0);
    }

    #[test]
    fn autocorrelation_detects_persistence() {
        // Slow sine: strongly positively correlated at lag 1.
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 / 10.0).sin()).collect();
        assert!(autocorrelation(&xs, 1) > 0.8);
        // Alternating series: strongly negative at lag 1.
        let alt: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1) < -0.8);
    }

    #[test]
    fn correlation_bounds_and_sign() {
        let a: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &[5.0; 32]), 0.0);
    }

    #[test]
    fn runs_test_flags_trend_but_not_noise() {
        // A monotone trend has exactly 2 runs: far fewer than expected.
        let trend: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert!(runs_test_z(&trend) < -3.0);
        // Perfect alternation has the maximum number of runs.
        let alt: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(runs_test_z(&alt) > 3.0);
        // A fixed scrambled series stays well within bounds (a plain
        // multiplicative sequence would be a sawtooth and rightly get
        // flagged; xor-mixing breaks the periodicity).
        let noise: Vec<f64> = (0u64..40)
            .map(|i| (((i * 2_654_435_761) ^ (i << 7) ^ 0x9e37_79b9) % 1000) as f64)
            .collect();
        assert!(runs_test_z(&noise).abs() < 2.5);
    }
}
