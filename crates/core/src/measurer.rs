//! The unified measurement API: one [`Technique`] trait over all of
//! the paper's tests, a [`Session`] that owns the conversation with one
//! target (and caches handshakes so successive phases reuse
//! connections), and a [`Measurer`] builder that turns a plan into one
//! [`Measurement`] report.
//!
//! Before this module, every consumer — the CLI, the survey pipeline,
//! the experiment binaries, the examples — carried its own string-keyed
//! `match` over four unrelated structs with ad-hoc `run()` signatures.
//! Now there is exactly one dispatch point:
//!
//! ```
//! use reorder_core::measurer::{technique, Session};
//! use reorder_core::sample::TestConfig;
//! use reorder_core::scenario;
//! use reorder_core::TestKind;
//!
//! let mut sc = scenario::validation_rig(0.10, 0.0, 42);
//! let mut session = Session::new(&mut sc.prober, sc.target, 80);
//! let kind: TestKind = "single-rev".parse().unwrap();
//! let run = technique(kind, TestConfig::samples(50))
//!     .execute(&mut session)
//!     .expect("measurement");
//! assert!(run.fwd_estimate().rate() < 0.35);
//! ```
//!
//! ## Connection reuse
//!
//! A [`Session`] created with [`Session::with_reuse`] keeps every
//! checked-in connection open (keyed by technique family and advertised
//! MSS/window) and caches the IPID amenability verdict, so an
//! amenability probe, a measurement, a gap sweep and a baseline against
//! the same host share handshakes and validation instead of repeating
//! them — the survey engine's per-host fast path. Without reuse a
//! checked-in connection is closed immediately, reproducing the
//! historical per-run behavior packet for packet.

use crate::budget::Budget;
use crate::metrics::ReorderEstimate;
use crate::probe::{ClientConn, ProbeError, Prober};
use crate::sample::{MeasurementRun, TestConfig};
use crate::techniques::{
    DataTransferTest, DualConnectionTest, IpidVerdict, SingleConnectionTest, SynTest, TestKind,
};
use reorder_netsim::SimTime;
use reorder_wire::Ipv4Addr4;
use std::fmt::Write as _;

/// What a technique needs from a target and which directions it can
/// see — the machine-readable version of the table in
/// [`crate::techniques`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requirements {
    /// Produces forward-path (probe → target) verdicts.
    pub measures_fwd: bool,
    /// Produces reverse-path (target → probe) verdicts.
    pub measures_rev: bool,
    /// Number of established TCP connections one run holds open
    /// (0 = raw per-sample flows, as in the SYN test).
    pub connections: usize,
    /// Requires the target's IPID space to validate as
    /// [`IpidVerdict::Amenable`] before measuring.
    pub needs_global_ipid: bool,
    /// Requires the target to serve an object spanning ≥ 2 segments.
    pub needs_object: bool,
}

/// One of the paper's measurement techniques behind a uniform,
/// object-safe interface. All five registry entries ([`TestKind`]'s
/// variants) implement it; dispatch happens through [`technique`] or
/// [`registry`], never through string matches at call sites.
pub trait Technique {
    /// Which technique this is (labels, parsing, report keys).
    fn kind(&self) -> TestKind;

    /// Static capabilities and preconditions.
    fn requirements(&self) -> Requirements;

    /// Check the target's amenability without measuring. The default
    /// accepts every reachable host; the dual connection test overrides
    /// this with the §III-C IPID validation. The verdict is cached on
    /// the session, so a following [`Technique::execute`] does not
    /// repeat the probe.
    fn probe_amenability(&self, session: &mut Session<'_>) -> Result<IpidVerdict, ProbeError> {
        let _ = session;
        Ok(IpidVerdict::Amenable)
    }

    /// Run the full measurement over `session`'s target and return the
    /// per-sample record. Connections are checked out of (and back
    /// into) the session, so a reusing session pays for handshakes and
    /// IPID validation once across phases.
    fn execute(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError>;
}

/// A cached, still-open connection with the parameters it was
/// established under.
#[derive(Debug)]
struct CachedConn {
    conn: ClientConn,
    tag: &'static str,
    mss: u16,
    window: u16,
}

/// Counters a session keeps about its connection economy (drives the
/// reuse assertions in tests and the campaign bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Fresh handshakes performed through the session.
    pub handshakes: usize,
    /// Checkouts satisfied from the connection cache.
    pub reused: usize,
    /// IPID validations performed (at most 1 per reusing session).
    pub validations: usize,
}

/// The conversation with one measurement target: a prober, the target
/// address/port, and — when reuse is enabled — a cache of open
/// connections plus the amenability verdict, shared by every technique
/// run on the session.
pub struct Session<'p> {
    prober: &'p mut Prober,
    target: Ipv4Addr4,
    port: u16,
    reuse: bool,
    cache: Vec<CachedConn>,
    verdict: Option<IpidVerdict>,
    probe_offset: u32,
    stats: SessionStats,
    deadline: Option<SimTime>,
}

impl<'p> Session<'p> {
    /// New session without connection reuse: every checkout handshakes,
    /// every checkin closes — the historical per-run behavior.
    pub fn new(prober: &'p mut Prober, target: Ipv4Addr4, port: u16) -> Self {
        Session {
            prober,
            target,
            port,
            reuse: false,
            cache: Vec::new(),
            verdict: None,
            probe_offset: 0,
            stats: SessionStats::default(),
            deadline: None,
        }
    }

    /// Toggle connection reuse (builder style).
    pub fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        self
    }

    /// Enforce a per-host [`Budget`] (builder style): the deadline is
    /// anchored at the prober's current simulated time, and once it
    /// passes every further [`Session::checkout`] — and thus every
    /// technique phase — fails fast with
    /// [`ProbeError::DeadlineExceeded`]. Deadlines are simulated time,
    /// so a tarpit host burns its budget without burning wall clock.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.deadline = Some(self.prober.now() + budget.deadline);
        self
    }

    /// Whether the session's budget deadline (if any) has passed.
    pub fn over_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| self.prober.now() >= d)
    }

    /// The target address under measurement.
    pub fn target(&self) -> Ipv4Addr4 {
        self.target
    }

    /// The target port under measurement.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Whether checkins keep connections open for later checkouts.
    pub fn reuses_connections(&self) -> bool {
        self.reuse
    }

    /// Direct access to the prober (techniques drive the simulation
    /// through this).
    pub fn prober(&mut self) -> &mut Prober {
        self.prober
    }

    /// Connection-economy counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The cached amenability verdict, if one technique already probed.
    pub fn verdict(&self) -> Option<IpidVerdict> {
        self.verdict
    }

    /// Record the amenability verdict (techniques call this after
    /// validating; [`SessionStats::validations`] counts the calls).
    pub fn set_verdict(&mut self, verdict: IpidVerdict) {
        self.stats.validations += 1;
        self.verdict = Some(verdict);
    }

    /// The next unused out-of-order probe byte offset. Techniques that
    /// park bytes beyond `snd_nxt` (IPID validation, dual-connection
    /// samples) share this counter so reused connections never re-park
    /// an already-buffered offset.
    pub fn probe_offset(&self) -> u32 {
        self.probe_offset
    }

    /// Advance the shared probe offset after consuming offsets up to
    /// (exclusive) `next`.
    pub fn set_probe_offset(&mut self, next: u32) {
        debug_assert!(next >= self.probe_offset);
        self.probe_offset = next;
    }

    /// Obtain an established connection advertising `mss`/`window`. A
    /// reusing session returns the oldest cached connection of the same
    /// `tag` and parameters (FIFO, so a technique that checks two
    /// connections back in gets them back in the same roles); otherwise
    /// a fresh handshake is performed. `tag` partitions the cache by
    /// technique family: a connection carrying dual-test out-of-order
    /// probe bytes has receiver-side reassembly state that would
    /// corrupt a single-connection sample, so the families never share.
    pub fn checkout(
        &mut self,
        tag: &'static str,
        mss: u16,
        window: u16,
        timeout: std::time::Duration,
    ) -> Result<ClientConn, ProbeError> {
        if self.over_deadline() {
            return Err(ProbeError::DeadlineExceeded);
        }
        if self.reuse {
            if let Some(pos) = self
                .cache
                .iter()
                .position(|c| c.tag == tag && c.mss == mss && c.window == window)
            {
                self.stats.reused += 1;
                return Ok(self.cache.remove(pos).conn);
            }
        }
        self.stats.handshakes += 1;
        self.prober
            .handshake(self.target, self.port, mss, window, timeout)
    }

    /// Return a connection after use. A reusing session keeps it open
    /// for the next checkout of the same `tag`/parameters; otherwise it
    /// is politely closed now.
    pub fn checkin(
        &mut self,
        tag: &'static str,
        mss: u16,
        window: u16,
        mut conn: ClientConn,
        timeout: std::time::Duration,
    ) {
        if self.reuse {
            self.cache.push(CachedConn {
                conn,
                tag,
                mss,
                window,
            });
        } else {
            self.prober.close(&mut conn, timeout);
        }
    }

    /// Dispose of a connection that must not be reused — one whose
    /// state is suspect after a mid-measurement error. It is politely
    /// closed now regardless of the reuse setting (a broken connection
    /// in the cache would poison the next checkout).
    pub fn discard(&mut self, mut conn: ClientConn, timeout: std::time::Duration) {
        self.prober.close(&mut conn, timeout);
    }

    /// Politely close every cached connection. Called by `Drop`, but
    /// callable explicitly when the close traffic should happen at a
    /// controlled point in simulated time.
    pub fn finish(&mut self, timeout: std::time::Duration) {
        for mut cached in self.cache.drain(..) {
            self.prober.close(&mut cached.conn, timeout);
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.finish(std::time::Duration::from_millis(900));
    }
}

/// Construct the technique implementing `kind` with shared knobs `cfg`.
/// This is the single dispatch point that replaced the per-consumer
/// string matches.
pub fn technique(kind: TestKind, cfg: TestConfig) -> Box<dyn Technique> {
    match kind {
        TestKind::SingleConnection => Box::new(SingleConnectionTest::new(cfg)),
        TestKind::SingleConnectionReversed => Box::new(SingleConnectionTest::reversed(cfg)),
        TestKind::DualConnection => Box::new(DualConnectionTest::new(cfg)),
        TestKind::Syn => Box::new(SynTest::new(cfg)),
        TestKind::DataTransfer => Box::new(DataTransferTest::new(cfg)),
    }
}

/// Every technique, boxed, in the paper's presentation order — the
/// registry the conformance suite (and any "run them all" consumer)
/// iterates.
pub fn registry(cfg: TestConfig) -> Vec<Box<dyn Technique>> {
    TestKind::all()
        .into_iter()
        .map(|kind| technique(kind, cfg))
        .collect()
}

/// The unified measurement report every consumer reads: per-direction
/// estimates, the technique that produced them, the amenability
/// verdict (when one was probed), the optional transfer baseline and
/// gap profile. Serializes to a single JSON line and parses back
/// ([`Measurement::to_json`] / [`Measurement::from_json`]) so plans
/// and reports can cross process boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Technique that produced the primary estimates.
    pub kind: TestKind,
    /// IPID amenability verdict, when the session probed one.
    pub verdict: Option<IpidVerdict>,
    /// Forward-path (probe → target) estimate.
    pub fwd: ReorderEstimate,
    /// Reverse-path (target → probe) estimate.
    pub rev: ReorderEstimate,
    /// Samples taken (including discarded ones).
    pub samples: usize,
    /// Samples indeterminate in both directions.
    pub discarded: usize,
    /// Reverse-path estimate of the data-transfer baseline, when taken.
    pub baseline_rev: Option<ReorderEstimate>,
    /// `(gap_us, forward estimate)` sweep points, when requested.
    pub gap_points: Vec<(u64, ReorderEstimate)>,
}

impl Measurement {
    /// Summarize a per-sample run into the unified report.
    pub fn from_run(kind: TestKind, run: &MeasurementRun) -> Measurement {
        Measurement {
            kind,
            verdict: None,
            fwd: run.fwd_estimate(),
            rev: run.rev_estimate(),
            samples: run.samples.len(),
            discarded: run.discarded(),
            baseline_rev: None,
            gap_points: Vec::new(),
        }
    }

    /// Serialize as one JSON line (stable key order, no trailing
    /// newline). Hand-rolled: the environment has no serde.
    pub fn to_json(&self) -> String {
        fn estimate(out: &mut String, e: &ReorderEstimate) {
            let _ = write!(
                out,
                "{{\"reordered\":{},\"total\":{}}}",
                e.reordered, e.total
            );
        }
        let mut s = String::with_capacity(192);
        let _ = write!(s, "{{\"kind\":\"{}\",\"verdict\":", self.kind.label());
        match self.verdict {
            Some(v) => {
                let _ = write!(s, "\"{}\"", v.label());
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"fwd\":");
        estimate(&mut s, &self.fwd);
        s.push_str(",\"rev\":");
        estimate(&mut s, &self.rev);
        let _ = write!(
            s,
            ",\"samples\":{},\"discarded\":{},\"baseline_rev\":",
            self.samples, self.discarded
        );
        match &self.baseline_rev {
            Some(b) => estimate(&mut s, b),
            None => s.push_str("null"),
        }
        s.push_str(",\"gaps\":[");
        for (i, (gap, est)) in self.gap_points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"gap_us\":{gap},\"fwd\":");
            estimate(&mut s, est);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parse a report serialized by [`Measurement::to_json`].
    pub fn from_json(text: &str) -> Result<Measurement, String> {
        let value = json::parse(text)?;
        let obj = value.as_object("measurement")?;
        let estimate = |v: &json::Value, what: &str| -> Result<ReorderEstimate, String> {
            let o = v.as_object(what)?;
            Ok(ReorderEstimate::new(
                json::get(o, "reordered")?.as_usize("reordered")?,
                json::get(o, "total")?.as_usize("total")?,
            ))
        };
        let kind: TestKind = json::get(obj, "kind")?
            .as_str("kind")?
            .parse()
            .map_err(|e: crate::techniques::UnknownTestKind| e.to_string())?;
        let verdict = match json::get(obj, "verdict")? {
            json::Value::Null => None,
            v => Some(
                IpidVerdict::from_label(v.as_str("verdict")?)
                    .ok_or_else(|| "unknown verdict label".to_string())?,
            ),
        };
        let baseline_rev = match json::get(obj, "baseline_rev")? {
            json::Value::Null => None,
            v => Some(estimate(v, "baseline_rev")?),
        };
        let mut gap_points = Vec::new();
        for item in json::get(obj, "gaps")?.as_array("gaps")? {
            let o = item.as_object("gap point")?;
            gap_points.push((
                json::get(o, "gap_us")?.as_usize("gap_us")? as u64,
                estimate(json::get(o, "fwd")?, "gap fwd")?,
            ));
        }
        Ok(Measurement {
            kind,
            verdict,
            fwd: estimate(json::get(obj, "fwd")?, "fwd")?,
            rev: estimate(json::get(obj, "rev")?, "rev")?,
            samples: json::get(obj, "samples")?.as_usize("samples")?,
            discarded: json::get(obj, "discarded")?.as_usize("discarded")?,
            baseline_rev,
            gap_points,
        })
    }
}

/// `true` when the run's last three samples were all fully blind —
/// neither direction determinate. That is the signature of a host
/// that died mid-measurement: ordinary loss discards samples too, but
/// independently, so three consecutive fully-blind samples at
/// cooperative loss rates are vanishingly unlikely, while a host gone
/// dark produces nothing else from the moment it dies.
fn dead_tail(run: &MeasurementRun) -> bool {
    const TAIL: usize = 3;
    run.samples.len() >= TAIL
        && run
            .samples
            .iter()
            .rev()
            .take(TAIL)
            .all(|s| !s.outcome.fwd.is_determinate() && !s.outcome.rev.is_determinate())
}

/// Builder over a measurement plan: which technique, with what knobs,
/// and which extras (transfer baseline, gap sweep) to fold into the
/// single [`Measurement`] it returns.
///
/// ```
/// use reorder_core::measurer::{Measurer, Session};
/// use reorder_core::scenario;
/// use reorder_core::TestKind;
///
/// let mut sc = scenario::validation_rig(0.10, 0.05, 7);
/// let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
/// let m = Measurer::new(TestKind::DualConnection)
///     .with_samples(40)
///     .with_baseline(true)
///     .run(&mut session)
///     .expect("measurement");
/// assert_eq!(m.kind, TestKind::DualConnection);
/// assert!(m.fwd.total > 0 && m.baseline_rev.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Measurer {
    kind: TestKind,
    cfg: TestConfig,
    baseline: bool,
    gaps_us: Vec<u64>,
}

impl Measurer {
    /// Plan a measurement with `kind` and default knobs.
    pub fn new(kind: TestKind) -> Measurer {
        Measurer {
            kind,
            cfg: TestConfig::default(),
            baseline: false,
            gaps_us: Vec::new(),
        }
    }

    /// Replace the shared technique knobs.
    pub fn with_config(mut self, cfg: TestConfig) -> Measurer {
        self.cfg = cfg;
        self
    }

    /// Set the sample count, keeping the other knobs.
    pub fn with_samples(mut self, samples: usize) -> Measurer {
        self.cfg.samples = samples;
        self
    }

    /// Also take the §III-E data-transfer baseline of the reverse path
    /// (skipped when the primary technique *is* the transfer test; a
    /// baseline the target cannot serve is reported as `None`, not an
    /// error).
    pub fn with_baseline(mut self, baseline: bool) -> Measurer {
        self.baseline = baseline;
        self
    }

    /// Also sweep the §IV-C inter-packet gap over `gaps_us`
    /// (microseconds), recording a forward estimate per point.
    pub fn with_gap_sweep(mut self, gaps_us: Vec<u64>) -> Measurer {
        self.gaps_us = gaps_us;
        self
    }

    /// The planned technique.
    pub fn kind(&self) -> TestKind {
        self.kind
    }

    /// The planned knobs.
    pub fn config(&self) -> TestConfig {
        self.cfg
    }

    /// Execute the plan on `session` and fold every phase into one
    /// report. On a reusing session the phases share handshakes and
    /// the amenability verdict.
    pub fn run(&self, session: &mut Session<'_>) -> Result<Measurement, ProbeError> {
        if session.over_deadline() {
            return Err(ProbeError::DeadlineExceeded);
        }
        let primary = technique(self.kind, self.cfg);
        let run = primary.execute(session)?;
        let mut m = Measurement::from_run(self.kind, &run);
        if m.fwd.total == 0 && m.rev.total == 0 {
            // Every sample was lost or discarded: a dead, blackholed or
            // tarpitted host looks exactly like this. An estimate built
            // on zero observations is not a measurement — report the
            // run as timed out instead of returning a hollow success.
            return Err(ProbeError::Timeout {
                waiting_for: "any probe reply",
            });
        }
        if dead_tail(&run) {
            // The host answered, then went permanently dark: every
            // trailing sample lost in both directions. Independent
            // loss discards samples too, but independently — three
            // consecutive fully-blind samples at cooperative loss
            // rates are a ~1e-9 event, while a host dying mid-run
            // makes them certain. The partial estimate is untrustworthy
            // (its tail is censored), so the run fails loudly.
            return Err(ProbeError::Timeout {
                waiting_for: "probe replies (host went dark mid-run)",
            });
        }
        m.verdict = session.verdict();
        for &gap in &self.gaps_us {
            if session.over_deadline() {
                break;
            }
            let mut cfg = self.cfg;
            cfg.gap = std::time::Duration::from_micros(gap);
            if let Ok(run) = technique(self.kind, cfg).execute(session) {
                m.gap_points.push((gap, run.fwd_estimate()));
            }
        }
        if self.baseline && self.kind != TestKind::DataTransfer && !session.over_deadline() {
            m.baseline_rev = technique(TestKind::DataTransfer, TestConfig::default())
                .execute(session)
                .ok()
                .map(|r| r.rev_estimate());
        }
        Ok(m)
    }
}

/// A deliberately small JSON reader, sufficient for the fixed report
/// shapes this crate writes (objects, arrays, strings without escapes
/// beyond the writer's set, unsigned integers, null). Private: the
/// public surface is `Measurement::{to,from}_json`.
mod json {
    pub enum Value {
        Null,
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object<'v>(&'v self, what: &str) -> Result<&'v [(String, Value)], String> {
            match self {
                Value::Obj(fields) => Ok(fields),
                _ => Err(format!("{what}: expected object")),
            }
        }

        pub fn as_array<'v>(&'v self, what: &str) -> Result<&'v [Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(format!("{what}: expected array")),
            }
        }

        pub fn as_str<'v>(&'v self, what: &str) -> Result<&'v str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("{what}: expected string")),
            }
        }

        pub fn as_usize(&self, what: &str) -> Result<usize, String> {
            match self {
                // reorder-lint: allow(float-eq, fract() returns exactly 0.0 for integral values by IEEE 754)
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
                _ => Err(format!("{what}: expected unsigned integer")),
            }
        }
    }

    pub fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{key}`"))
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing characters".into());
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'n') => self.keyword("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("expected `{word}` at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                fields.push((key, self.value()?));
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        let esc = self.bytes.get(self.pos + 1).copied();
                        self.pos += 2;
                        match esc {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            _ => return Err("unsupported escape".into()),
                        }
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8 passes through unchanged.
                        let start = self.pos;
                        let len = match b {
                            _ if b < 0x80 => 1,
                            _ if b < 0xE0 => 2,
                            _ if b < 0xF0 => 3,
                            _ => 4,
                        };
                        self.pos += len;
                        let chunk = self.bytes.get(start..self.pos).ok_or("truncated string")?;
                        out.push_str(
                            std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8".to_string())?,
                        );
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || *b == b'.' || *b == b'e' || *b == b'E' || *b == b'+'
            }) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn registry_covers_every_kind_once() {
        let reg = registry(TestConfig::samples(5));
        let kinds: Vec<TestKind> = reg.iter().map(|t| t.kind()).collect();
        assert_eq!(kinds, TestKind::all().to_vec());
    }

    #[test]
    fn requirements_are_consistent() {
        for t in registry(TestConfig::samples(5)) {
            let r = t.requirements();
            assert!(
                r.measures_fwd || r.measures_rev,
                "{}: measures nothing",
                t.kind()
            );
            if r.needs_global_ipid {
                assert_eq!(t.kind(), TestKind::DualConnection);
            }
            if r.needs_object {
                assert_eq!(t.kind(), TestKind::DataTransfer);
            }
        }
    }

    #[test]
    fn session_without_reuse_closes_on_checkin() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 301);
        let mut s = Session::new(&mut sc.prober, sc.target, 80);
        let t = std::time::Duration::from_secs(1);
        let conn = s.checkout("t", 1460, 65535, t).expect("handshake");
        s.checkin("t", 1460, 65535, conn, t);
        let conn = s.checkout("t", 1460, 65535, t).expect("handshake");
        s.checkin("t", 1460, 65535, conn, t);
        assert_eq!(s.stats().handshakes, 2);
        assert_eq!(s.stats().reused, 0);
    }

    #[test]
    fn session_with_reuse_hands_back_the_same_connection() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 302);
        let mut s = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
        let t = std::time::Duration::from_secs(1);
        let conn = s.checkout("t", 1460, 65535, t).expect("handshake");
        let flow = conn.flow;
        s.checkin("t", 1460, 65535, conn, t);
        let conn = s.checkout("t", 1460, 65535, t).expect("reuse");
        assert_eq!(conn.flow, flow, "same connection handed back");
        s.checkin("t", 1460, 65535, conn, t);
        assert_eq!(s.stats().handshakes, 1);
        assert_eq!(s.stats().reused, 1);
        // Different parameters or tag miss the cache.
        let other = s.checkout("t", 256, 512, t).expect("handshake");
        s.checkin("t", 256, 512, other, t);
        let other = s.checkout("u", 1460, 65535, t).expect("handshake");
        s.checkin("u", 1460, 65535, other, t);
        assert_eq!(s.stats().handshakes, 3);
        s.finish(t);
    }

    #[test]
    fn exhausted_budget_fails_checkout_and_run() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 304);
        let mut s = Session::new(&mut sc.prober, sc.target, 80).with_budget(Budget {
            deadline: std::time::Duration::ZERO,
            ..Budget::default()
        });
        assert!(s.over_deadline());
        assert!(matches!(
            s.checkout("t", 1460, 65535, std::time::Duration::from_secs(1)),
            Err(ProbeError::DeadlineExceeded)
        ));
        assert!(matches!(
            Measurer::new(TestKind::Syn).with_samples(5).run(&mut s),
            Err(ProbeError::DeadlineExceeded)
        ));
    }

    #[test]
    fn generous_budget_never_bites_a_cooperative_host() {
        let mut sc = scenario::validation_rig(0.1, 0.0, 305);
        let mut s = Session::new(&mut sc.prober, sc.target, 80)
            .with_reuse(true)
            .with_budget(Budget::default());
        let m = Measurer::new(TestKind::DualConnection)
            .with_samples(20)
            .run(&mut s)
            .expect("within budget");
        assert!(m.fwd.total > 0);
    }

    #[test]
    fn measurement_json_round_trip() {
        let m = Measurement {
            kind: TestKind::DualConnection,
            verdict: Some(IpidVerdict::Amenable),
            fwd: ReorderEstimate::new(3, 40),
            rev: ReorderEstimate::new(1, 38),
            samples: 40,
            discarded: 2,
            baseline_rev: Some(ReorderEstimate::new(0, 12)),
            gap_points: vec![
                (0, ReorderEstimate::new(3, 10)),
                (100, ReorderEstimate::new(1, 10)),
            ],
        };
        let line = m.to_json();
        assert!(line.starts_with("{\"kind\":\"dual\",\"verdict\":\"amenable\""));
        assert!(!line.contains('\n'));
        assert_eq!(Measurement::from_json(&line).expect("parse"), m);

        let empty = Measurement {
            kind: TestKind::Syn,
            verdict: None,
            fwd: ReorderEstimate::default(),
            rev: ReorderEstimate::default(),
            samples: 0,
            discarded: 0,
            baseline_rev: None,
            gap_points: Vec::new(),
        };
        assert_eq!(
            Measurement::from_json(&empty.to_json()).expect("parse"),
            empty
        );
    }

    #[test]
    fn measurement_json_rejects_garbage() {
        assert!(Measurement::from_json("").is_err());
        assert!(Measurement::from_json("{}").is_err());
        assert!(Measurement::from_json("{\"kind\":\"warp\"}").is_err());
        let m = Measurement::from_run(TestKind::Syn, &MeasurementRun::default());
        let line = m.to_json();
        assert!(Measurement::from_json(&line[..line.len() - 1]).is_err());
    }

    #[test]
    fn measurer_folds_baseline_and_gaps_into_one_report() {
        let mut sc = scenario::validation_rig(0.1, 0.0, 303);
        let mut s = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
        let m = Measurer::new(TestKind::DualConnection)
            .with_samples(20)
            .with_baseline(true)
            .with_gap_sweep(vec![0, 50])
            .run(&mut s)
            .expect("measurement");
        assert_eq!(m.kind, TestKind::DualConnection);
        assert_eq!(m.verdict, Some(IpidVerdict::Amenable));
        assert_eq!(m.samples, 20);
        assert!(m.fwd.total > 0);
        assert!(m.baseline_rev.is_some());
        assert_eq!(m.gap_points.len(), 2);
        // The amenability validation ran once; the gap sweep reused the
        // two measurement connections instead of re-handshaking.
        assert_eq!(s.stats().validations, 1);
        assert!(s.stats().reused >= 2, "stats {:?}", s.stats());
    }
}
