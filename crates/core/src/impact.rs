//! Protocol-impact analysis — the *reason* the paper wants reordering
//! measured at all (§I): "Using the distribution it is possible to
//! predict how different protocols and applications would be impacted
//! by the reordering process, without needing to construct a unique
//! test (e.g., SACK blocks) for each protocol."
//!
//! Two consumers are modeled:
//!
//! * **TCP fast retransmit** ([`tcp`]): a reordering event whose extent
//!   reaches the duplicate-ACK threshold is misread as a loss, forcing
//!   a spurious retransmission and a congestion-window cut. Includes a
//!   Blanton-Allman-style adaptive threshold (the class of "proposals
//!   to create protocols that adapt to reordering" the paper says need
//!   this data).
//! * **Interactive media playout** ([`voip`]): late (reordered) packets
//!   miss their playout deadline unless the jitter buffer is deepened
//!   ("interactive streaming media protocols ... assume that sequencing
//!   errors are sufficiently rare", §I).
//!
//! Both consume a [`StreamObservation`]: a numbered packet stream
//! pushed through a simulated path, with ground-truth arrival order and
//! timing from the capture taps.

use crate::scenario::Scenario;
use reorder_netsim::SimTime;
use reorder_wire::{PacketBuilder, TcpFlags};
use std::time::Duration;

/// A transmitted stream and what arrived: sequence values in arrival
/// order with arrival timestamps, plus the send schedule.
#[derive(Debug, Clone)]
pub struct StreamObservation {
    /// Number of packets sent (sequence values `0..sent`).
    pub sent: usize,
    /// Inter-packet send gap.
    pub gap: Duration,
    /// Send time of packet `k` (index = k).
    pub send_times: Vec<SimTime>,
    /// `(sequence, arrival_time)` in arrival order.
    pub arrivals: Vec<(u64, SimTime)>,
}

impl StreamObservation {
    /// Arrival order of sequence values.
    pub fn arrival_order(&self) -> Vec<u64> {
        self.arrivals.iter().map(|&(s, _)| s).collect()
    }

    /// Fraction of packets lost in transit.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.arrivals.len() as f64 / self.sent as f64
        }
    }

    /// One-way transit time of each arrived packet.
    pub fn transits(&self) -> Vec<Duration> {
        self.arrivals
            .iter()
            .map(|&(s, at)| at.since(self.send_times[s as usize]))
            .collect()
    }
}

/// Push `n` equally-sized, `gap`-spaced packets through a scenario's
/// path and observe them at the target via the capture tap. Packets are
/// raw numbered segments (sequence = index), so the observation is a
/// pure property of the path, untangled from any transport dynamics —
/// precisely the controlled load the paper's metric is defined over.
pub fn observe_stream(
    sc: &mut Scenario,
    n: usize,
    gap: Duration,
    wire_size: usize,
) -> StreamObservation {
    let target = sc.target;
    let local = sc.prober.local_addr;
    let mut send_times = Vec::with_capacity(n);
    for k in 0..n {
        let ipid = sc.prober.alloc_ipid();
        let pkt = PacketBuilder::tcp()
            .src(local, 40_000)
            .dst(target, 33_333) // not a listening port: host stays silent
            .seq(k as u32)
            .flags(TcpFlags::ACK)
            .ipid(ipid)
            .pad_to(wire_size)
            .build();
        send_times.push(sc.prober.now());
        sc.prober.send(pkt);
        if !gap.is_zero() {
            sc.prober.run_for(gap);
        }
    }
    sc.prober.run_for(Duration::from_millis(500));
    let trace = sc.merged_server_rx();
    let arrivals = trace
        .0
        .iter()
        .filter(|r| {
            r.pkt
                .tcp()
                .is_some_and(|t| t.dst_port == 33_333 && t.src_port == 40_000)
        })
        .map(|r| (u64::from(r.pkt.tcp().expect("tcp").seq.raw()), r.time))
        .collect();
    StreamObservation {
        sent: n,
        gap,
        send_times,
        arrivals,
    }
}

/// TCP fast-retransmit impact.
pub mod tcp {
    /// For every packet, the number of *later-sent* packets that
    /// arrived before it — each such packet generates one duplicate
    /// ACK at a TCP receiver while the late packet is missing.
    pub fn dup_acks_per_packet(arrival_order: &[u64]) -> Vec<(u64, usize)> {
        arrival_order
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let dups = arrival_order[..i].iter().filter(|&&e| e > s).count();
                (s, dups)
            })
            .collect()
    }

    /// Count reordering events that a sender with duplicate-ACK
    /// threshold `dupthresh` would misinterpret as losses — the
    /// spurious fast retransmits of §I ("reordering events can be
    /// misinterpreted as congestion signals").
    pub fn spurious_fast_retransmits(arrival_order: &[u64], dupthresh: usize) -> usize {
        dup_acks_per_packet(arrival_order)
            .iter()
            .filter(|&&(_, dups)| dups >= dupthresh)
            .count()
    }

    /// Outcome of the adaptive-threshold simulation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct AdaptiveOutcome {
        /// Spurious fast retransmits still triggered.
        pub spurious: usize,
        /// Final threshold after adaptation.
        pub final_dupthresh: usize,
    }

    /// Blanton-Allman-style adaptation ("On Making TCP More Robust to
    /// Packet Reordering"): start at `initial`; each time a
    /// retransmission is discovered to be spurious (the "lost" packet
    /// arrives after all), raise the threshold to one more than the
    /// duplicate-ACK count that triggered it.
    pub fn adaptive_fast_retransmits(arrival_order: &[u64], initial: usize) -> AdaptiveOutcome {
        let mut thresh = initial;
        let mut spurious = 0;
        for (_, dups) in dup_acks_per_packet(arrival_order) {
            if dups >= thresh {
                spurious += 1;
                thresh = dups + 1; // the packet did arrive: adapt upward
            }
        }
        AdaptiveOutcome {
            spurious,
            final_dupthresh: thresh,
        }
    }

    /// First-order goodput multiplier for a window-limited sender that
    /// halves its congestion window on each (spurious) fast retransmit
    /// and grows it back linearly: with a spurious-event probability
    /// `p` per packet and window `w`, the classic 1/sqrt rule gives
    /// throughput ∝ 1/sqrt(p) capped at the window-limited rate. The
    /// returned value is in (0, 1]: the fraction of loss-free goodput
    /// retained.
    pub fn relative_goodput(spurious_per_packet: f64, window_pkts: f64) -> f64 {
        assert!((0.0..=1.0).contains(&spurious_per_packet));
        assert!(window_pkts >= 1.0);
        // reorder-lint: allow(float-eq, exact-zero fast path; caller-supplied probability of exactly 0.0 means no spurious events)
        if spurious_per_packet == 0.0 {
            return 1.0;
        }
        // Standard TCP throughput ≈ (1/RTT) * sqrt(3/(2p)); the
        // window-limited ceiling is w/RTT. Ratio, capped at 1.
        let unconstrained = (3.0 / (2.0 * spurious_per_packet)).sqrt();
        (unconstrained / window_pkts).min(1.0)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn in_order_stream_has_no_dup_acks() {
            let order: Vec<u64> = (0..50).collect();
            assert!(dup_acks_per_packet(&order).iter().all(|&(_, d)| d == 0));
            assert_eq!(spurious_fast_retransmits(&order, 3), 0);
        }

        #[test]
        fn simple_swap_generates_one_dup_ack() {
            // 0,2,1,3: while 1 is missing, 2 arrives → one dup ACK.
            let order = [0u64, 2, 1, 3];
            let d = dup_acks_per_packet(&order);
            assert_eq!(d[2], (1, 1));
            assert_eq!(spurious_fast_retransmits(&order, 3), 0, "below threshold");
            assert_eq!(spurious_fast_retransmits(&order, 1), 1);
        }

        #[test]
        fn deep_reordering_triggers_fast_retransmit() {
            // 1 is overtaken by 2,3,4: three dup ACKs = default thresh.
            let order = [0u64, 2, 3, 4, 1, 5];
            assert_eq!(spurious_fast_retransmits(&order, 3), 1);
        }

        #[test]
        fn adaptive_threshold_learns() {
            // Repeated extent-3 events: static thresh 3 fires each time;
            // adaptive fires once then raises to 4.
            let mut order = Vec::new();
            for b in 0..5u64 {
                let base = b * 5;
                order.extend([base, base + 2, base + 3, base + 4, base + 1]);
            }
            assert_eq!(spurious_fast_retransmits(&order, 3), 5);
            let a = adaptive_fast_retransmits(&order, 3);
            assert_eq!(a.spurious, 1);
            assert_eq!(a.final_dupthresh, 4);
        }

        #[test]
        fn goodput_model_monotone() {
            let g0 = relative_goodput(0.0, 64.0);
            let g1 = relative_goodput(0.001, 64.0);
            let g2 = relative_goodput(0.05, 64.0);
            assert_eq!(g0, 1.0);
            assert!(g1 > g2);
            assert!(g2 > 0.0 && g2 < 1.0);
        }

        #[test]
        #[should_panic]
        fn goodput_rejects_bad_probability() {
            relative_goodput(1.5, 10.0);
        }
    }
}

/// Interactive media (VoIP) playout impact.
pub mod voip {
    use super::StreamObservation;
    use std::time::Duration;

    /// Fraction of *sent* packets unusable at playout depth `depth`:
    /// lost packets plus packets whose transit exceeded the minimum
    /// observed transit by more than `depth`.
    pub fn unusable_fraction(obs: &StreamObservation, depth: Duration) -> f64 {
        if obs.sent == 0 {
            return 0.0;
        }
        let transits = obs.transits();
        let Some(&base) = transits.iter().min() else {
            return 1.0; // everything lost
        };
        let late = transits.iter().filter(|&&t| t > base + depth).count();
        let lost = obs.sent - transits.len();
        (late + lost) as f64 / obs.sent as f64
    }

    /// Smallest playout depth keeping the unusable fraction at or below
    /// `target` (ignoring outright loss, which no buffer fixes).
    /// Returns `None` if even the maximum observed lateness cannot meet
    /// the target (i.e. loss alone exceeds it).
    pub fn min_depth_for(obs: &StreamObservation, target: f64) -> Option<Duration> {
        let transits = obs.transits();
        let base = *transits.iter().min()?;
        let mut lateness: Vec<Duration> = transits.iter().map(|&t| t - base).collect();
        lateness.sort_unstable();
        // Depth d admits all packets with lateness <= d. Walk candidate
        // depths (the observed lateness values) from small to large.
        lateness
            .iter()
            .find(|&&d| unusable_fraction(obs, d) <= target)
            .copied()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use reorder_netsim::SimTime;

        fn obs(sent: usize, arrivals: Vec<(u64, u64)>) -> StreamObservation {
            StreamObservation {
                sent,
                gap: Duration::from_millis(20),
                send_times: (0..sent)
                    .map(|k| SimTime::from_millis(20 * k as u64))
                    .collect(),
                arrivals: arrivals
                    .into_iter()
                    .map(|(s, ms)| (s, SimTime::from_millis(ms)))
                    .collect(),
            }
        }

        #[test]
        fn punctual_stream_needs_no_buffer() {
            // Every packet takes exactly 50 ms.
            let o = obs(5, vec![(0, 50), (1, 70), (2, 90), (3, 110), (4, 130)]);
            assert_eq!(unusable_fraction(&o, Duration::ZERO), 0.0);
            assert_eq!(min_depth_for(&o, 0.0), Some(Duration::ZERO));
        }

        #[test]
        fn late_packet_counted_until_buffer_absorbs_it() {
            // Packet 1 takes 90 ms instead of 50.
            let o = obs(3, vec![(0, 50), (2, 90), (1, 110)]);
            assert!((unusable_fraction(&o, Duration::ZERO) - 1.0 / 3.0).abs() < 1e-9);
            assert_eq!(unusable_fraction(&o, Duration::from_millis(40)), 0.0);
            assert_eq!(min_depth_for(&o, 0.0), Some(Duration::from_millis(40)));
        }

        #[test]
        fn loss_cannot_be_buffered_away() {
            let o = obs(4, vec![(0, 50), (1, 70), (3, 110)]); // 2 lost
            assert!((unusable_fraction(&o, Duration::from_secs(1)) - 0.25).abs() < 1e-9);
            assert_eq!(min_depth_for(&o, 0.1), None);
            assert_eq!(min_depth_for(&o, 0.25), Some(Duration::ZERO));
        }

        #[test]
        fn empty_observation() {
            let o = obs(0, vec![]);
            assert_eq!(unusable_fraction(&o, Duration::ZERO), 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use reorder_netsim::pipes::CrossTraffic;

    #[test]
    fn observe_stream_counts_and_orders() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 300);
        let obs = observe_stream(&mut sc, 40, Duration::from_micros(50), 200);
        assert_eq!(obs.sent, 40);
        assert_eq!(obs.arrivals.len(), 40);
        assert_eq!(obs.arrival_order(), (0..40).collect::<Vec<u64>>());
        assert_eq!(obs.loss_fraction(), 0.0);
        // Transit times are positive and identical on a clean path.
        let t = obs.transits();
        assert!(t.iter().all(|&d| d > Duration::ZERO));
        assert_eq!(t.iter().min(), t.iter().max());
    }

    #[test]
    fn reordered_stream_shows_dup_acks_end_to_end() {
        let mut sc = scenario::validation_rig(0.4, 0.0, 301);
        let obs = observe_stream(&mut sc, 200, Duration::ZERO, 40);
        let order = obs.arrival_order();
        let spurious1 = tcp::spurious_fast_retransmits(&order, 1);
        assert!(spurious1 > 20, "swaps must show up ({spurious1})");
        // A single adjacent swap yields exactly one dup ACK, so the
        // default threshold of 3 fires rarely on this channel.
        let spurious3 = tcp::spurious_fast_retransmits(&order, 3);
        assert!(spurious3 < spurious1 / 4);
    }

    #[test]
    fn striped_path_impact_depends_on_spacing() {
        let mut sc = scenario::striped_path(CrossTraffic::backbone(), 302);
        let close = observe_stream(&mut sc, 400, Duration::ZERO, 40);
        let mut sc = scenario::striped_path(CrossTraffic::backbone(), 303);
        let spread = observe_stream(&mut sc, 400, Duration::from_micros(100), 40);
        let c = tcp::spurious_fast_retransmits(&close.arrival_order(), 1);
        let s = tcp::spurious_fast_retransmits(&spread.arrival_order(), 1);
        assert!(
            c > s,
            "back-to-back stream must suffer more reordering ({c} vs {s})"
        );
    }
}
