//! The IPPM reordering metrics that grew out of this line of work.
//!
//! The paper cites the then-current IETF draft \[8\]
//! (`draft-morton-ippm-nonrev-reordering-00`), which — influenced by
//! exactly the measurement difficulties this paper catalogs — became
//! **RFC 4737, "Packet Reordering Metrics"**. This module implements
//! the RFC's metric suite over arrival observations so results from
//! the four techniques (and from raw stream observations) can be
//! reported in the standardized vocabulary:
//!
//! * Type-P-Reordered (the non-reversing-order rule) and the reordered
//!   ratio (§3 of the RFC),
//! * reordering extent (§4.2),
//! * late-time offset (§4.3) — requires arrival timestamps,
//! * n-reordering (§5.4) — the TCP-relevant degree: a packet is
//!   n-reordered if n later-sent packets preceded it,
//! * reordering-free runs (§5.3),
//! * reordering gaps (§5.2).

use reorder_netsim::SimTime;
use std::time::Duration;

/// One observed arrival: the source sequence value (monotone at the
/// sender) and the arrival timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Sender-assigned sequence value.
    pub seq: u64,
    /// Arrival instant.
    pub time: SimTime,
}

/// The full RFC 4737 report for one observation window.
#[derive(Debug, Clone)]
pub struct Rfc4737Report {
    /// Packets observed.
    pub received: usize,
    /// Type-P-Reordered flags per arrival.
    pub reordered: Vec<bool>,
    /// Reordered ratio (§3.3).
    pub ratio: f64,
    /// Reordering extent per reordered arrival (0 for in-order).
    pub extents: Vec<usize>,
    /// Late-time offset per reordered arrival (zero for in-order):
    /// how much later the packet arrived than the earlier-arrived
    /// packet with the next-higher sequence value.
    pub late_offsets: Vec<Duration>,
    /// Maximum n for which each arrival is n-reordered (0 = in order).
    pub n_reordering: Vec<usize>,
    /// Lengths of maximal runs of consecutive in-order arrivals.
    pub free_runs: Vec<usize>,
    /// Arrival-index gaps between consecutive reordering events.
    pub gaps: Vec<usize>,
}

impl Rfc4737Report {
    /// Largest observed extent.
    pub fn max_extent(&self) -> usize {
        self.extents.iter().copied().max().unwrap_or(0)
    }

    /// Degree of n-reordering for the whole sample (§5.4): the largest
    /// n such that some packet is n-reordered.
    pub fn degree(&self) -> usize {
        self.n_reordering.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of packets that are at least `n`-reordered — directly
    /// comparable to a TCP dupthresh of `n`.
    pub fn at_least_n_reordered(&self, n: usize) -> f64 {
        if self.received == 0 {
            return 0.0;
        }
        self.n_reordering.iter().filter(|&&d| d >= n).count() as f64 / self.received as f64
    }

    /// Mean reordering-free run length (§5.3).
    pub fn mean_free_run(&self) -> f64 {
        if self.free_runs.is_empty() {
            0.0
        } else {
            self.free_runs.iter().sum::<usize>() as f64 / self.free_runs.len() as f64
        }
    }
}

/// Compute the RFC 4737 metrics over arrivals (in arrival order).
pub fn analyze(arrivals: &[Arrival]) -> Rfc4737Report {
    let n = arrivals.len();
    let mut reordered = Vec::with_capacity(n);
    let mut extents = Vec::with_capacity(n);
    let mut late_offsets = Vec::with_capacity(n);
    let mut n_reordering = Vec::with_capacity(n);
    let mut max_seen: Option<u64> = None;

    for (i, a) in arrivals.iter().enumerate() {
        let is_reordered = max_seen.is_some_and(|m| a.seq < m);
        reordered.push(is_reordered);
        if !is_reordered {
            max_seen = Some(a.seq);
            extents.push(0);
            late_offsets.push(Duration::ZERO);
            n_reordering.push(0);
            continue;
        }
        // Extent: distance back to the earliest arrival with a larger
        // sequence value.
        let ext = arrivals[..i]
            .iter()
            .position(|e| e.seq > a.seq)
            .map(|j| i - j)
            .unwrap_or(0);
        extents.push(ext);
        // Late time: lateness relative to the earliest-arrived packet
        // with the next-higher sequence value (the RFC's "earliest
        // packet that caused this one to be declared reordered" is the
        // one carrying max_seen at smallest arrival index > threshold;
        // we use the packet with the smallest seq greater than ours,
        // which bounds the same quantity and is well-defined).
        let blocker = arrivals[..i]
            .iter()
            .filter(|e| e.seq > a.seq)
            .min_by_key(|e| e.seq);
        late_offsets.push(match blocker {
            Some(b) => a.time.since(b.time),
            None => Duration::ZERO,
        });
        // n-reordering: number of later-sent packets that arrived
        // before this one.
        let degree = arrivals[..i].iter().filter(|e| e.seq > a.seq).count();
        n_reordering.push(degree);
    }

    // Free runs and gaps.
    let mut free_runs = Vec::new();
    let mut gaps = Vec::new();
    let mut run = 0usize;
    let mut last_event: Option<usize> = None;
    for (i, &r) in reordered.iter().enumerate() {
        if r {
            if run > 0 {
                free_runs.push(run);
            }
            run = 0;
            if let Some(prev) = last_event {
                gaps.push(i - prev);
            }
            last_event = Some(i);
        } else {
            run += 1;
        }
    }
    if run > 0 {
        free_runs.push(run);
    }

    let events = reordered.iter().filter(|&&r| r).count();
    Rfc4737Report {
        received: n,
        ratio: if n == 0 {
            0.0
        } else {
            events as f64 / n as f64
        },
        reordered,
        extents,
        late_offsets,
        n_reordering,
        free_runs,
        gaps,
    }
}

/// Build arrivals from a [`crate::impact::StreamObservation`].
pub fn from_observation(obs: &crate::impact::StreamObservation) -> Vec<Arrival> {
    obs.arrivals
        .iter()
        .map(|&(seq, time)| Arrival { seq, time })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(seqs_times: &[(u64, u64)]) -> Vec<Arrival> {
        seqs_times
            .iter()
            .map(|&(s, t)| Arrival {
                seq: s,
                time: SimTime::from_micros(t),
            })
            .collect()
    }

    #[test]
    fn in_order_stream_is_clean() {
        let r = analyze(&arr(&[(0, 0), (1, 10), (2, 20), (3, 30)]));
        assert_eq!(r.ratio, 0.0);
        assert_eq!(r.degree(), 0);
        assert_eq!(r.max_extent(), 0);
        assert_eq!(r.free_runs, vec![4]);
        assert!(r.gaps.is_empty());
        assert_eq!(r.mean_free_run(), 4.0);
    }

    #[test]
    fn single_swap() {
        // sent 0,1,2,3; arrived 0,2,1,3.
        let r = analyze(&arr(&[(0, 0), (2, 10), (1, 20), (3, 30)]));
        assert_eq!(r.reordered, vec![false, false, true, false]);
        assert_eq!(r.extents, vec![0, 0, 1, 0]);
        assert_eq!(r.n_reordering, vec![0, 0, 1, 0]);
        assert!((r.ratio - 0.25).abs() < 1e-12);
        // Packet 1 arrived 10us after packet 2 (its blocker).
        assert_eq!(r.late_offsets[2], Duration::from_micros(10));
        assert_eq!(r.free_runs, vec![2, 1]);
        assert_eq!(r.degree(), 1);
    }

    #[test]
    fn deep_reordering_degree() {
        // 1 overtaken by 2,3,4: 3-reordered (the TCP-dupthresh view).
        let r = analyze(&arr(&[(0, 0), (2, 1), (3, 2), (4, 3), (1, 9)]));
        assert_eq!(r.n_reordering[4], 3);
        assert_eq!(r.degree(), 3);
        assert_eq!(r.extents[4], 3);
        assert!((r.at_least_n_reordered(3) - 0.2).abs() < 1e-12);
        assert_eq!(r.at_least_n_reordered(4), 0.0);
        // Late offset measured against the *smallest* larger seq (2).
        assert_eq!(r.late_offsets[4], Duration::from_micros(8));
    }

    #[test]
    fn gaps_between_events() {
        // Events at arrival indices 2 and 5.
        let r = analyze(&arr(&[(0, 0), (2, 1), (1, 2), (3, 3), (5, 4), (4, 5)]));
        assert_eq!(r.reordered, vec![false, false, true, false, false, true]);
        assert_eq!(r.gaps, vec![3]);
        assert_eq!(r.free_runs, vec![2, 2]);
    }

    #[test]
    fn burst_of_late_packets() {
        // 0,5 arrive, then 1..4 all late with increasing degree count.
        let r = analyze(&arr(&[(0, 0), (5, 1), (1, 2), (2, 3), (3, 4), (4, 5)]));
        assert_eq!(r.reordered[2..], [true, true, true, true]);
        // Each late packet has exactly one later-sent predecessor (5).
        assert_eq!(&r.n_reordering[2..], &[1, 1, 1, 1]);
        assert_eq!(r.degree(), 1);
        assert!((r.ratio - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let r = analyze(&[]);
        assert_eq!(r.received, 0);
        assert_eq!(r.ratio, 0.0);
        assert_eq!(r.degree(), 0);
        assert_eq!(r.at_least_n_reordered(1), 0.0);
        assert_eq!(r.mean_free_run(), 0.0);
    }

    #[test]
    fn agrees_with_metrics_module() {
        // The simple flags in `metrics` and the RFC analysis must agree.
        let seqs: Vec<u64> = vec![0, 3, 1, 4, 2, 5, 6, 9, 7, 8];
        let arrivals: Vec<Arrival> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| Arrival {
                seq: s,
                time: SimTime::from_micros(i as u64),
            })
            .collect();
        let r = analyze(&arrivals);
        assert_eq!(r.reordered, crate::metrics::non_reversing_reordered(&seqs));
        assert_eq!(r.extents, crate::metrics::reordering_extents(&seqs));
    }

    #[test]
    fn end_to_end_from_stream_observation() {
        use crate::impact::observe_stream;
        use crate::scenario;
        use reorder_netsim::pipes::CrossTraffic;

        let mut sc = scenario::striped_path(CrossTraffic::backbone(), 500);
        let obs = observe_stream(&mut sc, 500, Duration::ZERO, 40);
        let r = analyze(&from_observation(&obs));
        assert_eq!(r.received, 500);
        assert!(r.ratio > 0.01, "striped path must reorder ({})", r.ratio);
        // The n≥3 fraction matches the TCP analysis in `impact`.
        let order = obs.arrival_order();
        let spurious = crate::impact::tcp::spurious_fast_retransmits(&order, 3);
        assert_eq!(
            (r.at_least_n_reordered(3) * r.received as f64).round() as usize,
            spurious
        );
        // Late offsets are small (queue imbalance scale, < 1 ms).
        assert!(r.late_offsets.iter().all(|&d| d < Duration::from_millis(1)));
    }
}
