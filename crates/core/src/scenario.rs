//! Canned simulation scenarios: the controlled validation rig of §IV-A,
//! the load-balanced and striped paths of §III-C/§IV-C, and the
//! 50-host Internet-like population of §IV-B.

use crate::probe::Prober;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_netsim::pipes::DummynetConfig;
pub use reorder_netsim::pipes::FaultClass;
use reorder_netsim::pipes::{
    ArqConfig, BalanceMode, CrossTraffic, CrossTrafficModel, DelayJitter, DummynetReorder,
    FaultGate, LoadBalancer, MultipathRoute, RandomLoss, SplitMode, StripingLink, WirelessArq,
    DOWN, UP,
};
use reorder_netsim::{
    rng as simrng, LinkParams, Mailbox, NodeId, Port, Simulator, Trace, TraceHandle,
};
use reorder_tcpstack::{HostPersonality, TcpHost, TcpHostConfig};
use reorder_wire::Ipv4Addr4;
use std::time::Duration;

/// Simulation format version: which model generation a scenario's
/// stochastic path elements run.
///
/// Campaign output is a deterministic function of the configuration,
/// so swapping a model's RNG-draw pattern is an output break even when
/// the statistics are preserved. Breaks therefore land as a new
/// version behind this switch (the survey's `--sim-version` flag), and
/// the previous version stays constructible so historical reports
/// remain reproducible byte for byte.
///
/// * [`V1`](SimVersion::V1) — the striping pipe replays its Poisson
///   cross-traffic history per arrival
///   ([`CrossTrafficModel::Replay`]).
/// * [`V2`](SimVersion::V2) — the striping pipe draws the backlog from
///   the stationary M/G/1 workload distribution in O(1)
///   ([`CrossTrafficModel::Stationary`]); statistically equivalent
///   (same stationary law, same §IV-C decay within test tolerance) and
///   ~2x faster on full campaigns. The default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimVersion {
    /// Campaign format v1: exact per-arrival cross-traffic replay.
    V1,
    /// Campaign format v2: O(1) stationary workload draws (default).
    #[default]
    V2,
}

impl SimVersion {
    /// The cross-traffic backlog model this version runs in
    /// [`StripingLink`]s.
    pub fn cross_traffic_model(self) -> CrossTrafficModel {
        match self {
            SimVersion::V1 => CrossTrafficModel::Replay,
            SimVersion::V2 => CrossTrafficModel::Stationary,
        }
    }
}

impl std::fmt::Display for SimVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimVersion::V1 => "1",
            SimVersion::V2 => "2",
        })
    }
}

impl std::str::FromStr for SimVersion {
    type Err = String;

    /// Accepts the numerals the CLI exposes (`1`/`2`, also `v1`/`v2`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "1" | "v1" => Ok(SimVersion::V1),
            "2" | "v2" => Ok(SimVersion::V2),
            other => Err(format!("unknown sim version `{other}` (accepted: 1, 2)")),
        }
    }
}

/// Probe host address used by every scenario.
pub const PROBE_ADDR: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);
/// Target (virtual) address used by single-target scenarios.
pub const TARGET_ADDR: Ipv4Addr4 = Ipv4Addr4::new(198, 18, 0, 2);

/// A built scenario: the prober plus the capture taps needed for
/// ground-truth validation (§IV-A).
pub struct Scenario {
    /// The probing agent (owns the simulator).
    pub prober: Prober,
    /// Target address to measure.
    pub target: Ipv4Addr4,
    /// Deliveries to each server/backend node (arrival-order truth).
    pub server_rx: Vec<TraceHandle>,
    /// Transmissions by each server/backend node (send-order truth).
    pub server_tx: Vec<TraceHandle>,
    /// Deliveries to the probe host.
    pub prober_rx: TraceHandle,
}

impl Scenario {
    /// Merge the per-backend server receive traces into one
    /// time-ordered trace.
    pub fn merged_server_rx(&self) -> Trace {
        merge_traces(&self.server_rx)
    }

    /// Merge the per-backend server transmit traces.
    pub fn merged_server_tx(&self) -> Trace {
        merge_traces(&self.server_tx)
    }

    /// Snapshot the prober receive trace.
    pub fn prober_trace(&self) -> Trace {
        Trace::snapshot(&self.prober_rx)
    }
}

/// Merge several live traces into one, ordered by time. Each input
/// trace is already time-ordered (the capture taps append in event
/// order), so this is a reserve-sized k-way merge rather than a
/// flatten-and-sort. Ties break stably: earlier handles in the slice
/// win, and within one handle the capture order is preserved.
pub fn merge_traces(handles: &[TraceHandle]) -> Trace {
    let borrowed: Vec<_> = handles.iter().map(|h| h.borrow()).collect();
    let total: usize = borrowed.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursor = vec![0usize; borrowed.len()];
    for _ in 0..total {
        // k is tiny (one entry per backend), so a linear min scan beats
        // a heap here.
        let mut best: Option<usize> = None;
        for (k, t) in borrowed.iter().enumerate() {
            if cursor[k] < t.len()
                && best.is_none_or(|b| t[cursor[k]].time < borrowed[b][cursor[b]].time)
            {
                best = Some(k);
            }
        }
        let k = best.expect("total bounds the loop");
        out.push(borrowed[k][cursor[k]].clone());
        cursor[k] += 1;
    }
    Trace(out)
}

fn fast_lan() -> LinkParams {
    LinkParams {
        bits_per_sec: 1_000_000_000,
        propagation: Duration::from_micros(50),
        queue_limit: None,
    }
}

fn wan(ms: u64) -> LinkParams {
    LinkParams {
        bits_per_sec: 100_000_000,
        propagation: Duration::from_millis(ms),
        queue_limit: None,
    }
}

/// The §IV-A controlled rig: probe — modified dummynet — server, with
/// independent forward/reverse adjacent-swap probabilities, default
/// (FreeBSD) personality.
pub fn validation_rig(fwd_swap: f64, rev_swap: f64, seed: u64) -> Scenario {
    validation_rig_with(fwd_swap, rev_swap, HostPersonality::freebsd4(), seed)
}

/// [`validation_rig`] with an explicit host personality.
pub fn validation_rig_with(
    fwd_swap: f64,
    rev_swap: f64,
    personality: HostPersonality,
    seed: u64,
) -> Scenario {
    let mut sim = Simulator::new(seed);
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let pipe = sim.add_node(Box::new(DummynetReorder::new(
        DummynetConfig {
            fwd_swap,
            rev_swap,
            max_hold: Duration::from_millis(50),
        },
        seed,
        "dummynet",
    )));
    let host = TcpHost::new(
        TcpHostConfig::web_server(TARGET_ADDR, personality),
        sim.master_seed(),
    );
    let srv = sim.add_node(Box::new(host));
    // "a machine in close proximity ... was chosen as the remote host to
    // keep the amount of real reordering at a minimum."
    sim.connect(me, Port(0), pipe, UP, fast_lan());
    sim.connect(pipe, DOWN, srv, Port(0), fast_lan());
    let server_rx = sim.tap_rx(srv);
    let server_tx = sim.tap_tx(srv);
    let prober_rx = sim.tap_rx(me);
    Scenario {
        prober: Prober::new(sim, me, queue, PROBE_ADDR),
        target: TARGET_ADDR,
        server_rx: vec![server_rx],
        server_tx: vec![server_tx],
        prober_rx,
    }
}

/// A validation rig with random loss instead of reordering.
pub fn lossy_rig(fwd_loss: f64, rev_loss: f64, seed: u64) -> Scenario {
    let mut sim = Simulator::new(seed);
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let pipe = sim.add_node(Box::new(RandomLoss::new(fwd_loss, rev_loss, seed, "loss")));
    let host = TcpHost::new(
        TcpHostConfig::web_server(TARGET_ADDR, HostPersonality::freebsd4()),
        sim.master_seed(),
    );
    let srv = sim.add_node(Box::new(host));
    sim.connect(me, Port(0), pipe, UP, fast_lan());
    sim.connect(pipe, DOWN, srv, Port(0), fast_lan());
    let server_rx = sim.tap_rx(srv);
    let server_tx = sim.tap_tx(srv);
    let prober_rx = sim.tap_rx(me);
    Scenario {
        prober: Prober::new(sim, me, queue, PROBE_ADDR),
        target: TARGET_ADDR,
        server_rx: vec![server_rx],
        server_tx: vec![server_tx],
        prober_rx,
    }
}

/// A load-balanced site (Fig. 3): probe — dummynet — per-flow balancer —
/// `backends` hosts sharing the virtual address but each with its own
/// IPID space. This is the configuration that silently corrupts the
/// Dual Connection Test and motivates the SYN Test.
pub fn load_balanced(
    fwd_swap: f64,
    rev_swap: f64,
    backends: usize,
    personality: HostPersonality,
    seed: u64,
) -> Scenario {
    let mut sim = Simulator::new(seed);
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let pipe = sim.add_node(Box::new(DummynetReorder::new(
        DummynetConfig {
            fwd_swap,
            rev_swap,
            max_hold: Duration::from_millis(50),
        },
        seed,
        "dummynet",
    )));
    let lb = sim.add_node(Box::new(LoadBalancer::new(BalanceMode::PerFlow, backends)));
    sim.connect(me, Port(0), pipe, UP, wan(10));
    sim.connect(pipe, DOWN, lb, Port(0), fast_lan());
    let mut server_rx = Vec::new();
    let mut server_tx = Vec::new();
    for b in 0..backends {
        // Each backend is a distinct host instance (own IPID space),
        // configured with the shared virtual address.
        let mut host_cfg = TcpHostConfig::web_server(TARGET_ADDR, personality.clone());
        host_cfg.background_load = 0.5;
        let host = TcpHost::new(host_cfg, simrng::derive_seed(seed, &format!("backend{b}")));
        let node = sim.add_node(Box::new(host));
        sim.connect(lb, Port(1 + b), node, Port(0), fast_lan());
        server_rx.push(sim.tap_rx(node));
        server_tx.push(sim.tap_tx(node));
    }
    let prober_rx = sim.tap_rx(me);
    Scenario {
        prober: Prober::new(sim, me, queue, PROBE_ADDR),
        target: TARGET_ADDR,
        server_rx,
        server_tx,
        prober_rx,
    }
}

/// The §IV-C physical-reordering path: probe — N-way striped link with
/// Poisson cross-traffic — server. Reordering probability decays with
/// the inter-packet gap; use with [`crate::metrics::GapProfile`].
/// Runs the default [`SimVersion`] (v2, stationary backlog draws); use
/// [`striped_path_with`] for v1's replay model.
pub fn striped_path(cross: CrossTraffic, seed: u64) -> Scenario {
    striped_path_with(
        2,
        1_000_000_000,
        cross,
        HostPersonality::freebsd4(),
        SimVersion::default(),
        seed,
    )
}

/// [`striped_path`] with explicit stripe width, per-link rate,
/// personality and simulation version.
pub fn striped_path_with(
    links: usize,
    bits_per_sec: u64,
    cross: CrossTraffic,
    personality: HostPersonality,
    version: SimVersion,
    seed: u64,
) -> Scenario {
    let mut sim = Simulator::new(seed);
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let stripe = sim.add_node(Box::new(StripingLink::new(
        links,
        bits_per_sec,
        Some(cross),
        version.cross_traffic_model(),
        seed,
        "stripe",
    )));
    let host = TcpHost::new(
        TcpHostConfig::web_server(TARGET_ADDR, personality),
        sim.master_seed(),
    );
    let srv = sim.add_node(Box::new(host));
    sim.connect(me, Port(0), stripe, UP, fast_lan());
    sim.connect(stripe, DOWN, srv, Port(0), fast_lan());
    let server_rx = sim.tap_rx(srv);
    let server_tx = sim.tap_tx(srv);
    let prober_rx = sim.tap_rx(me);
    Scenario {
        prober: Prober::new(sim, me, queue, PROBE_ADDR),
        target: TARGET_ADDR,
        server_rx: vec![server_rx],
        server_tx: vec![server_tx],
        prober_rx,
    }
}

/// Generic single-pipe path builder: probe — `pipe` — server. Used by
/// the mechanism-ablation experiments to compare reordering causes
/// under identical measurement procedures.
pub fn pipe_path(pipe: Box<dyn reorder_netsim::Device>, seed: u64) -> Scenario {
    let mut sim = Simulator::new(seed);
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let node = sim.add_node(pipe);
    let host = TcpHost::new(
        TcpHostConfig::web_server(TARGET_ADDR, HostPersonality::freebsd4()),
        sim.master_seed(),
    );
    let srv = sim.add_node(Box::new(host));
    sim.connect(me, Port(0), node, UP, fast_lan());
    sim.connect(node, DOWN, srv, Port(0), fast_lan());
    let server_rx = sim.tap_rx(srv);
    let server_tx = sim.tap_tx(srv);
    let prober_rx = sim.tap_rx(me);
    Scenario {
        prober: Prober::new(sim, me, queue, PROBE_ADDR),
        target: TARGET_ADDR,
        server_rx: vec![server_rx],
        server_tx: vec![server_tx],
        prober_rx,
    }
}

/// A packet-sprayed multipath path (§V cause): two routes whose one-way
/// delays differ by `skew`, with per-packet random assignment (the
/// reordering-prone configuration; per-flow hashing never reorders).
pub fn multipath_path(skew: Duration, seed: u64) -> Scenario {
    pipe_path(
        Box::new(MultipathRoute::with_seed(
            SplitMode::Random,
            vec![
                Duration::from_micros(100),
                Duration::from_micros(100) + skew,
            ],
            seed,
            "multipath",
        )),
        seed,
    )
}

/// A wireless-ARQ path (§V cause): selective-repeat link-layer
/// retransmission that lets later frames overtake a retried one.
pub fn wireless_path(cfg: ArqConfig, seed: u64) -> Scenario {
    pipe_path(Box::new(WirelessArq::new(cfg, seed, "arq")), seed)
}

/// Which reordering mechanism sits in a population host's path. The
/// §IV-B population is dummynet-style adjacent swaps; the campaign
/// engine (`reorder-survey`) draws from all of the §V causes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathMechanism {
    /// Modified-dummynet adjacent swaps at the spec's
    /// `fwd_reorder`/`rev_reorder` probabilities.
    Dummynet,
    /// An N-way striped link with Poisson cross-traffic (§IV-C).
    Striping {
        /// Number of parallel links.
        links: usize,
        /// Per-link rate in bits per second.
        bits_per_sec: u64,
    },
    /// Packet-sprayed multipath with a one-way delay skew between the
    /// two routes (§V).
    Multipath {
        /// Extra one-way delay of the slower route.
        skew: Duration,
    },
    /// Wireless link-layer ARQ without resequencing (§V).
    WirelessArq {
        /// Per-transmission frame error probability.
        frame_error: f64,
    },
}

impl PathMechanism {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PathMechanism::Dummynet => "dummynet",
            PathMechanism::Striping { .. } => "striping",
            PathMechanism::Multipath { .. } => "multipath",
            PathMechanism::WirelessArq { .. } => "arq",
        }
    }
}

/// Path characteristics of one simulated Internet host (for the §IV-B
/// population).
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Display name ("www.example0.com").
    pub name: String,
    /// OS behavior profile.
    pub personality: HostPersonality,
    /// Adjacent-swap probability, probe → host.
    pub fwd_reorder: f64,
    /// Adjacent-swap probability, host → probe.
    pub rev_reorder: f64,
    /// Packet loss probability (each direction).
    pub loss: f64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Constant per-path extra delay applied by the jitter stage
    /// (min == max, so it never reorders by itself — see
    /// [`internet_host`]).
    pub jitter: Duration,
    /// Number of load-balancer backends (1 = no balancer).
    pub backends: usize,
    /// Served object size in bytes.
    pub object_size: usize,
    /// The reordering mechanism in the path.
    pub mechanism: PathMechanism,
    /// Hostile-host fault injected directly in front of the host
    /// (`None` for the cooperative majority). See
    /// [`reorder_netsim::pipes::FaultGate`].
    pub fault: Option<FaultClass>,
    /// Simulation format version: selects the cross-traffic backlog
    /// model of striping paths (inert for the other mechanisms).
    pub sim_version: SimVersion,
}

impl HostSpec {
    /// A clean direct path (no loss, no reordering, one backend) — the
    /// base most tests and generators start from.
    pub fn clean(name: &str, personality: HostPersonality) -> Self {
        HostSpec {
            name: name.to_string(),
            personality,
            fwd_reorder: 0.0,
            rev_reorder: 0.0,
            loss: 0.0,
            delay: Duration::from_millis(10),
            jitter: Duration::from_micros(150),
            backends: 1,
            object_size: 12 * 1024,
            mechanism: PathMechanism::Dummynet,
            fault: None,
            sim_version: SimVersion::default(),
        }
    }
}

/// Generate the measurement population of §IV-B: `popular` well-known
/// sites (several behind load balancers, mixed OSes) plus `random`
/// hosts drawn from the personality/path distribution. Deterministic in
/// `seed`.
pub fn population(popular: usize, random: usize, seed: u64) -> Vec<HostSpec> {
    let mut rng: SmallRng = simrng::stream(seed, "population");
    let presets = HostPersonality::all_presets();
    // Personality mix weighted like the 2002 server population the
    // paper observed: mostly traditional global-IPID stacks, a sizable
    // Linux 2.4 contingent ("a constant IPID value of 0 from ... 9
    // hosts"), and a few random-IPID or hardened boxes.
    let weighted = |rng: &mut SmallRng| -> HostPersonality {
        let x: f64 = rng.gen();
        if x < 0.34 {
            HostPersonality::freebsd4()
        } else if x < 0.52 {
            HostPersonality::linux22()
        } else if x < 0.70 {
            HostPersonality::linux24()
        } else if x < 0.82 {
            HostPersonality::windows2000()
        } else if x < 0.94 {
            HostPersonality::solaris8()
        } else if x < 0.98 {
            HostPersonality::openbsd3()
        } else {
            HostPersonality::hardened()
        }
    };
    let mut specs = Vec::new();
    for i in 0..popular {
        let personality = presets[i % presets.len()].clone();
        // Popular sites: low loss, often load balanced, and ~40% of
        // paths see some reordering (matching the Fig. 5 headline).
        let reorders = rng.gen_bool(0.5);
        specs.push(HostSpec {
            name: format!("www.popular{i}.com"),
            personality,
            fwd_reorder: if reorders {
                rng.gen_range(0.005..0.15)
            } else {
                0.0
            },
            rev_reorder: if reorders && rng.gen_bool(0.5) {
                rng.gen_range(0.002..0.05)
            } else {
                0.0
            },
            loss: rng.gen_range(0.0..0.01),
            delay: Duration::from_millis(rng.gen_range(5..60)),
            jitter: Duration::from_micros(150),
            backends: if rng.gen_bool(0.4) { 4 } else { 1 },
            object_size: 16 * 1024,
            mechanism: PathMechanism::Dummynet,
            fault: None,
            sim_version: SimVersion::default(),
        });
    }
    for i in 0..random {
        let personality = weighted(&mut rng);
        let reorders = rng.gen_bool(0.4);
        specs.push(HostSpec {
            name: format!("host{i}.random.example"),
            personality,
            fwd_reorder: if reorders {
                rng.gen_range(0.002..0.25)
            } else {
                0.0
            },
            rev_reorder: if reorders && rng.gen_bool(0.4) {
                rng.gen_range(0.001..0.08)
            } else {
                0.0
            },
            loss: rng.gen_range(0.0..0.02),
            delay: Duration::from_millis(rng.gen_range(5..120)),
            jitter: Duration::from_micros(150),
            backends: if rng.gen_bool(0.1) { 2 } else { 1 },
            object_size: if rng.gen_bool(0.15) {
                256 // redirect-sized: defeats the transfer test (§III-E)
            } else {
                12 * 1024
            },
            mechanism: PathMechanism::Dummynet,
            fault: None,
            sim_version: SimVersion::default(),
        });
    }
    specs
}

/// A pool of recycled simulators for building successive scenarios
/// without rebuilding the world's allocations from scratch.
///
/// One finished scenario's [`Simulator`] — its event-queue buckets,
/// node/link/tap tables and scratch space — is handed back via
/// [`ScenarioPool::recycle`] and reset for the next build. A pooled
/// build is observationally identical to a fresh one
/// ([`Simulator::reset`]'s contract; the survey's pooled-vs-fresh
/// determinism tests assert byte-identical campaign output), it just
/// skips the allocator. Campaign workers keep one pool each.
///
/// Pooled builds are *headless*: the ground-truth capture taps that
/// [`internet_host`] installs for validation work are skipped, since
/// the measurement pipeline never reads them — the taps' per-packet
/// record clones are pure overhead at campaign scale. The returned
/// [`Scenario`]'s trace handles are empty stand-ins.
pub struct ScenarioPool {
    sim: Option<Simulator>,
    enabled: bool,
    events: u64,
    overflow: u64,
    recycled: u64,
    fresh: u64,
}

impl ScenarioPool {
    /// A pool that recycles simulators (the fast path).
    pub fn new() -> Self {
        ScenarioPool {
            sim: None,
            enabled: true,
            events: 0,
            overflow: 0,
            recycled: 0,
            fresh: 0,
        }
    }

    /// A pool that never recycles: every checkout constructs a fresh
    /// [`Simulator`]. The ablation arm of the pooled-vs-fresh
    /// determinism tests and the `--no-pool` campaign flag.
    pub fn disabled() -> Self {
        ScenarioPool {
            enabled: false,
            ..ScenarioPool::new()
        }
    }

    /// Whether recycling is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Simulator events absorbed from recycled scenarios so far — the
    /// numerator of the perf harness's events/sec.
    pub fn events_absorbed(&self) -> u64 {
        self.events
    }

    /// How many builds were served from a recycled simulator (the
    /// telemetry layer's pool *hits*).
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// How many builds constructed a fresh [`Simulator`] (pool
    /// *misses*: the first build of every worker, plus every build of
    /// a [`ScenarioPool::disabled`] pool).
    pub fn fresh_builds(&self) -> u64 {
        self.fresh
    }

    /// Calendar-queue overflow-heap pushes absorbed from recycled
    /// scenarios so far ([`Simulator::overflow_events`], banked by
    /// [`ScenarioPool::recycle`] alongside the event count).
    pub fn overflow_absorbed(&self) -> u64 {
        self.overflow
    }

    fn checkout(&mut self, seed: u64) -> Simulator {
        match self.sim.take() {
            Some(mut sim) if self.enabled => {
                sim.reset(seed);
                self.recycled += 1;
                sim
            }
            _ => {
                self.fresh += 1;
                Simulator::new(seed)
            }
        }
    }

    /// Absorb a finished scenario: bank its event count and (when
    /// enabled) keep its simulator for the next build. Call after the
    /// scenario's last traffic (sessions closed) so teardown events are
    /// counted.
    pub fn recycle(&mut self, scenario: Scenario) {
        let sim = scenario.prober.into_sim();
        self.events += sim.events_processed();
        self.overflow += sim.overflow_events();
        if self.enabled {
            self.sim = Some(sim);
        }
    }

    /// Headless pooled build of [`internet_host`] (see the type docs).
    pub fn internet_host(&mut self, spec: &HostSpec, seed: u64) -> Scenario {
        let sim = self.checkout(seed);
        build_internet_host(sim, spec, false)
    }
}

impl Default for ScenarioPool {
    fn default() -> Self {
        ScenarioPool::new()
    }
}

/// Build the path to one population host: probe — loss — jitter —
/// reordering mechanism — (balancer) — host(s). The mechanism stage is
/// chosen by [`HostSpec::mechanism`]; the §IV-B population uses
/// dummynet swaps, the campaign engine also draws striping, multipath
/// and wireless-ARQ paths.
pub fn internet_host(spec: &HostSpec, seed: u64) -> Scenario {
    build_internet_host(Simulator::new(seed), spec, true)
}

/// Shared body of [`internet_host`]: wire the path onto `sim` (fresh or
/// reset — indistinguishable by contract). `taps` installs the
/// ground-truth capture taps; headless pooled builds skip them.
fn build_internet_host(mut sim: Simulator, spec: &HostSpec, taps: bool) -> Scenario {
    let seed = sim.master_seed();
    let (mb, queue) = Mailbox::new();
    let me = sim.add_node(Box::new(mb));
    let loss = sim.add_node(Box::new(RandomLoss::new(
        spec.loss, spec.loss, seed, "loss",
    )));
    // Constant per-path extra delay (min == max preserves order). Any
    // i.i.d. jitter wider than the probe spacing would itself reorder
    // ~half of all back-to-back pairs — that's the §IV-C sensitivity —
    // so the population paths keep the mechanism stage as the sole
    // reordering source and their configured rates meaningful.
    let jitter = sim.add_node(Box::new(DelayJitter::new(
        spec.jitter,
        spec.jitter,
        seed,
        "jitter",
    )));
    let mech: Box<dyn reorder_netsim::Device> = match spec.mechanism {
        PathMechanism::Dummynet => Box::new(DummynetReorder::new(
            DummynetConfig {
                fwd_swap: spec.fwd_reorder,
                rev_swap: spec.rev_reorder,
                max_hold: Duration::from_millis(50),
            },
            seed,
            "dummynet",
        )),
        PathMechanism::Striping {
            links,
            bits_per_sec,
        } => Box::new(StripingLink::new(
            links,
            bits_per_sec,
            Some(CrossTraffic::backbone()),
            spec.sim_version.cross_traffic_model(),
            seed,
            "stripe",
        )),
        PathMechanism::Multipath { skew } => Box::new(MultipathRoute::with_seed(
            SplitMode::Random,
            vec![
                Duration::from_micros(100),
                Duration::from_micros(100) + skew,
            ],
            seed,
            "multipath",
        )),
        PathMechanism::WirelessArq { frame_error } => Box::new(WirelessArq::new(
            ArqConfig {
                frame_error,
                ..ArqConfig::default()
            },
            seed,
            "arq",
        )),
    };
    let dummy = sim.add_node(mech);
    // A hostile host's fault gate sits directly in front of the prober
    // (between mailbox and loss stage) so it sees every packet first.
    // Fault-free specs keep the exact historical wiring — same node
    // ids, link order and seeds — so 0-chaos populations stay
    // byte-identical.
    match spec.fault {
        Some(fault) => {
            let gate = sim.add_node(Box::new(FaultGate::new(fault, seed, "fault")));
            sim.connect(me, Port(0), gate, UP, fast_lan());
            sim.connect(gate, DOWN, loss, UP, fast_lan());
        }
        None => sim.connect(me, Port(0), loss, UP, fast_lan()),
    }
    sim.connect(loss, DOWN, jitter, UP, wan(spec.delay.as_millis() as u64));
    sim.connect(jitter, DOWN, dummy, UP, fast_lan());

    // Headless builds skip the capture taps (nothing reads them on the
    // campaign path); the handles stay valid, just unattached.
    let unattached = || TraceHandle::new(std::cell::RefCell::new(Vec::new()));
    let mut server_rx = Vec::new();
    let mut server_tx = Vec::new();
    if spec.backends > 1 {
        let lb = sim.add_node(Box::new(LoadBalancer::new(
            BalanceMode::PerFlow,
            spec.backends,
        )));
        sim.connect(dummy, DOWN, lb, Port(0), fast_lan());
        for b in 0..spec.backends {
            let mut cfg = TcpHostConfig::web_server(TARGET_ADDR, spec.personality.clone());
            cfg.object_size = spec.object_size;
            cfg.background_load = 0.5;
            let host = TcpHost::new(cfg, simrng::derive_seed(seed, &format!("backend{b}")));
            let node = sim.add_node(Box::new(host));
            sim.connect(lb, Port(1 + b), node, Port(0), fast_lan());
            if taps {
                server_rx.push(sim.tap_rx(node));
                server_tx.push(sim.tap_tx(node));
            } else {
                server_rx.push(unattached());
                server_tx.push(unattached());
            }
        }
    } else {
        let mut cfg = TcpHostConfig::web_server(TARGET_ADDR, spec.personality.clone());
        cfg.object_size = spec.object_size;
        cfg.background_load = 0.1;
        let host = TcpHost::new(cfg, sim.master_seed());
        let node = sim.add_node(Box::new(host));
        sim.connect(dummy, DOWN, node, Port(0), fast_lan());
        if taps {
            server_rx.push(sim.tap_rx(node));
            server_tx.push(sim.tap_tx(node));
        } else {
            server_rx.push(unattached());
            server_tx.push(unattached());
        }
    }
    let prober_rx = if taps { sim.tap_rx(me) } else { unattached() };
    Scenario {
        prober: Prober::new(sim, me, queue, PROBE_ADDR),
        target: TARGET_ADDR,
        server_rx,
        server_tx,
        prober_rx,
    }
}

/// Which node is the probe host (for tests needing extra wiring).
pub fn probe_node(_sc: &Scenario) -> NodeId {
    NodeId(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_sized() {
        let a = population(15, 35, 9);
        let b = population(15, 35, 9);
        assert_eq!(a.len(), 50);
        assert_eq!(
            a.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            b.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
        );
        assert_eq!(a[3].fwd_reorder, b[3].fwd_reorder);
        // Some hosts reorder, some don't; some are balanced.
        assert!(a.iter().any(|s| s.fwd_reorder > 0.0));
        assert!(a.iter().any(|s| s.fwd_reorder == 0.0));
        assert!(a.iter().any(|s| s.backends > 1));
        assert!(a.iter().any(|s| s.backends == 1));
    }

    #[test]
    fn validation_rig_handshake_works() {
        let mut sc = validation_rig(0.05, 0.05, 77);
        let conn = sc
            .prober
            .handshake(sc.target, 80, 1460, 65535, Duration::from_secs(1))
            .expect("handshake through dummynet");
        assert_eq!(conn.flow.dst, TARGET_ADDR);
    }

    #[test]
    fn load_balanced_pins_flows() {
        let mut sc = load_balanced(0.0, 0.0, 4, HostPersonality::freebsd4(), 5);
        // Several handshakes; each succeeds even though backends differ.
        for _ in 0..5 {
            sc.prober
                .handshake(sc.target, 80, 1460, 65535, Duration::from_secs(1))
                .expect("handshake through balancer");
        }
        // Traffic reached at least two different backends across flows.
        let hit = sc
            .server_rx
            .iter()
            .filter(|t| !t.borrow().is_empty())
            .count();
        assert!(hit >= 2, "expected spread over backends, got {hit}");
    }

    #[test]
    fn merge_traces_breaks_ties_stably() {
        use reorder_netsim::{Dir, SimTime, TraceRecord};
        use std::cell::RefCell;
        use std::rc::Rc;

        // Distinguish records by IPID; handle A gets even IDs, B odd.
        let rec = |t: u64, ipid: u16| TraceRecord {
            time: SimTime::from_micros(t),
            node: NodeId(0),
            port: Port(0),
            dir: Dir::Rx,
            pkt: reorder_wire::PacketBuilder::tcp()
                .src(Ipv4Addr4::new(1, 1, 1, 1), 1)
                .dst(Ipv4Addr4::new(2, 2, 2, 2), 2)
                .ipid(ipid)
                .build(),
        };
        let a: TraceHandle = Rc::new(RefCell::new(vec![rec(10, 0), rec(20, 2), rec(20, 4)]));
        let b: TraceHandle = Rc::new(RefCell::new(vec![rec(10, 1), rec(20, 3), rec(30, 5)]));
        let merged = merge_traces(&[a, b]);
        let ids: Vec<u16> = merged.0.iter().map(|r| r.pkt.ip.ident.raw()).collect();
        // Time-ordered; at equal times every record of the earlier
        // handle precedes the later handle's, preserving capture order.
        assert!(merged.0.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(ids, vec![0, 1, 2, 4, 3, 5]);
    }

    #[test]
    fn merge_traces_empty_inputs() {
        assert!(merge_traces(&[]).is_empty());
        let empty: TraceHandle = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        assert!(merge_traces(&[empty]).is_empty());
    }

    #[test]
    fn pooled_build_equals_fresh_build() {
        // The pooling contract at the scenario level: measuring through
        // a recycled simulator produces the same wire conversation as a
        // fresh one, for every mechanism the campaign draws.
        fn handshake_fingerprint(sc: &mut Scenario) -> (u32, u32, u16) {
            let conn = sc
                .prober
                .handshake(sc.target, 80, 1460, 65535, Duration::from_secs(1))
                .expect("handshake");
            (conn.irs.raw(), conn.rcv_nxt.raw(), conn.server_mss)
        }
        let mut pool = ScenarioPool::new();
        for (i, mech) in [
            PathMechanism::Dummynet,
            PathMechanism::Striping {
                links: 2,
                bits_per_sec: 1_000_000_000,
            },
            PathMechanism::Multipath {
                skew: Duration::from_micros(80),
            },
            PathMechanism::WirelessArq { frame_error: 0.1 },
        ]
        .into_iter()
        .enumerate()
        {
            let spec = HostSpec {
                fwd_reorder: 0.1,
                backends: if i == 0 { 3 } else { 1 },
                mechanism: mech,
                ..HostSpec::clean("pool", HostPersonality::freebsd4())
            };
            let seed = 4000 + i as u64;
            let mut fresh = internet_host(&spec, seed);
            let want = handshake_fingerprint(&mut fresh);
            let fresh_events = fresh.prober.sim.events_processed();

            let mut pooled = pool.internet_host(&spec, seed);
            assert_eq!(handshake_fingerprint(&mut pooled), want, "{}", mech.label());
            assert_eq!(pooled.prober.sim.events_processed(), fresh_events);
            pool.recycle(pooled);
        }
        assert_eq!(pool.recycled(), 3, "first build had nothing to recycle");
        assert!(pool.events_absorbed() > 0);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let mut pool = ScenarioPool::disabled();
        let spec = HostSpec::clean("fresh", HostPersonality::freebsd4());
        let sc = pool.internet_host(&spec, 1);
        pool.recycle(sc);
        let _sc = pool.internet_host(&spec, 2);
        assert_eq!(pool.recycled(), 0);
        assert!(!pool.is_enabled());
    }

    #[test]
    fn mechanism_paths_measurable() {
        // Every PathMechanism variant produces a path a measurement can
        // complete on.
        let mechanisms = [
            PathMechanism::Dummynet,
            PathMechanism::Striping {
                links: 2,
                bits_per_sec: 1_000_000_000,
            },
            PathMechanism::Multipath {
                skew: Duration::from_micros(80),
            },
            PathMechanism::WirelessArq { frame_error: 0.1 },
        ];
        for (i, mech) in mechanisms.into_iter().enumerate() {
            let spec = HostSpec {
                fwd_reorder: 0.1,
                mechanism: mech,
                ..HostSpec::clean("mech", HostPersonality::freebsd4())
            };
            let mut sc = internet_host(&spec, 900 + i as u64);
            sc.prober
                .handshake(sc.target, 80, 1460, 65535, Duration::from_secs(1))
                .unwrap_or_else(|e| panic!("handshake via {}: {e}", mech.label()));
        }
    }

    #[test]
    fn merged_traces_are_time_ordered() {
        let mut sc = load_balanced(0.0, 0.0, 3, HostPersonality::freebsd4(), 6);
        for _ in 0..4 {
            let _ = sc
                .prober
                .handshake(sc.target, 80, 1460, 65535, Duration::from_secs(1));
        }
        let merged = sc.merged_server_rx();
        assert!(merged.0.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(!merged.is_empty());
    }
}
