//! Ground-truth validation (§IV-A).
//!
//! "A network trace was captured for every test run and this trace was
//! analyzed to find the actual number of sample packets that were
//! reordered during the trace. This number was compared to the number
//! reported by the various reordering tests."
//!
//! [`validate_run`] replays that analysis: for every determinate sample
//! it locates the two probe packets in the server-side receive trace
//! (forward truth) and the two reply packets in the server transmit and
//! prober receive traces (reverse truth), and checks the test's verdict
//! against reality.

use crate::sample::{MeasurementRun, Order, PacketMatcher};
use reorder_netsim::{SimTime, Trace};

/// Outcome counts for one direction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirReport {
    /// Samples with a determinate verdict *and* a complete trace match.
    pub checked: usize,
    /// Verdicts that matched the trace.
    pub agree: usize,
    /// Reorder events the test reported (among checked).
    pub test_reordered: usize,
    /// Reorder events the trace shows (among checked).
    pub actual_reordered: usize,
    /// Indices of disagreeing samples (for debugging).
    pub disagreements: Vec<usize>,
}

impl DirReport {
    /// Discrepancy between reported and actual reorder counts — the
    /// quantity the paper tabulates ("7 of these were off by one reorder
    /// event ...").
    pub fn count_error(&self) -> i64 {
        self.test_reordered as i64 - self.actual_reordered as i64
    }

    /// Fraction of checked samples whose verdict matched the trace.
    pub fn accuracy(&self) -> f64 {
        if self.checked == 0 {
            1.0
        } else {
            self.agree as f64 / self.checked as f64
        }
    }
}

/// Validation result for a full measurement run.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Forward-path comparison.
    pub fwd: DirReport,
    /// Reverse-path comparison.
    pub rev: DirReport,
}

/// Find the index of the first record in `trace` at/after `from` and
/// before `until` matching `m`.
fn find_in(trace: &Trace, m: &PacketMatcher, from: SimTime, until: SimTime) -> Option<usize> {
    trace
        .0
        .iter()
        .position(|r| r.time >= from && r.time < until && m.matches(&r.pkt))
}

/// Validate every sample of `run` against the captured traces.
///
/// * `server_rx` — deliveries at the target (merged across backends);
/// * `server_tx` — transmissions by the target;
/// * `prober_rx` — deliveries at the probe host.
pub fn validate_run(
    run: &MeasurementRun,
    server_rx: &Trace,
    server_tx: &Trace,
    prober_rx: &Trace,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    for (i, sample) in run.samples.iter().enumerate() {
        let from = sample.forensics.started;
        // Bound the search window at the next sample's start so repeated
        // matcher values (e.g. the dual test's constant dup-ACK number)
        // resolve to the right sample. Samples that share a start time
        // (the transfer test classifies one whole trace) use distinct
        // matchers instead, so the window stays open.
        let until = match run.samples.get(i + 1).map(|s| s.forensics.started) {
            Some(t) if t > from => t,
            _ => SimTime::MAX,
        };

        // Forward: order the two probes arrived at the server.
        if sample.outcome.fwd.is_determinate() {
            let p0 = find_in(server_rx, &sample.forensics.fwd[0], from, until);
            let p1 = find_in(server_rx, &sample.forensics.fwd[1], from, until);
            if let (Some(a), Some(b)) = (p0, p1) {
                let actual_reordered = b < a;
                let test_reordered = sample.outcome.fwd == Order::Reordered;
                report.fwd.checked += 1;
                if actual_reordered {
                    report.fwd.actual_reordered += 1;
                }
                if test_reordered {
                    report.fwd.test_reordered += 1;
                }
                if actual_reordered == test_reordered {
                    report.fwd.agree += 1;
                } else {
                    report.fwd.disagreements.push(i);
                }
            }
        }

        // Reverse: generation order at the server vs arrival order at
        // the prober.
        if sample.outcome.rev.is_determinate() {
            if let Some(rev) = &sample.forensics.rev {
                let tx0 = find_in(server_tx, &rev[0], from, until);
                let tx1 = find_in(server_tx, &rev[1], from, until);
                let rx0 = find_in(prober_rx, &rev[0], from, until);
                let rx1 = find_in(prober_rx, &rev[1], from, until);
                if let (Some(t0), Some(t1), Some(r0), Some(r1)) = (tx0, tx1, rx0, rx1) {
                    // Actual exchange: transmit order differs from
                    // arrival order.
                    let sent_first_is_0 = t0 < t1;
                    let arrived_first_is_0 = r0 < r1;
                    let actual_reordered = sent_first_is_0 != arrived_first_is_0;
                    let test_reordered = sample.outcome.rev == Order::Reordered;
                    report.rev.checked += 1;
                    if actual_reordered {
                        report.rev.actual_reordered += 1;
                    }
                    if test_reordered {
                        report.rev.test_reordered += 1;
                    }
                    if actual_reordered == test_reordered {
                        report.rev.agree += 1;
                    } else {
                        report.rev.disagreements.push(i);
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurer::{technique, Session};
    use crate::sample::TestConfig;
    use crate::scenario;
    use crate::techniques::TestKind;

    fn full_validation(
        fwd_swap: f64,
        rev_swap: f64,
        seed: u64,
        kind: TestKind,
    ) -> ValidationReport {
        let cfg = if kind == TestKind::DataTransfer {
            TestConfig::default()
        } else {
            TestConfig::samples(60)
        };
        let mut sc = scenario::validation_rig(fwd_swap, rev_swap, seed);
        let run = {
            let mut session = Session::new(&mut sc.prober, sc.target, 80);
            technique(kind, cfg).execute(&mut session).expect("run")
        };
        validate_run(
            &run,
            &sc.merged_server_rx(),
            &sc.merged_server_tx(),
            &sc.prober_trace(),
        )
    }

    #[test]
    fn single_connection_agrees_with_trace() {
        let rep = full_validation(0.15, 0.1, 90, TestKind::SingleConnection);
        assert!(rep.fwd.checked >= 40, "checked {}", rep.fwd.checked);
        assert_eq!(
            rep.fwd.agree, rep.fwd.checked,
            "fwd verdicts must match trace"
        );
        assert!(rep.rev.checked >= 40);
        assert_eq!(
            rep.rev.agree, rep.rev.checked,
            "rev verdicts must match trace"
        );
        assert!(rep.fwd.actual_reordered > 0, "swaps must actually occur");
    }

    #[test]
    fn dual_connection_agrees_with_trace() {
        let rep = full_validation(0.15, 0.1, 91, TestKind::DualConnection);
        assert!(rep.fwd.checked >= 50);
        assert_eq!(rep.fwd.agree, rep.fwd.checked);
        assert!(rep.rev.checked >= 50);
        assert_eq!(rep.rev.agree, rep.rev.checked);
    }

    #[test]
    fn syn_test_agrees_with_trace() {
        let rep = full_validation(0.2, 0.15, 92, TestKind::Syn);
        assert!(rep.fwd.checked >= 50);
        assert_eq!(rep.fwd.agree, rep.fwd.checked);
        assert!(rep.rev.checked >= 50);
        assert_eq!(rep.rev.agree, rep.rev.checked);
    }

    #[test]
    fn transfer_test_agrees_with_trace() {
        let rep = full_validation(0.0, 0.2, 93, TestKind::DataTransfer);
        assert_eq!(rep.fwd.checked, 0, "transfer test has no fwd verdicts");
        assert!(rep.rev.checked >= 50);
        assert_eq!(rep.rev.agree, rep.rev.checked);
        assert!(rep.rev.actual_reordered > 0);
    }

    #[test]
    fn accuracy_of_empty_report_is_one() {
        let r = DirReport::default();
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.count_error(), 0);
    }
}
