//! The raw-packet probing harness — the simulated counterpart of the
//! sting tool's packet-filter arrangement (§IV: "programmable packet
//! filters and firewall filters were used to allow a user-level test
//! program to generate and receive arbitrary IP packets without
//! conflicting with the kernel's network stack").
//!
//! [`Prober`] owns the simulation and a [`Mailbox`](reorder_netsim::Mailbox) attachment point. The
//! measurement tests drive it synchronously: craft a segment, transmit,
//! advance simulated time, and collect matching replies.

use reorder_netsim::{MailboxQueue, NodeId, Port, RxPacket, SimTime, Simulator};
use reorder_wire::{FlowKey, IpId, Ipv4Addr4, Packet, PacketBuilder, SeqNum, TcpFlags, TcpOption};
use std::fmt;
use std::time::Duration;

/// Errors a measurement can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// No (or not enough) replies before the deadline.
    Timeout {
        /// What was being waited for.
        waiting_for: &'static str,
    },
    /// The remote host reset the connection during setup.
    ConnectionReset,
    /// The target failed a precondition (e.g. IPID validation, missing
    /// web object).
    HostUnsuitable(String),
    /// The per-host [`crate::budget::Budget`] deadline ran out before
    /// this phase could start (or finish): the session refuses further
    /// work so one pathological host cannot stall its shard.
    DeadlineExceeded,
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Timeout { waiting_for } => write!(f, "timed out waiting for {waiting_for}"),
            ProbeError::ConnectionReset => write!(f, "connection reset by target"),
            ProbeError::HostUnsuitable(why) => write!(f, "host unsuitable: {why}"),
            ProbeError::DeadlineExceeded => write!(f, "per-host budget deadline exceeded"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// Client-side view of an established TCP connection (the prober speaks
/// raw packets; this is just bookkeeping, not a socket).
#[derive(Debug, Clone)]
pub struct ClientConn {
    /// Flow 4-tuple from the prober's perspective.
    pub flow: FlowKey,
    /// Our initial sequence number.
    pub iss: SeqNum,
    /// Server's initial sequence number (from the SYN/ACK).
    pub irs: SeqNum,
    /// Next sequence number we would send in-order.
    pub snd_nxt: SeqNum,
    /// Next sequence number we expect from the server.
    pub rcv_nxt: SeqNum,
    /// Server's advertised MSS.
    pub server_mss: u16,
}

/// The probing agent: owns the simulator and the probe host attachment.
pub struct Prober {
    /// The simulation (public: scenarios and experiments reach in for
    /// taps and extra nodes before probing starts).
    pub sim: Simulator,
    node: NodeId,
    queue: MailboxQueue,
    /// Probe host source address.
    pub local_addr: Ipv4Addr4,
    buffer: Vec<RxPacket>,
    next_port: u16,
    next_ipid: u16,
    iss_counter: u32,
    handshakes: usize,
}

impl Prober {
    /// Wrap a built simulation. `node`/`queue` come from the scenario's
    /// [`reorder_netsim::Mailbox`].
    pub fn new(sim: Simulator, node: NodeId, queue: MailboxQueue, local_addr: Ipv4Addr4) -> Self {
        Prober {
            sim,
            node,
            queue,
            local_addr,
            buffer: Vec::new(),
            next_port: 33000,
            next_ipid: 1,
            iss_counter: 0x1000_0000,
            handshakes: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Tear the prober down and hand the simulator back — the path a
    /// [`crate::scenario::ScenarioPool`] uses to recycle a finished
    /// scenario's allocations into the next host's build.
    pub fn into_sim(self) -> Simulator {
        self.sim
    }

    /// Successful three-way handshakes performed so far. The
    /// conformance suite cross-checks this wire-level counter against
    /// [`crate::measurer::SessionStats::handshakes`] to prove the
    /// session's connection-reuse accounting is real.
    pub fn handshakes_performed(&self) -> usize {
        self.handshakes
    }

    /// Allocate an ephemeral source port.
    pub fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 60000 {
            33000
        } else {
            self.next_port + 1
        };
        p
    }

    /// Allocate a probe IPID. The prober stamps sequential IPIDs on its
    /// own packets so capture traces can identify each probe uniquely
    /// (the validation analysis of §IV-A keys on this).
    pub fn alloc_ipid(&mut self) -> IpId {
        let id = IpId(self.next_ipid);
        self.next_ipid = self.next_ipid.wrapping_add(1);
        if self.next_ipid == 0 {
            self.next_ipid = 1;
        }
        id
    }

    /// Allocate an initial sequence number.
    pub fn alloc_iss(&mut self) -> SeqNum {
        self.iss_counter = self.iss_counter.wrapping_add(0x0001_0000);
        SeqNum(self.iss_counter)
    }

    /// Transmit a raw packet now.
    pub fn send(&mut self, pkt: Packet) {
        self.sim.transmit_from(self.node, Port(0), pkt);
    }

    /// Let the simulation advance by `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
        self.drain_into_buffer();
    }

    fn drain_into_buffer(&mut self) {
        let mut q = self.queue.borrow_mut();
        self.buffer.extend(q.drain(..));
    }

    /// Wait until `deadline` for a packet matching `pred`, consuming it
    /// from the receive buffer. Non-matching packets stay buffered for
    /// later calls.
    pub fn recv_where<F>(&mut self, mut pred: F, timeout: Duration) -> Option<RxPacket>
    where
        F: FnMut(&Packet) -> bool,
    {
        let deadline = self.sim.now() + timeout;
        self.drain_into_buffer();
        if let Some(pos) = self.buffer.iter().position(|r| pred(&r.pkt)) {
            return Some(self.buffer.remove(pos));
        }
        // Everything buffered so far failed `pred`; while stepping the
        // simulation, only inspect *new* arrivals instead of rescanning
        // the buffer every event.
        let mut scanned = self.buffer.len();
        loop {
            match self.sim.next_event_time() {
                Some(t) if t <= deadline => self.sim.run_until(t),
                _ => {
                    self.sim.run_until(deadline);
                    self.drain_into_buffer();
                    if let Some(pos) = self.buffer[scanned..].iter().position(|r| pred(&r.pkt)) {
                        return Some(self.buffer.remove(scanned + pos));
                    }
                    return None;
                }
            }
            if !self.queue.borrow().is_empty() {
                self.drain_into_buffer();
                if let Some(pos) = self.buffer[scanned..].iter().position(|r| pred(&r.pkt)) {
                    return Some(self.buffer.remove(scanned + pos));
                }
                scanned = self.buffer.len();
            }
        }
    }

    /// Collect up to `n` packets matching `pred` before `timeout`
    /// elapses; returns what arrived (possibly fewer).
    pub fn recv_n_where<F>(&mut self, mut pred: F, n: usize, timeout: Duration) -> Vec<RxPacket>
    where
        F: FnMut(&Packet) -> bool,
    {
        let deadline = self.sim.now() + timeout;
        let mut got = Vec::with_capacity(n);
        while got.len() < n {
            let remaining = deadline.since(self.sim.now());
            if remaining.is_zero() {
                break;
            }
            match self.recv_where(&mut pred, remaining) {
                Some(r) => got.push(r),
                None => break,
            }
        }
        got
    }

    /// Discard everything buffered (start of a fresh sample).
    pub fn flush(&mut self) {
        self.drain_into_buffer();
        self.buffer.clear();
    }

    /// Number of packets sitting in the receive buffer (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Build a TCP packet from `conn`'s 4-tuple with a fresh probe IPID.
    pub fn tcp_pkt(&mut self, conn: &ClientConn) -> PacketBuilder {
        let ipid = self.alloc_ipid();
        PacketBuilder::tcp()
            .src(conn.flow.src, conn.flow.src_port)
            .dst(conn.flow.dst, conn.flow.dst_port)
            .ipid(ipid)
    }

    /// Perform a client three-way handshake with retries. Advertises
    /// `mss` and `window` (the Data Transfer Test clamps these).
    pub fn handshake(
        &mut self,
        remote: Ipv4Addr4,
        remote_port: u16,
        mss: u16,
        window: u16,
        timeout: Duration,
    ) -> Result<ClientConn, ProbeError> {
        let local_port = self.alloc_port();
        let iss = self.alloc_iss();
        let flow = FlowKey {
            src: self.local_addr,
            src_port: local_port,
            dst: remote,
            dst_port: remote_port,
        };
        for _attempt in 0..3 {
            let ipid = self.alloc_ipid();
            let syn = PacketBuilder::tcp()
                .src(flow.src, flow.src_port)
                .dst(flow.dst, flow.dst_port)
                .seq(iss)
                .flags(TcpFlags::SYN)
                .window(window)
                .option(TcpOption::Mss(mss))
                .ipid(ipid)
                .build();
            self.send(syn);
            let reply = self.recv_where(
                |p| {
                    p.flow() == Some(flow.reversed())
                        && p.tcp().is_some_and(|t| {
                            t.flags.contains(TcpFlags::SYN | TcpFlags::ACK)
                                || t.flags.contains(TcpFlags::RST)
                        })
                },
                timeout,
            );
            match reply {
                Some(r) => {
                    let tcp = r.pkt.tcp().expect("matched tcp");
                    if tcp.flags.contains(TcpFlags::RST) {
                        return Err(ProbeError::ConnectionReset);
                    }
                    if tcp.ack != iss + 1 {
                        // SYN/ACK for a stale attempt; ignore and retry.
                        continue;
                    }
                    let irs = tcp.seq;
                    let server_mss = tcp.mss().unwrap_or(536);
                    let mut conn = ClientConn {
                        flow,
                        iss,
                        irs,
                        snd_nxt: iss + 1,
                        rcv_nxt: irs + 1,
                        server_mss,
                    };
                    // Complete the handshake.
                    let ack = self
                        .tcp_pkt(&conn)
                        .seq(conn.snd_nxt)
                        .ack(conn.rcv_nxt)
                        .flags(TcpFlags::ACK)
                        .window(window)
                        .build();
                    let _ = &mut conn;
                    self.send(ack);
                    self.handshakes += 1;
                    return Ok(conn);
                }
                None => continue,
            }
        }
        Err(ProbeError::Timeout {
            waiting_for: "SYN/ACK",
        })
    }

    /// Politely close a connection: FIN, await the server's FIN, ACK it.
    /// Best-effort — errors are swallowed because teardown hygiene must
    /// not fail a measurement.
    pub fn close(&mut self, conn: &mut ClientConn, timeout: Duration) {
        let fin = self
            .tcp_pkt(conn)
            .seq(conn.snd_nxt)
            .ack(conn.rcv_nxt)
            .flags(TcpFlags::FIN | TcpFlags::ACK)
            .build();
        conn.snd_nxt = conn.snd_nxt + 1;
        self.send(fin);
        let flow = conn.flow;
        if let Some(r) = self.recv_where(
            |p| {
                p.flow() == Some(flow.reversed())
                    && p.tcp()
                        .is_some_and(|t| t.flags.intersects(TcpFlags::FIN | TcpFlags::RST))
            },
            timeout,
        ) {
            let tcp = r.pkt.tcp().expect("tcp");
            if tcp.flags.contains(TcpFlags::FIN) {
                conn.rcv_nxt = tcp.seq + 1;
                let ack = self
                    .tcp_pkt(conn)
                    .seq(conn.snd_nxt)
                    .ack(conn.rcv_nxt)
                    .flags(TcpFlags::ACK)
                    .build();
                self.send(ack);
                self.run_for(Duration::from_millis(1));
            }
        }
    }

    /// Abort a connection with a RST (used after SYN-test trials whose
    /// server side is already gone).
    pub fn abort(&mut self, conn: &ClientConn) {
        let rst = self
            .tcp_pkt(conn)
            .seq(conn.snd_nxt)
            .ack(conn.rcv_nxt)
            .flags(TcpFlags::RST | TcpFlags::ACK)
            .build();
        self.send(rst);
        self.sim.run_for(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_netsim::{LinkParams, Mailbox};
    use reorder_tcpstack::{HostPersonality, TcpHost, TcpHostConfig};

    const ME: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);
    const SRV: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 2);

    fn prober() -> Prober {
        let mut sim = Simulator::new(1);
        let (mb, q) = Mailbox::new();
        let me = sim.add_node(Box::new(mb));
        let host = TcpHost::new(
            TcpHostConfig::web_server(SRV, HostPersonality::freebsd4()),
            sim.master_seed(),
        );
        let srv = sim.add_node(Box::new(host));
        sim.connect(me, Port(0), srv, Port(0), LinkParams::wan());
        Prober::new(sim, me, q, ME)
    }

    #[test]
    fn handshake_succeeds() {
        let mut p = prober();
        let conn = p
            .handshake(SRV, 80, 1460, 65535, Duration::from_secs(1))
            .expect("handshake");
        assert_eq!(conn.flow.dst, SRV);
        assert_eq!(conn.snd_nxt, conn.iss + 1);
        assert_eq!(conn.rcv_nxt, conn.irs + 1);
        assert_eq!(conn.server_mss, 1460);
    }

    #[test]
    fn handshake_to_closed_port_is_reset() {
        let mut p = prober();
        let err = p
            .handshake(SRV, 81, 1460, 65535, Duration::from_secs(1))
            .unwrap_err();
        assert_eq!(err, ProbeError::ConnectionReset);
    }

    #[test]
    fn handshake_to_black_hole_times_out() {
        let mut p = prober();
        // 10.0.0.9 does not exist; the host ignores wrong destinations.
        let err = p
            .handshake(
                Ipv4Addr4::new(10, 0, 0, 9),
                80,
                1460,
                65535,
                Duration::from_millis(100),
            )
            .unwrap_err();
        assert!(matches!(err, ProbeError::Timeout { .. }));
    }

    #[test]
    fn recv_where_filters_and_buffers() {
        let mut p = prober();
        let mut conn = p
            .handshake(SRV, 80, 1460, 65535, Duration::from_secs(1))
            .expect("handshake");
        // Two out-of-order probes → two dup ACKs.
        for off in [2u32, 4] {
            let pkt = p
                .tcp_pkt(&conn)
                .seq(conn.snd_nxt + off)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .data(b"X".to_vec())
                .build();
            p.send(pkt);
        }
        let flow = conn.flow;
        let acks = p.recv_n_where(
            |pkt| pkt.flow() == Some(flow.reversed()),
            2,
            Duration::from_secs(1),
        );
        assert_eq!(acks.len(), 2);
        for a in &acks {
            // Both are duplicate ACKs pointing at the hole (snd_nxt).
            assert_eq!(a.pkt.tcp().unwrap().ack, conn.snd_nxt);
        }
        p.close(&mut conn, Duration::from_secs(1));
    }

    #[test]
    fn close_elicits_fin_and_cleans_up() {
        let mut p = prober();
        let mut conn = p
            .handshake(SRV, 80, 1460, 65535, Duration::from_secs(1))
            .expect("handshake");
        p.close(&mut conn, Duration::from_secs(1));
        // After close, further probes to the flow are met with RST
        // (connection is gone server-side).
        let pkt = p
            .tcp_pkt(&conn)
            .seq(conn.snd_nxt + 5)
            .ack(conn.rcv_nxt)
            .flags(TcpFlags::ACK)
            .data(b"Z".to_vec())
            .build();
        p.send(pkt);
        let flow = conn.flow;
        let r = p.recv_where(
            |pkt| {
                pkt.flow() == Some(flow.reversed())
                    && pkt.tcp().is_some_and(|t| t.flags.contains(TcpFlags::RST))
            },
            Duration::from_secs(1),
        );
        assert!(r.is_some(), "probe to closed connection should be RST");
    }

    #[test]
    fn port_and_ipid_allocation_cycle() {
        let mut p = prober();
        let a = p.alloc_port();
        let b = p.alloc_port();
        assert_ne!(a, b);
        let i1 = p.alloc_ipid();
        let i2 = p.alloc_ipid();
        assert!(i1.before(i2));
    }
}
