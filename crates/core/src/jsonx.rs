//! Minimal hand-rolled JSON extraction for the checkpoint formats.
//!
//! The campaign checkpoint documents (`reorder.checkpoint/1`,
//! `reorder.shard/1`) and the exact-state serializers on [`Moments`],
//! [`QuantileSketch`], `WorkerTelemetry` and `ShardAggregator` are all
//! emitted by hand with stable key order; this module is the matching
//! reader. It is deliberately not a general JSON parser: keys are
//! code-defined identifiers (never escaped), lookups take the first
//! occurrence of `"key":`, and every helper returns `Err` rather than
//! guessing on malformed input — corruption is surfaced, not absorbed.
//!
//! [`Moments`]: crate::stats::Moments
//! [`QuantileSketch`]: crate::stats::QuantileSketch

/// 64-bit FNV-1a over a byte string — the integrity hash sealed into
/// checkpoint documents and pinned by the determinism test suite.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Byte length of the JSON value at the start of `text`: a
/// brace/bracket-matched container (string-aware), a quoted string, or
/// a bare scalar running to the next `,` / `}` / `]`.
fn value_end(text: &str) -> Result<usize, String> {
    let bytes = text.as_bytes();
    match bytes.first() {
        Some(b'{') | Some(b'[') => {
            let mut depth = 0i64;
            let mut in_str = false;
            let mut escape = false;
            for (i, &b) in bytes.iter().enumerate() {
                if escape {
                    escape = false;
                    continue;
                }
                match b {
                    b'\\' if in_str => escape = true,
                    b'"' => in_str = !in_str,
                    b'{' | b'[' if !in_str => depth += 1,
                    b'}' | b']' if !in_str => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(i + 1);
                        }
                        if depth < 0 {
                            return Err("unbalanced JSON container".into());
                        }
                    }
                    _ => {}
                }
            }
            Err("unterminated JSON container".into())
        }
        Some(b'"') => {
            let mut escape = false;
            for (i, &b) in bytes.iter().enumerate().skip(1) {
                if escape {
                    escape = false;
                    continue;
                }
                match b {
                    b'\\' => escape = true,
                    b'"' => return Ok(i + 1),
                    _ => {}
                }
            }
            Err("unterminated JSON string".into())
        }
        Some(_) => Ok(bytes
            .iter()
            .position(|&b| matches!(b, b',' | b'}' | b']'))
            .unwrap_or(bytes.len())),
        None => Err("empty JSON value".into()),
    }
}

/// Raw value of the first `"key":` occurrence in `text` — the slice of
/// the object, array, string (quotes included) or bare scalar that
/// follows the colon.
pub fn field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat).ok_or_else(|| format!("missing `{key}`"))?;
    let rest = &text[at + pat.len()..];
    let end = value_end(rest).map_err(|e| format!("bad `{key}`: {e}"))?;
    Ok(&rest[..end])
}

/// Parse an integer-valued field (any `FromStr` integer type).
pub fn int_field<T: std::str::FromStr>(text: &str, key: &str) -> Result<T, String> {
    field(text, key)?
        .parse()
        .map_err(|_| format!("non-integer `{key}`"))
}

/// Contents of a string-valued field. No escape decoding: checkpoint
/// strings are plain identifiers by construction, and anything else is
/// malformed input.
pub fn str_field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let raw = field(text, key)?;
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("`{key}` is not a string"))?;
    if inner.contains(['"', '\\']) {
        return Err(format!("`{key}` contains escapes"));
    }
    Ok(inner)
}

/// Split a JSON object or array into its top-level comma-separated
/// element slices (members for an object, values for an array). Empty
/// containers yield an empty vector.
pub fn elements(raw: &str) -> Result<Vec<&str>, String> {
    let bytes = raw.as_bytes();
    let close = match bytes.first() {
        Some(b'{') => b'}',
        Some(b'[') => b']',
        _ => return Err("not a JSON container".into()),
    };
    if bytes.len() < 2 || bytes[bytes.len() - 1] != close {
        return Err("unterminated JSON container".into());
    }
    let inner = &raw[1..raw.len() - 1];
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escape = false;
    let mut start = 0usize;
    for (i, &b) in inner.as_bytes().iter().enumerate() {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            b'{' | b'[' if !in_str => depth += 1,
            b'}' | b']' if !in_str => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced JSON container".into());
                }
            }
            b',' if !in_str && depth == 0 => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unbalanced JSON container".into());
    }
    out.push(&inner[start..]);
    Ok(out)
}

/// Split one object member (`"key":value`) into its key and raw value.
pub fn member(elem: &str) -> Result<(&str, &str), String> {
    let rest = elem
        .strip_prefix('"')
        .ok_or("object member must start with a quoted key")?;
    let q = rest.find('"').ok_or("unterminated member key")?;
    let val = rest[q + 1..]
        .strip_prefix(':')
        .ok_or("missing `:` after member key")?;
    Ok((&rest[..q], val))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_extracts_nested_containers() {
        let doc = r#"{"a":{"x":[1,2],"y":"s"},"b":7,"c":"txt"}"#;
        assert_eq!(field(doc, "a").unwrap(), r#"{"x":[1,2],"y":"s"}"#);
        assert_eq!(field(doc, "b").unwrap(), "7");
        assert_eq!(str_field(doc, "c").unwrap(), "txt");
        assert_eq!(int_field::<u64>(doc, "b").unwrap(), 7);
        assert!(field(doc, "missing").is_err());
    }

    #[test]
    fn elements_splits_at_top_level_only() {
        let arr = r#"[[1,2],[3,4],{"k":"a,b"}]"#;
        let parts = elements(arr).unwrap();
        assert_eq!(parts, vec!["[1,2]", "[3,4]", r#"{"k":"a,b"}"#]);
        assert_eq!(elements("{}").unwrap(), Vec::<&str>::new());
        assert_eq!(elements("[]").unwrap(), Vec::<&str>::new());
        assert!(elements("[1,2").is_err());
        assert!(elements("plain").is_err());
    }

    #[test]
    fn member_splits_key_and_value() {
        let obj = r#"{"spans":{"a":1},"n":2}"#;
        let parts = elements(obj).unwrap();
        let (k, v) = member(parts[0]).unwrap();
        assert_eq!((k, v), ("spans", r#"{"a":1}"#));
        assert!(member("noquote:1").is_err());
        assert!(member("\"key\"1").is_err());
    }
}
