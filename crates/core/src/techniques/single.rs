//! The Single Connection Test (§III-B, Fig. 1).
//!
//! One TCP connection; each sample has a **preparation phase** — park a
//! byte one past `rcv_nxt` so the receiver holds a sequence "hole" — and
//! a **measurement phase** — send two 1-byte segments straddling the
//! hole. The receiver's ACK stream then encodes the arrival order:
//!
//! * in-order (`data 1`, `data 3` in the paper's labels): `ack 3`
//!   (hole fill) then `ack 4`;
//! * exchanged: `ack 1` (immediate duplicate) then `ack 4`;
//! * reverse-path exchange: the cumulative `ack 4` arrives *first*.
//!
//! The **reversed variant** sends `data 3` before `data 1` so that the
//! first packet is always out-of-order and acknowledged immediately —
//! sidestepping delayed ACKs at the cost of the lone-`ack 4` ambiguity
//! (forward reordering and reverse loss become indistinguishable; such
//! samples are discarded).

use crate::measurer::{Requirements, Session, Technique};
use crate::probe::{ClientConn, ProbeError, Prober};
use crate::sample::{
    MeasurementRun, Order, PacketMatcher, SampleForensics, SampleOutcome, SampleRecord, TestConfig,
};
use crate::techniques::TestKind;
use reorder_wire::{SeqNum, TcpFlags};
use std::time::Duration;

/// The Single Connection Test.
#[derive(Debug, Clone)]
pub struct SingleConnectionTest {
    /// Shared knobs.
    pub cfg: TestConfig,
    /// Send the higher-sequence sample packet first (defeats delayed
    /// ACKs; see module docs).
    pub reversed: bool,
}

impl SingleConnectionTest {
    /// In-order variant.
    pub fn new(cfg: TestConfig) -> Self {
        SingleConnectionTest {
            cfg,
            reversed: false,
        }
    }

    /// Reversed variant.
    pub fn reversed(cfg: TestConfig) -> Self {
        SingleConnectionTest {
            cfg,
            reversed: true,
        }
    }

    /// Await an ACK on `conn`'s reverse flow with the given ack value.
    fn await_ack(&self, p: &mut Prober, conn: &ClientConn, ack: SeqNum) -> bool {
        let flow = conn.flow;
        p.recv_where(
            |pkt| {
                pkt.flow() == Some(flow.reversed())
                    && pkt
                        .tcp()
                        .is_some_and(|t| t.flags.contains(TcpFlags::ACK) && t.ack == ack)
            },
            self.cfg.reply_timeout,
        )
        .is_some()
    }

    /// Preparation phase: park one byte at `base + 1` and confirm the
    /// hole via the duplicate ACK ("sending a slightly out-of-order
    /// packet repeatedly until the sender receives an acknowledgment
    /// indicating that an earlier packet is expected").
    fn prepare_hole(&self, p: &mut Prober, conn: &ClientConn, base: SeqNum) -> bool {
        for _attempt in 0..5 {
            let pkt = p
                .tcp_pkt(conn)
                .seq(base + 1)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .data(b"H".to_vec())
                .build();
            p.send(pkt);
            if self.await_ack(p, conn, base) {
                return true;
            }
        }
        false
    }

    /// Recover a sample that lost packets: send one 3-byte segment
    /// covering `[base, base+3)` until the cumulative ACK confirms the
    /// remote caught up, so the next sample starts from known state.
    fn resync(&self, p: &mut Prober, conn: &ClientConn, base: SeqNum) -> Result<(), ProbeError> {
        for _attempt in 0..5 {
            let pkt = p
                .tcp_pkt(conn)
                .seq(base)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .data(b"RSY".to_vec())
                .build();
            p.send(pkt);
            if self.await_ack(p, conn, base + 3) {
                return Ok(());
            }
        }
        Err(ProbeError::Timeout {
            waiting_for: "resync ACK",
        })
    }

    /// One sample: prepare, fire the straddling pair, classify.
    fn sample(&self, p: &mut Prober, conn: &mut ClientConn) -> Result<SampleRecord, ProbeError> {
        let base = conn.snd_nxt;
        let flow = conn.flow;
        let prepared = self.prepare_hole(p, conn, base);
        // Consume any straggler duplicate ACKs from retried preparations.
        p.run_for(Duration::from_millis(1));
        p.flush();
        if !prepared {
            // Can't even park the hole byte: resync and discard.
            self.resync(p, conn, base)?;
            conn.snd_nxt = base + 3;
            return Ok(discard_record(p, flow));
        }

        let started = p.now();
        let low_ipid = p.alloc_ipid();
        let high_ipid = p.alloc_ipid();
        let mk_low = |p: &mut Prober, conn: &ClientConn| {
            p.tcp_pkt(conn)
                .ipid(low_ipid)
                .seq(base)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .data(b"A".to_vec())
                .build()
        };
        let mk_high = |p: &mut Prober, conn: &ClientConn| {
            p.tcp_pkt(conn)
                .ipid(high_ipid)
                .seq(base + 2)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .data(b"B".to_vec())
                .build()
        };
        // Send order: (low, high) normally; (high, low) reversed. The
        // IPID labels track send order for the trace validator.
        let (first_ipid, second_ipid);
        if self.reversed {
            let pkt = mk_high(p, conn);
            p.send(pkt);
            p.run_for(self.cfg.gap);
            let pkt = mk_low(p, conn);
            p.send(pkt);
            first_ipid = high_ipid;
            second_ipid = low_ipid;
        } else {
            let pkt = mk_low(p, conn);
            p.send(pkt);
            p.run_for(self.cfg.gap);
            let pkt = mk_high(p, conn);
            p.send(pkt);
            first_ipid = low_ipid;
            second_ipid = high_ipid;
        }

        // Collect the sample's ACKs: values of interest are base
        // ("ack 1"), base+2 ("ack 3"), base+3 ("ack 4").
        let interesting = [base, base + 2, base + 3];
        let mut acks: Vec<SeqNum> = Vec::new();
        let deadline_each = self.cfg.reply_timeout;
        while acks.len() < 2 {
            let got = p.recv_where(
                |pkt| {
                    pkt.flow() == Some(flow.reversed())
                        && pkt.tcp().is_some_and(|t| {
                            t.flags.contains(TcpFlags::ACK)
                                && !t.flags.intersects(TcpFlags::SYN | TcpFlags::RST)
                                && interesting.contains(&t.ack)
                        })
                },
                deadline_each,
            );
            match got {
                Some(r) => acks.push(r.pkt.tcp().expect("tcp").ack),
                None => break,
            }
            // Stop early once the cumulative ACK has been seen along
            // with another — nothing further is coming for this sample.
            if acks.len() == 2 {
                break;
            }
        }

        let full = base + 3;
        let saw_full = acks.contains(&full);
        if !saw_full {
            // Loss somewhere: bring the remote to a known state, then
            // discard the sample (§III-B: "simply ... discarding such
            // samples").
            self.resync(p, conn, base)?;
            conn.snd_nxt = base + 3;
            return Ok(SampleRecord {
                outcome: SampleOutcome::DISCARD,
                forensics: SampleForensics {
                    started,
                    fwd: [
                        PacketMatcher::flow(flow).ipid(first_ipid),
                        PacketMatcher::flow(flow).ipid(second_ipid),
                    ],
                    rev: None,
                },
            });
        }
        conn.snd_nxt = base + 3;

        // Forward classification from the non-cumulative ACK value.
        let partial = acks.iter().copied().find(|&a| a != full);
        let fwd = match partial {
            Some(a) if a == base => {
                // "ack 1": the receiver saw out-of-sequence data first.
                if self.reversed {
                    Order::Ordered // high was sent first and arrived first
                } else {
                    Order::Reordered
                }
            }
            Some(a) if a == base + 2 => {
                // "ack 3": the hole filled first.
                if self.reversed {
                    Order::Reordered
                } else {
                    Order::Ordered
                }
            }
            _ => Order::Indeterminate, // lone cumulative ACK
        };

        // Reverse classification: the cumulative ACK is always generated
        // last by the remote, so receiving it first means the ACK pair
        // was exchanged in flight.
        let rev = if acks.len() >= 2 {
            if acks[0] == full {
                Order::Reordered
            } else {
                Order::Ordered
            }
        } else {
            Order::Indeterminate
        };

        let rev_forensics = partial.map(|a| {
            [
                PacketMatcher::flow(flow.reversed())
                    .ack(a)
                    .flags(TcpFlags::ACK)
                    .without(TcpFlags::SYN | TcpFlags::RST),
                PacketMatcher::flow(flow.reversed())
                    .ack(full)
                    .flags(TcpFlags::ACK)
                    .without(TcpFlags::SYN | TcpFlags::RST),
            ]
        });
        Ok(SampleRecord {
            outcome: SampleOutcome { fwd, rev },
            forensics: SampleForensics {
                started,
                fwd: [
                    PacketMatcher::flow(flow).ipid(first_ipid),
                    PacketMatcher::flow(flow).ipid(second_ipid),
                ],
                rev: rev_forensics,
            },
        })
    }
}

impl Technique for SingleConnectionTest {
    fn kind(&self) -> TestKind {
        if self.reversed {
            TestKind::SingleConnectionReversed
        } else {
            TestKind::SingleConnection
        }
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            measures_fwd: true,
            measures_rev: true,
            connections: 1,
            needs_global_ipid: false,
            needs_object: false,
        }
    }

    fn execute(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        let mut conn = session.checkout("single", 1460, 65535, self.cfg.reply_timeout)?;
        let mut run = MeasurementRun::default();
        for _ in 0..self.cfg.samples {
            session.prober().run_for(self.cfg.pace);
            match self.sample(session.prober(), &mut conn) {
                Ok(rec) => run.samples.push(rec),
                Err(e) => {
                    // A failed resync leaves the connection in unknown
                    // state: close it instead of caching it.
                    session.discard(conn, self.cfg.reply_timeout);
                    return Err(e);
                }
            }
        }
        session.checkin("single", 1460, 65535, conn, self.cfg.reply_timeout);
        Ok(run)
    }
}

fn discard_record(p: &Prober, flow: reorder_wire::FlowKey) -> SampleRecord {
    SampleRecord {
        outcome: SampleOutcome::DISCARD,
        forensics: SampleForensics {
            started: p.now(),
            fwd: [PacketMatcher::flow(flow), PacketMatcher::flow(flow)],
            rev: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn clean_path_reports_all_ordered() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 42);
        let test = SingleConnectionTest::new(TestConfig::samples(30));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.samples.len(), 30);
        assert_eq!(run.fwd_reordered(), 0);
        assert_eq!(run.rev_reordered(), 0);
        assert!(run.fwd_determinate() >= 28, "few discards on clean path");
    }

    #[test]
    fn full_forward_swap_detected() {
        let mut sc = scenario::validation_rig(1.0, 0.0, 43);
        let test = SingleConnectionTest::new(TestConfig::samples(20));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        // Every adjacent pair swaps; samples are back-to-back pairs, so
        // every determinate sample must be Reordered.
        assert!(run.fwd_determinate() >= 10);
        assert_eq!(run.fwd_reordered(), run.fwd_determinate());
    }

    #[test]
    fn reverse_swaps_seen_on_reverse_path() {
        // The reversed variant makes both sample ACKs immediate (dup-ACK
        // then hole-fill ACK), so the pair travels back-to-back on the
        // reverse path where the dummynet can exchange it. (In the
        // in-order variant the second ACK is delayed by the remote's
        // delayed-ACK timer, which spreads the pair hundreds of
        // milliseconds apart — reordering processes act on packets close
        // in time, which is the whole point of §IV-C.)
        let mut sc = scenario::validation_rig(0.0, 1.0, 44);
        let test = SingleConnectionTest::reversed(TestConfig::samples(20));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.rev_determinate() >= 10);
        assert_eq!(run.rev_reordered(), run.rev_determinate());
        // Forward path was clean.
        assert_eq!(run.fwd_reordered(), 0);
    }

    #[test]
    fn in_order_variant_rev_pair_is_spread_by_delayed_ack() {
        // Companion to the test above: with a hole-fill-ACKing stack,
        // the in-order variant's two ACKs are separated by the delayed
        // ACK timer, so an adjacent-swap process with a short hold
        // cannot exchange them — the measured reverse rate is ~0 even
        // at rev_swap = 1. This is a real (and documented) sensitivity
        // of the in-order variant, not a bug.
        let mut sc = scenario::validation_rig(0.0, 1.0, 49);
        let test = SingleConnectionTest::new(TestConfig::samples(15));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.rev_reordered(), 0);
    }

    #[test]
    fn reversed_variant_matches_forward_rate() {
        let mut sc = scenario::validation_rig(0.3, 0.0, 45);
        let test = SingleConnectionTest::reversed(TestConfig::samples(60));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        let rate = run.fwd_estimate().rate();
        assert!(
            (0.1..=0.5).contains(&rate),
            "expected ≈0.3 swap rate, got {rate}"
        );
    }

    #[test]
    fn delayed_ack_stack_yields_indeterminates_in_order_variant() {
        // windows2000 delays hole-fill ACKs: in-order samples collapse
        // to a single cumulative ACK (§III-B ambiguity).
        let mut sc = scenario::validation_rig_with(
            0.0,
            0.0,
            reorder_tcpstack::HostPersonality::windows2000(),
            46,
        );
        let test = SingleConnectionTest::new(TestConfig::samples(10));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(
            run.fwd_determinate(),
            0,
            "in-order variant must be blind against ACK-collapsing stacks"
        );
        // The reversed variant restores visibility.
        let mut sc = scenario::validation_rig_with(
            0.0,
            0.0,
            reorder_tcpstack::HostPersonality::windows2000(),
            47,
        );
        let test = SingleConnectionTest::reversed(TestConfig::samples(10));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 8);
        assert_eq!(run.fwd_reordered(), 0);
    }

    #[test]
    fn lossy_path_discards_but_survives() {
        let mut sc = scenario::lossy_rig(0.2, 0.2, 48);
        let test = SingleConnectionTest::new(TestConfig::samples(25));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.samples.len(), 25);
        // Some samples discarded, but the connection stays consistent.
        assert!(run.fwd_determinate() < 25);
    }
}
