//! The TCP Data Transfer Test (§III-E) — the baseline the new
//! techniques are compared against.
//!
//! Fetch an object over HTTP-ish TCP and watch the sequence numbers of
//! the arriving data segments. To suppress congestion-control dynamics
//! the client (a) acknowledges **the largest sequence number received,
//! even if intermediate data is lost**, and (b) clamps the advertised
//! MSS and receive window so the server emits a steady stream of small
//! segments.
//!
//! Only the reverse path (server → probe) is measurable, the remote
//! must run a public data service, and the object must span at least
//! two segments ("this is a problem in practice for sites that use
//! HTTP redirects, which fit in a single packet").

use crate::measurer::{Requirements, Session, Technique};
use crate::probe::ProbeError;
use crate::sample::{
    MeasurementRun, Order, PacketMatcher, SampleForensics, SampleOutcome, SampleRecord, TestConfig,
};
use crate::techniques::TestKind;
use reorder_wire::{SeqNum, TcpFlags};
use std::time::Duration;

/// The TCP Data Transfer Test.
#[derive(Debug, Clone)]
pub struct DataTransferTest {
    /// Shared knobs. `samples` and `gap` are ignored: the object size
    /// determines the sample count ("a variable number of samples
    /// depending on the number of packets required to transfer the root
    /// Web object").
    pub cfg: TestConfig,
    /// MSS to advertise (clamped small to get many segments).
    pub clamp_mss: u16,
    /// Receive window to advertise (limits the in-flight burst).
    pub clamp_window: u16,
}

impl DataTransferTest {
    /// Default clamps: 256-byte MSS, 2-segment window.
    pub fn new(cfg: TestConfig) -> Self {
        DataTransferTest {
            cfg,
            clamp_mss: 256,
            clamp_window: 512,
        }
    }

    fn fetch(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        // Without keep-alive the clamped connection is consumed by the
        // transfer (FIN or RST), so it is checked out but never checked
        // back in. With `cfg.keep_alive` the request asks the server
        // for a persistent connection and a cleanly finished fetch is
        // returned to the session for the next round — on a reusing
        // session, multi-round transfer baselines share one handshake.
        let mut conn = session.checkout(
            "transfer",
            self.clamp_mss,
            self.clamp_window,
            self.cfg.reply_timeout,
        )?;
        let keep_alive = self.cfg.keep_alive;
        let p = session.prober();
        let flow = conn.flow;
        let started = p.now();
        let req: reorder_wire::Bytes = if keep_alive {
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".into()
        } else {
            b"GET / HTTP/1.0\r\n\r\n".into()
        };
        let req_len = req.len() as u32;
        let get = p
            .tcp_pkt(&conn)
            .seq(conn.snd_nxt)
            .ack(conn.rcv_nxt)
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .window(self.clamp_window)
            .data(req)
            .build();
        conn.snd_nxt = conn.snd_nxt + req_len;
        p.send(get);

        // Collect data segments, ACKing the highest byte seen.
        let mut arrivals: Vec<SeqNum> = Vec::new();
        let mut highest_end = conn.rcv_nxt;
        let mut fin_seen = false;
        let mut rst_seen = false;
        let mut done_seen = false;
        loop {
            let got = p.recv_where(
                |pkt| {
                    pkt.flow() == Some(flow.reversed())
                        && pkt.tcp().is_some_and(|t| {
                            t.flags.contains(TcpFlags::FIN)
                                || t.flags.contains(TcpFlags::RST)
                                || pkt.tcp_data().is_some_and(|d| !d.is_empty())
                                // Keep-alive completion marker: empty
                                // PSH|ACK from the server (see
                                // `Conn::pump_tx`).
                                || (keep_alive
                                    && t.flags.contains(TcpFlags::PSH | TcpFlags::ACK)
                                    && pkt.tcp_data().is_some_and(<[u8]>::is_empty))
                        })
                },
                self.cfg.reply_timeout,
            );
            let Some(r) = got else {
                break; // idle: transfer stalled or finished silently
            };
            let tcp = r.pkt.tcp().expect("tcp");
            if tcp.flags.contains(TcpFlags::RST) {
                rst_seen = true;
                break;
            }
            if keep_alive
                && tcp.flags.contains(TcpFlags::PSH | TcpFlags::ACK)
                && r.pkt.tcp_data().is_some_and(<[u8]>::is_empty)
            {
                // Positive completion: the whole object was served and
                // acknowledged; the connection is reusable.
                done_seen = true;
                break;
            }
            let dlen = r.pkt.tcp_data().map_or(0, <[u8]>::len) as u32;
            if dlen > 0 {
                arrivals.push(tcp.seq);
                let end = tcp.seq + dlen;
                if end > highest_end {
                    highest_end = end;
                }
                // "generating acknowledgments for the largest sequence
                // number received, even if intermediate data is lost"
                let ack = p
                    .tcp_pkt(&conn)
                    .seq(conn.snd_nxt)
                    .ack(highest_end)
                    .flags(TcpFlags::ACK)
                    .window(self.clamp_window)
                    .build();
                p.send(ack);
            }
            if tcp.flags.contains(TcpFlags::FIN) {
                fin_seen = true;
                conn.rcv_nxt = tcp.seq + dlen + 1;
                let ack = p
                    .tcp_pkt(&conn)
                    .seq(conn.snd_nxt)
                    .ack(conn.rcv_nxt)
                    .flags(TcpFlags::ACK)
                    .window(self.clamp_window)
                    .build();
                p.send(ack);
                break;
            }
        }
        // A persistent fetch ends with the server's completion marker,
        // the client's positive signal to hand the connection back to
        // the session. A fetch that instead ended by RST, FIN or idle
        // timeout (tail loss leaves the server's transmit stalled with
        // no marker) is NOT reusable — checking it in would poison the
        // next round, so it takes the teardown paths below and the
        // next round handshakes afresh.
        let keep = done_seen && !fin_seen && !rst_seen && arrivals.len() >= 2;
        if keep {
            conn.rcv_nxt = highest_end;
            session.checkin(
                "transfer",
                self.clamp_mss,
                self.clamp_window,
                conn,
                self.cfg.reply_timeout,
            );
        } else if !fin_seen {
            // Stalled (loss without retransmission, or no object): shut
            // the connection down hard.
            p.abort(&conn);
        } else {
            // Our side still owes a FIN.
            let fin = p
                .tcp_pkt(&conn)
                .seq(conn.snd_nxt)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .build();
            p.send(fin);
            p.run_for(Duration::from_millis(2));
        }

        if arrivals.len() < 2 {
            return Err(ProbeError::HostUnsuitable(format!(
                "object spanned {} segment(s); need at least 2 (§III-E)",
                arrivals.len()
            )));
        }

        // Every adjacent arrival pair is one reverse-path sample. The
        // server transmits in sequence order (no retransmissions occur
        // under the ACK-highest policy), so arrival inversions are
        // in-flight exchanges.
        let mut run = MeasurementRun::default();
        for pair in arrivals.windows(2) {
            let reordered = pair[1] < pair[0];
            run.samples.push(SampleRecord {
                outcome: SampleOutcome {
                    fwd: Order::Indeterminate, // this test cannot see forward
                    rev: if reordered {
                        Order::Reordered
                    } else {
                        Order::Ordered
                    },
                },
                forensics: SampleForensics {
                    started,
                    fwd: [
                        PacketMatcher::flow(flow), // placeholders; fwd unused
                        PacketMatcher::flow(flow),
                    ],
                    rev: Some([
                        PacketMatcher::flow(flow.reversed())
                            .seq(pair[0].min(pair[1]))
                            .min_data(1),
                        PacketMatcher::flow(flow.reversed())
                            .seq(pair[0].max(pair[1]))
                            .min_data(1),
                    ]),
                },
            });
        }
        Ok(run)
    }
}

impl Technique for DataTransferTest {
    fn kind(&self) -> TestKind {
        TestKind::DataTransfer
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            measures_fwd: false, // "only the reverse path is measurable"
            measures_rev: true,
            connections: 1,
            needs_global_ipid: false,
            needs_object: true,
        }
    }

    fn execute(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        self.fetch(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn clean_transfer_all_ordered() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 80);
        let run = DataTransferTest::new(TestConfig::default())
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        // 16 KiB object at 256-byte MSS → 64 segments → 63 samples.
        assert_eq!(run.samples.len(), 63);
        assert_eq!(run.rev_reordered(), 0);
        assert_eq!(run.rev_determinate(), 63);
        assert_eq!(run.fwd_determinate(), 0, "no forward inference");
    }

    #[test]
    fn reverse_swaps_detected() {
        let mut sc = scenario::validation_rig(0.0, 0.25, 81);
        let run = DataTransferTest::new(TestConfig::default())
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.samples.len() >= 50);
        let rate = run.rev_estimate().rate();
        assert!(rate > 0.05, "swaps must be visible, got {rate}");
    }

    #[test]
    fn forward_swaps_invisible() {
        // Reordering the GET direction cannot affect this test.
        let mut sc = scenario::validation_rig(0.9, 0.0, 82);
        let run = DataTransferTest::new(TestConfig::default())
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.rev_reordered(), 0);
    }

    #[test]
    fn small_object_rejected() {
        // 256-byte object fits one clamped segment → unusable (§III-E:
        // HTTP-redirect-sized responses).
        let spec = scenario::HostSpec {
            delay: Duration::from_millis(5),
            object_size: 200,
            ..scenario::HostSpec::clean("tiny", reorder_tcpstack::HostPersonality::freebsd4())
        };
        let mut sc = scenario::internet_host(&spec, 83);
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        match DataTransferTest::new(TestConfig::default()).execute(&mut session) {
            Err(ProbeError::HostUnsuitable(why)) => assert!(why.contains("segment")),
            other => panic!("expected HostUnsuitable, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_reuses_one_clamped_connection_across_rounds() {
        use crate::measurer::{Session, Technique};
        let mut sc = scenario::validation_rig(0.0, 0.1, 85);
        let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
        let test = DataTransferTest::new(TestConfig::default().with_keep_alive(true));
        for round in 0..3 {
            let run = test.execute(&mut session).expect("round");
            assert_eq!(run.samples.len(), 63, "round {round}: full object");
        }
        assert_eq!(
            session.stats().handshakes,
            1,
            "rounds 2 and 3 must ride round 1's clamped connection"
        );
        assert_eq!(session.stats().reused, 2);
        session.finish(Duration::from_secs(1));
        assert_eq!(
            session.prober().handshakes_performed(),
            1,
            "wire-level truth"
        );
    }

    #[test]
    fn keep_alive_under_loss_never_reuses_a_stalled_connection() {
        // Tail loss leaves the server's transmit stalled and produces
        // no completion marker, so the fetch must NOT check the
        // connection in; later rounds recover with fresh handshakes
        // instead of being poisoned by a dead cached connection.
        use crate::measurer::{Session, Technique};
        let mut sc = scenario::lossy_rig(0.0, 0.08, 87);
        let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
        let test = DataTransferTest::new(TestConfig::default().with_keep_alive(true));
        let mut completed = 0;
        for _ in 0..4 {
            if let Ok(run) = test.execute(&mut session) {
                assert!(run.samples.len() >= 2);
                completed += 1;
            }
        }
        assert!(completed >= 2, "rounds must keep completing under loss");
        let stats = session.stats();
        // Every reuse must have been of a marker-confirmed connection:
        // checkouts = handshakes + reused, and no round may error from
        // a poisoned cache (an erroring round here would return 0
        // arrivals; `completed` counts the successes).
        assert_eq!(stats.handshakes + stats.reused, 4);
    }

    #[test]
    fn keep_alive_without_session_reuse_closes_politely() {
        // `--no-reuse` semantics: the keep-alive fetch still works, but
        // the checkin closes the connection, so every round handshakes.
        use crate::measurer::{Session, Technique};
        let mut sc = scenario::validation_rig(0.0, 0.0, 86);
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        let test = DataTransferTest::new(TestConfig::default().with_keep_alive(true));
        for _ in 0..2 {
            let run = test.execute(&mut session).expect("round");
            assert_eq!(run.samples.len(), 63);
        }
        assert_eq!(session.stats().handshakes, 2);
        assert_eq!(session.stats().reused, 0);
    }

    #[test]
    fn loss_tolerated_by_ack_highest_policy() {
        let mut sc = scenario::lossy_rig(0.0, 0.05, 84);
        let run = DataTransferTest::new(TestConfig::default())
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        // Lost segments simply vanish from the arrival list; the
        // transfer still completes with fewer samples.
        assert!(run.samples.len() >= 40);
        assert!(run.samples.len() <= 63);
    }
}
