//! The TCP Data Transfer Test (§III-E) — the baseline the new
//! techniques are compared against.
//!
//! Fetch an object over HTTP-ish TCP and watch the sequence numbers of
//! the arriving data segments. To suppress congestion-control dynamics
//! the client (a) acknowledges **the largest sequence number received,
//! even if intermediate data is lost**, and (b) clamps the advertised
//! MSS and receive window so the server emits a steady stream of small
//! segments.
//!
//! Only the reverse path (server → probe) is measurable, the remote
//! must run a public data service, and the object must span at least
//! two segments ("this is a problem in practice for sites that use
//! HTTP redirects, which fit in a single packet").

use crate::measurer::{Requirements, Session, Technique};
use crate::probe::{ProbeError, Prober};
use crate::sample::{
    MeasurementRun, Order, PacketMatcher, SampleForensics, SampleOutcome, SampleRecord, TestConfig,
};
use crate::techniques::TestKind;
use reorder_wire::{Ipv4Addr4, SeqNum, TcpFlags};
use std::time::Duration;

/// The TCP Data Transfer Test.
#[derive(Debug, Clone)]
pub struct DataTransferTest {
    /// Shared knobs. `samples` and `gap` are ignored: the object size
    /// determines the sample count ("a variable number of samples
    /// depending on the number of packets required to transfer the root
    /// Web object").
    pub cfg: TestConfig,
    /// MSS to advertise (clamped small to get many segments).
    pub clamp_mss: u16,
    /// Receive window to advertise (limits the in-flight burst).
    pub clamp_window: u16,
}

impl DataTransferTest {
    /// Default clamps: 256-byte MSS, 2-segment window.
    pub fn new(cfg: TestConfig) -> Self {
        DataTransferTest {
            cfg,
            clamp_mss: 256,
            clamp_window: 512,
        }
    }

    /// Fetch the object and classify every adjacent arrival pair.
    #[deprecated(
        since = "0.2.0",
        note = "use `Technique::execute` on a `Session` (or the `Measurer` builder)"
    )]
    pub fn run(
        &self,
        p: &mut Prober,
        target: Ipv4Addr4,
        port: u16,
    ) -> Result<MeasurementRun, ProbeError> {
        self.execute(&mut Session::new(p, target, port))
    }

    fn fetch(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        // The clamped connection is consumed by the transfer (FIN or
        // RST), so it is checked out but never checked back in.
        let mut conn = session.checkout(
            "transfer",
            self.clamp_mss,
            self.clamp_window,
            self.cfg.reply_timeout,
        )?;
        let p = session.prober();
        let flow = conn.flow;
        let started = p.now();
        let req = b"GET / HTTP/1.0\r\n\r\n".to_vec();
        let get = p
            .tcp_pkt(&conn)
            .seq(conn.snd_nxt)
            .ack(conn.rcv_nxt)
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .window(self.clamp_window)
            .data(req.clone())
            .build();
        conn.snd_nxt = conn.snd_nxt + req.len() as u32;
        p.send(get);

        // Collect data segments, ACKing the highest byte seen.
        let mut arrivals: Vec<SeqNum> = Vec::new();
        let mut highest_end = conn.rcv_nxt;
        let mut fin_seen = false;
        loop {
            let got = p.recv_where(
                |pkt| {
                    pkt.flow() == Some(flow.reversed())
                        && pkt.tcp().is_some_and(|t| {
                            t.flags.contains(TcpFlags::FIN)
                                || t.flags.contains(TcpFlags::RST)
                                || pkt.tcp_data().is_some_and(|d| !d.is_empty())
                        })
                },
                self.cfg.reply_timeout,
            );
            let Some(r) = got else {
                break; // idle: transfer stalled or finished silently
            };
            let tcp = r.pkt.tcp().expect("tcp");
            if tcp.flags.contains(TcpFlags::RST) {
                break;
            }
            let dlen = r.pkt.tcp_data().map_or(0, <[u8]>::len) as u32;
            if dlen > 0 {
                arrivals.push(tcp.seq);
                let end = tcp.seq + dlen;
                if end > highest_end {
                    highest_end = end;
                }
                // "generating acknowledgments for the largest sequence
                // number received, even if intermediate data is lost"
                let ack = p
                    .tcp_pkt(&conn)
                    .seq(conn.snd_nxt)
                    .ack(highest_end)
                    .flags(TcpFlags::ACK)
                    .window(self.clamp_window)
                    .build();
                p.send(ack);
            }
            if tcp.flags.contains(TcpFlags::FIN) {
                fin_seen = true;
                conn.rcv_nxt = tcp.seq + dlen + 1;
                let ack = p
                    .tcp_pkt(&conn)
                    .seq(conn.snd_nxt)
                    .ack(conn.rcv_nxt)
                    .flags(TcpFlags::ACK)
                    .window(self.clamp_window)
                    .build();
                p.send(ack);
                break;
            }
        }
        if !fin_seen {
            // Stalled (loss without retransmission, or no object): shut
            // the connection down hard.
            p.abort(&conn);
        } else {
            // Our side still owes a FIN.
            let fin = p
                .tcp_pkt(&conn)
                .seq(conn.snd_nxt)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .build();
            p.send(fin);
            p.run_for(Duration::from_millis(2));
        }

        if arrivals.len() < 2 {
            return Err(ProbeError::HostUnsuitable(format!(
                "object spanned {} segment(s); need at least 2 (§III-E)",
                arrivals.len()
            )));
        }

        // Every adjacent arrival pair is one reverse-path sample. The
        // server transmits in sequence order (no retransmissions occur
        // under the ACK-highest policy), so arrival inversions are
        // in-flight exchanges.
        let mut run = MeasurementRun::default();
        for pair in arrivals.windows(2) {
            let reordered = pair[1] < pair[0];
            run.samples.push(SampleRecord {
                outcome: SampleOutcome {
                    fwd: Order::Indeterminate, // this test cannot see forward
                    rev: if reordered {
                        Order::Reordered
                    } else {
                        Order::Ordered
                    },
                },
                forensics: SampleForensics {
                    started,
                    fwd: [
                        PacketMatcher::flow(flow), // placeholders; fwd unused
                        PacketMatcher::flow(flow),
                    ],
                    rev: Some([
                        PacketMatcher::flow(flow.reversed())
                            .seq(pair[0].min(pair[1]))
                            .min_data(1),
                        PacketMatcher::flow(flow.reversed())
                            .seq(pair[0].max(pair[1]))
                            .min_data(1),
                    ]),
                },
            });
        }
        Ok(run)
    }
}

impl Technique for DataTransferTest {
    fn kind(&self) -> TestKind {
        TestKind::DataTransfer
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            measures_fwd: false, // "only the reverse path is measurable"
            measures_rev: true,
            connections: 1,
            needs_global_ipid: false,
            needs_object: true,
        }
    }

    fn execute(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        self.fetch(session)
    }
}

#[cfg(test)]
mod tests {
    // These unit tests deliberately drive the deprecated `run()` shim:
    // it is the compatibility contract kept for one release (new-API
    // coverage lives in `tests/conformance.rs`).
    #![allow(deprecated)]

    use super::*;
    use crate::scenario;

    #[test]
    fn clean_transfer_all_ordered() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 80);
        let run = DataTransferTest::new(TestConfig::default())
            .run(&mut sc.prober, sc.target, 80)
            .expect("run");
        // 16 KiB object at 256-byte MSS → 64 segments → 63 samples.
        assert_eq!(run.samples.len(), 63);
        assert_eq!(run.rev_reordered(), 0);
        assert_eq!(run.rev_determinate(), 63);
        assert_eq!(run.fwd_determinate(), 0, "no forward inference");
    }

    #[test]
    fn reverse_swaps_detected() {
        let mut sc = scenario::validation_rig(0.0, 0.25, 81);
        let run = DataTransferTest::new(TestConfig::default())
            .run(&mut sc.prober, sc.target, 80)
            .expect("run");
        assert!(run.samples.len() >= 50);
        let rate = run.rev_estimate().rate();
        assert!(rate > 0.05, "swaps must be visible, got {rate}");
    }

    #[test]
    fn forward_swaps_invisible() {
        // Reordering the GET direction cannot affect this test.
        let mut sc = scenario::validation_rig(0.9, 0.0, 82);
        let run = DataTransferTest::new(TestConfig::default())
            .run(&mut sc.prober, sc.target, 80)
            .expect("run");
        assert_eq!(run.rev_reordered(), 0);
    }

    #[test]
    fn small_object_rejected() {
        // 256-byte object fits one clamped segment → unusable (§III-E:
        // HTTP-redirect-sized responses).
        let spec = scenario::HostSpec {
            delay: Duration::from_millis(5),
            object_size: 200,
            ..scenario::HostSpec::clean("tiny", reorder_tcpstack::HostPersonality::freebsd4())
        };
        let mut sc = scenario::internet_host(&spec, 83);
        match DataTransferTest::new(TestConfig::default()).run(&mut sc.prober, sc.target, 80) {
            Err(ProbeError::HostUnsuitable(why)) => assert!(why.contains("segment")),
            other => panic!("expected HostUnsuitable, got {other:?}"),
        }
    }

    #[test]
    fn loss_tolerated_by_ack_highest_policy() {
        let mut sc = scenario::lossy_rig(0.0, 0.05, 84);
        let run = DataTransferTest::new(TestConfig::default())
            .run(&mut sc.prober, sc.target, 80)
            .expect("run");
        // Lost segments simply vanish from the arrival list; the
        // transfer still completes with fewer samples.
        assert!(run.samples.len() >= 40);
        assert!(run.samples.len() <= 63);
    }
}
