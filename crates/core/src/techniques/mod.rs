//! The paper's four measurement techniques (§III-B through §III-E).
//!
//! | Technique | Forward path | Reverse path | Defeated by |
//! |-----------|--------------|--------------|-------------|
//! | [`SingleConnectionTest`] | ✓ | ✓ | delayed ACKs (mitigated by the reversed variant) |
//! | [`DualConnectionTest`] | ✓ | ✓ | random/zero IPIDs, load balancers (detected by [`IpidValidator`]) |
//! | [`SynTest`] | ✓ | ✓ | nonstandard second-SYN handling |
//! | [`DataTransferTest`] | — | ✓ | needs a public object spanning ≥ 2 packets |

pub mod dual;
pub mod single;
pub mod syn;
pub mod transfer;

pub use dual::{DualConnectionTest, IpidValidator, IpidVerdict};
pub use single::SingleConnectionTest;
pub use syn::SynTest;
pub use transfer::DataTransferTest;

/// Identifies a technique in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestKind {
    /// §III-B, samples sent in order.
    SingleConnection,
    /// §III-B, samples sent reversed to defeat delayed ACKs.
    SingleConnectionReversed,
    /// §III-C.
    DualConnection,
    /// §III-D.
    Syn,
    /// §III-E.
    DataTransfer,
}

impl TestKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TestKind::SingleConnection => "single",
            TestKind::SingleConnectionReversed => "single-rev",
            TestKind::DualConnection => "dual",
            TestKind::Syn => "syn",
            TestKind::DataTransfer => "transfer",
        }
    }

    /// All kinds, in the paper's presentation order.
    pub fn all() -> [TestKind; 5] {
        [
            TestKind::SingleConnection,
            TestKind::SingleConnectionReversed,
            TestKind::DualConnection,
            TestKind::Syn,
            TestKind::DataTransfer,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = TestKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
