//! The paper's four measurement techniques (§III-B through §III-E).
//!
//! | Technique | Forward path | Reverse path | Defeated by |
//! |-----------|--------------|--------------|-------------|
//! | [`SingleConnectionTest`] | ✓ | ✓ | delayed ACKs (mitigated by the reversed variant) |
//! | [`DualConnectionTest`] | ✓ | ✓ | random/zero IPIDs, load balancers (detected by [`IpidValidator`]) |
//! | [`SynTest`] | ✓ | ✓ | nonstandard second-SYN handling |
//! | [`DataTransferTest`] | — | ✓ | needs a public object spanning ≥ 2 packets |

pub mod dual;
pub mod single;
pub mod syn;
pub mod transfer;

pub use dual::{DualConnectionTest, IpidValidator, IpidVerdict};
pub use single::SingleConnectionTest;
pub use syn::SynTest;
pub use transfer::DataTransferTest;

use std::fmt;
use std::str::FromStr;

/// Identifies a technique in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TestKind {
    /// §III-B, samples sent in order.
    SingleConnection,
    /// §III-B, samples sent reversed to defeat delayed ACKs.
    SingleConnectionReversed,
    /// §III-C.
    DualConnection,
    /// §III-D.
    Syn,
    /// §III-E.
    DataTransfer,
}

impl TestKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TestKind::SingleConnection => "single",
            TestKind::SingleConnectionReversed => "single-rev",
            TestKind::DualConnection => "dual",
            TestKind::Syn => "syn",
            TestKind::DataTransfer => "transfer",
        }
    }

    /// All kinds, in the paper's presentation order.
    pub fn all() -> [TestKind; 5] {
        [
            TestKind::SingleConnection,
            TestKind::SingleConnectionReversed,
            TestKind::DualConnection,
            TestKind::Syn,
            TestKind::DataTransfer,
        ]
    }

    /// Every accepted spelling, for error messages and usage text
    /// (identical to the [`TestKind::label`] set).
    pub const ACCEPTED: [&'static str; 5] = ["single", "single-rev", "dual", "syn", "transfer"];
}

impl fmt::Display for TestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from [`TestKind::from_str`]: the rejected spelling. The
/// [`fmt::Display`] rendering lists the accepted set so an unknown
/// technique name is never silently ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTestKind(pub String);

impl fmt::Display for UnknownTestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technique `{}` (accepted: {})",
            self.0,
            TestKind::ACCEPTED.join(", ")
        )
    }
}

impl std::error::Error for UnknownTestKind {}

impl FromStr for TestKind {
    type Err = UnknownTestKind;

    /// Exhaustive, case-sensitive parse of the [`TestKind::label`]
    /// spellings — the one place technique names are matched as
    /// strings.
    fn from_str(s: &str) -> Result<TestKind, UnknownTestKind> {
        TestKind::all()
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| UnknownTestKind(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = TestKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn from_str_round_trips_every_label() {
        for kind in TestKind::all() {
            assert_eq!(kind.label().parse::<TestKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(
            TestKind::ACCEPTED.to_vec(),
            TestKind::all().map(|k| k.label()).to_vec()
        );
    }

    #[test]
    fn from_str_error_lists_accepted_set() {
        let err = "warp".parse::<TestKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown technique `warp`"), "{msg}");
        for name in TestKind::ACCEPTED {
            assert!(msg.contains(name), "error must list `{name}`: {msg}");
        }
    }
}
