//! The SYN Test (§III-D, Fig. 4).
//!
//! Each sample is a pair of **identical SYNs that differ only in their
//! starting sequence number** (slightly offset). Because every field a
//! load balancer hashes is equal, both SYNs reach the same backend —
//! this is the only test that survives transparent load balancing.
//!
//! Classification:
//! * **forward**: the SYN/ACK acknowledges `first-arrived seq + 1`, so
//!   its ack number directly names which SYN won the race;
//! * **reverse**: the remote generates the SYN/ACK (response to the
//!   first arrival) strictly before its response to the second SYN
//!   (RST, pure ACK, or second RST depending on the implementation), so
//!   observing the second response *before* the SYN/ACK means the
//!   replies were exchanged on the way back.
//!
//! Etiquette (§III-D): samples are paced, and when the half-open
//! connection survives (implementations that ignore the second SYN or
//! answer it with a pure ACK) we complete the handshake and close it
//! properly, so trials are not mistaken for a SYN flood.

use crate::measurer::{Requirements, Session, Technique};
use crate::probe::{ClientConn, ProbeError, Prober};
use crate::sample::{
    MeasurementRun, Order, PacketMatcher, SampleForensics, SampleOutcome, SampleRecord, TestConfig,
};
use crate::techniques::TestKind;
use reorder_wire::{FlowKey, Ipv4Addr4, SeqNum, TcpFlags, TcpOption};

/// The SYN Test.
#[derive(Debug, Clone)]
pub struct SynTest {
    /// Shared knobs.
    pub cfg: TestConfig,
}

impl SynTest {
    /// New test.
    pub fn new(cfg: TestConfig) -> Self {
        SynTest { cfg }
    }

    fn run_samples(
        &self,
        p: &mut Prober,
        target: Ipv4Addr4,
        port: u16,
    ) -> Result<MeasurementRun, ProbeError> {
        let mut run = MeasurementRun::default();
        for _ in 0..self.cfg.samples {
            p.run_for(self.cfg.pace);
            run.samples.push(self.sample(p, target, port));
        }
        // Loss-disambiguation pass: a lone SYN/ACK admits two readings —
        // the host ignores second SYNs (fine, classify from the ack
        // number), or one SYN was lost (the verdict is then meaningless:
        // a lost first SYN masquerades as reordering). If this host
        // demonstrably answers second SYNs (any sample saw a second
        // reply), treat reply-less samples as loss and discard their
        // forward verdicts, exactly like §III-B discards lossy samples.
        let host_answers_second = run.samples.iter().any(|s| s.forensics.rev.is_some());
        if host_answers_second {
            for s in &mut run.samples {
                if s.forensics.rev.is_none() {
                    s.outcome.fwd = Order::Indeterminate;
                }
            }
        }
        Ok(run)
    }

    fn sample(&self, p: &mut Prober, target: Ipv4Addr4, port: u16) -> SampleRecord {
        p.flush();
        let local_port = p.alloc_port();
        let iss = p.alloc_iss();
        let flow = FlowKey {
            src: p.local_addr,
            src_port: local_port,
            dst: target,
            dst_port: port,
        };
        let started = p.now();
        let ipid1 = p.alloc_ipid();
        let ipid2 = p.alloc_ipid();
        let seq1 = iss;
        let seq2 = iss + 2; // offset 2: distinguishable from a retransmit
        let mk = |seq: SeqNum, ipid| {
            reorder_wire::PacketBuilder::tcp()
                .src(flow.src, flow.src_port)
                .dst(flow.dst, flow.dst_port)
                .seq(seq)
                .flags(TcpFlags::SYN)
                .option(TcpOption::Mss(1460))
                .ipid(ipid)
                .build()
        };
        p.send(mk(seq1, ipid1));
        p.run_for(self.cfg.gap);
        p.send(mk(seq2, ipid2));

        // Collect up to 3 replies (dual-RST stacks send three packets).
        let replies = p.recv_n_where(
            |pkt| pkt.flow() == Some(flow.reversed()) && pkt.tcp().is_some(),
            3,
            self.cfg.reply_timeout,
        );
        let forensics_fwd = [
            PacketMatcher::flow(flow).ipid(ipid1).seq(seq1),
            PacketMatcher::flow(flow).ipid(ipid2).seq(seq2),
        ];
        let synack_pos = replies.iter().position(|r| {
            r.pkt
                .tcp()
                .is_some_and(|t| t.flags.contains(TcpFlags::SYN | TcpFlags::ACK))
        });
        let second_pos = replies.iter().position(|r| {
            r.pkt.tcp().is_some_and(|t| {
                !t.flags.contains(TcpFlags::SYN)
                    && (t.flags.contains(TcpFlags::RST) || t.flags.contains(TcpFlags::ACK))
            })
        });

        let Some(sa) = synack_pos else {
            // No SYN/ACK at all (lost, or pathologically silent host):
            // nothing can be inferred. Clean up any half-state with RST.
            let conn = ClientConn {
                flow,
                iss,
                irs: SeqNum(0),
                snd_nxt: iss + 1,
                rcv_nxt: SeqNum(0),
                server_mss: 536,
            };
            p.abort(&conn);
            return SampleRecord {
                outcome: SampleOutcome::DISCARD,
                forensics: SampleForensics {
                    started,
                    fwd: forensics_fwd,
                    rev: None,
                },
            };
        };
        let synack = &replies[sa];
        let synack_tcp = synack.pkt.tcp().expect("tcp").clone();

        // Forward: which SYN does the SYN/ACK acknowledge?
        let fwd = if synack_tcp.ack == seq1 + 1 {
            Order::Ordered
        } else if synack_tcp.ack == seq2 + 1 {
            Order::Reordered
        } else {
            Order::Indeterminate
        };

        // Reverse: did the response to the second SYN overtake the
        // SYN/ACK? (The remote generates the SYN/ACK first.)
        let rev = match second_pos {
            Some(sp) => {
                if sp < sa {
                    Order::Reordered
                } else {
                    Order::Ordered
                }
            }
            None => Order::Indeterminate,
        };

        // Politeness: if no RST was exchanged the server still holds a
        // half-open connection — complete and close it.
        let saw_rst = replies
            .iter()
            .any(|r| r.pkt.tcp().is_some_and(|t| t.flags.contains(TcpFlags::RST)));
        if !saw_rst {
            let first_arrived_seq = synack_tcp.ack - 1;
            let mut conn = ClientConn {
                flow,
                iss: first_arrived_seq,
                irs: synack_tcp.seq,
                snd_nxt: synack_tcp.ack,
                rcv_nxt: synack_tcp.seq + 1,
                server_mss: synack_tcp.mss().unwrap_or(536),
            };
            let ack = p
                .tcp_pkt(&conn)
                .seq(conn.snd_nxt)
                .ack(conn.rcv_nxt)
                .flags(TcpFlags::ACK)
                .build();
            p.send(ack);
            p.close(&mut conn, self.cfg.reply_timeout);
        }

        // Reply matchers in remote-generation order: SYN/ACK first, then
        // the second response.
        let rev_forensics = second_pos.map(|sp| {
            let second_tcp = replies[sp].pkt.tcp().expect("tcp");
            let second_matcher = if second_tcp.flags.contains(TcpFlags::RST) {
                PacketMatcher::flow(flow.reversed()).flags(TcpFlags::RST)
            } else {
                PacketMatcher::flow(flow.reversed())
                    .flags(TcpFlags::ACK)
                    .without(TcpFlags::SYN | TcpFlags::RST | TcpFlags::FIN)
            };
            [
                PacketMatcher::flow(flow.reversed()).flags(TcpFlags::SYN | TcpFlags::ACK),
                second_matcher,
            ]
        });
        SampleRecord {
            outcome: SampleOutcome { fwd, rev },
            forensics: SampleForensics {
                started,
                fwd: forensics_fwd,
                rev: rev_forensics,
            },
        }
    }
}

impl Technique for SynTest {
    fn kind(&self) -> TestKind {
        TestKind::Syn
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            measures_fwd: true,
            measures_rev: true,
            connections: 0, // raw per-sample flows, nothing held open
            needs_global_ipid: false,
            needs_object: false,
        }
    }

    fn execute(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        let (target, port) = (session.target(), session.port());
        self.run_samples(session.prober(), target, port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn clean_path_all_ordered() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 70);
        let run = SynTest::new(TestConfig::samples(20))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.samples.len(), 20);
        assert_eq!(run.fwd_reordered(), 0);
        assert_eq!(run.rev_reordered(), 0);
        assert!(run.fwd_determinate() >= 19);
        assert!(run.rev_determinate() >= 19);
    }

    #[test]
    fn forward_swaps_detected() {
        let mut sc = scenario::validation_rig(1.0, 0.0, 71);
        let run = SynTest::new(TestConfig::samples(20))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 15);
        assert_eq!(run.fwd_reordered(), run.fwd_determinate());
    }

    #[test]
    fn reverse_swaps_detected() {
        let mut sc = scenario::validation_rig(0.0, 1.0, 72);
        let run = SynTest::new(TestConfig::samples(20))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.rev_determinate() >= 15);
        assert_eq!(run.rev_reordered(), run.rev_determinate());
        assert_eq!(run.fwd_reordered(), 0);
    }

    #[test]
    fn works_through_load_balancer() {
        // The SYN test's raison d'être: identical 4-tuples pin both
        // SYNs to one backend, so measurements stay sound.
        let mut sc = scenario::load_balanced(0.5, 0.0, 4, HostPersonality::freebsd4(), 73);
        let run = SynTest::new(TestConfig::samples(40))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 30);
        let rate = run.fwd_estimate().rate();
        assert!(
            (0.2..=0.7).contains(&rate),
            "expected ≈0.5 forward swap rate through LB, got {rate}"
        );
    }

    #[test]
    fn spec_compliant_host_still_classified() {
        let mut sc = scenario::validation_rig_with(
            0.5,
            0.0,
            HostPersonality::linux22(), // SpecCompliant second-SYN
            74,
        );
        let run = SynTest::new(TestConfig::samples(40))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 30);
        let rate = run.fwd_estimate().rate();
        assert!((0.25..=0.75).contains(&rate), "rate {rate}");
    }

    #[test]
    fn dual_rst_host_classified() {
        let mut sc = scenario::validation_rig_with(
            0.3,
            0.0,
            HostPersonality::windows2000(), // DualRst
            75,
        );
        let run = SynTest::new(TestConfig::samples(40))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 30);
        let rate = run.fwd_estimate().rate();
        assert!((0.1..=0.55).contains(&rate), "rate {rate}");
    }

    #[test]
    fn ignore_second_host_gives_forward_only() {
        let mut sc = scenario::validation_rig_with(
            0.4,
            0.0,
            HostPersonality::hardened(), // IgnoreSecond
            76,
        );
        let run = SynTest::new(TestConfig::samples(30))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        // Forward inference works from the SYN/ACK ack number alone.
        assert!(run.fwd_determinate() >= 25);
        // But with only one reply the reverse path is unmeasurable.
        assert_eq!(run.rev_determinate(), 0);
        let rate = run.fwd_estimate().rate();
        assert!((0.2..=0.6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn no_lingering_half_open_connections() {
        // After a polite run, a fresh handshake on the same port must
        // still work (server resources not exhausted by half-open
        // connections, and our close path executed).
        let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::hardened(), 77);
        let run = SynTest::new(TestConfig::samples(10))
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.samples.len(), 10);
        let conn = sc.prober.handshake(
            sc.target,
            80,
            1460,
            65535,
            std::time::Duration::from_secs(1),
        );
        assert!(conn.is_ok(), "server must still accept connections");
    }
}
