//! The Dual Connection Test (§III-C, Fig. 2).
//!
//! Two TCP connections to the target. Each sample sends one 1-byte
//! out-of-order segment per connection (so both are acknowledged
//! *immediately*, defeating delayed ACKs). Under the traditional
//! global-IPID hypothesis, the IPIDs of the two ACKs reveal the order
//! the remote host *generated* them — and since ACK generation order
//! equals data receive order ("transport-layer processing is handled in
//! the kernel, frequently driven directly by an interrupt"), the sender
//! learns the forward-path order. Comparing the ACKs' generation order
//! with their arrival order yields the reverse-path order.
//!
//! The whole scheme collapses if IPIDs are random (OpenBSD), constant
//! zero (Linux 2.4), or drawn from different counters (transparent load
//! balancer assigning the two connections to different backends,
//! Fig. 3). [`IpidValidator`] detects all three *before* measurement by
//! checking that within-connection IPID gaps dominate the
//! between-connection gaps.

use crate::measurer::{Requirements, Session, Technique};
use crate::probe::{ClientConn, ProbeError, Prober};
use crate::sample::{
    MeasurementRun, Order, PacketMatcher, SampleForensics, SampleOutcome, SampleRecord, TestConfig,
};
use crate::techniques::TestKind;
use reorder_wire::{IpId, TcpFlags};
use std::time::Duration;

/// Verdict of the pre-measurement IPID validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpidVerdict {
    /// Shared, monotonically increasing IPID space: the test is sound.
    Amenable,
    /// Every reply carried IPID 0 (Linux ≥ 2.4 PMTUD).
    ConstantZero,
    /// IPIDs not monotone across connections: random generation or a
    /// load balancer splitting the connections (indistinguishable from
    /// outside, per Fig. 3).
    NonMonotonic,
}

impl IpidVerdict {
    /// Short label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            IpidVerdict::Amenable => "amenable",
            IpidVerdict::ConstantZero => "constant-zero",
            IpidVerdict::NonMonotonic => "non-monotonic",
        }
    }

    /// Inverse of [`IpidVerdict::label`], for report deserialization.
    pub fn from_label(s: &str) -> Option<IpidVerdict> {
        [
            IpidVerdict::Amenable,
            IpidVerdict::ConstantZero,
            IpidVerdict::NonMonotonic,
        ]
        .into_iter()
        .find(|v| v.label() == s)
    }

    /// Human-readable explanation.
    pub fn describe(self) -> &'static str {
        match self {
            IpidVerdict::Amenable => "shared monotone IPID space",
            IpidVerdict::ConstantZero => "constant IPID 0 (likely Linux 2.4)",
            IpidVerdict::NonMonotonic => "non-monotonic IPIDs (random generation or load balancer)",
        }
    }
}

/// Runs the interleaved-probe IPID validation of §III-C.
#[derive(Debug, Clone, Copy)]
pub struct IpidValidator {
    /// Alternating rounds to sample (8 is ample: two independent
    /// counters pass by luck with probability ≪ 2⁻⁸).
    pub rounds: usize,
    /// Per-reply deadline.
    pub reply_timeout: Duration,
}

impl Default for IpidValidator {
    fn default() -> Self {
        IpidValidator {
            rounds: 8,
            reply_timeout: Duration::from_millis(900),
        }
    }
}

impl IpidValidator {
    /// Probe alternately on two established connections and classify
    /// the IPID space. Consumes one out-of-order byte offset per round
    /// per connection (tracked via `next_probe_offset`).
    pub fn validate(
        &self,
        p: &mut Prober,
        a: &ClientConn,
        b: &ClientConn,
        offset: &mut u32,
    ) -> Result<IpidVerdict, ProbeError> {
        let mut ids: Vec<IpId> = Vec::with_capacity(self.rounds * 2);
        for _ in 0..self.rounds {
            for conn in [a, b] {
                let id = probe_once(p, conn, *offset, self.reply_timeout)?;
                ids.push(id);
            }
            *offset += 1;
        }
        Ok(classify_ipids(&ids))
    }
}

/// Send one out-of-order byte on `conn` at `rcv`-relative offset and
/// return the IPID of the immediate duplicate ACK. Retries on loss —
/// duplicate ACK elicitation is idempotent, and a retried reply is
/// still a valid IPID observation for validation purposes.
fn probe_once(
    p: &mut Prober,
    conn: &ClientConn,
    offset: u32,
    timeout: Duration,
) -> Result<IpId, ProbeError> {
    let flow = conn.flow;
    let hole = conn.snd_nxt;
    for _attempt in 0..3 {
        let pkt = p
            .tcp_pkt(conn)
            .seq(conn.snd_nxt + 1 + offset)
            .ack(conn.rcv_nxt)
            .flags(TcpFlags::ACK)
            .data(b"V".to_vec())
            .build();
        p.send(pkt);
        let reply = p.recv_where(
            |pkt| {
                pkt.flow() == Some(flow.reversed())
                    && pkt.tcp().is_some_and(|t| {
                        t.flags.contains(TcpFlags::ACK)
                            && !t.flags.intersects(TcpFlags::SYN | TcpFlags::RST)
                            && t.ack == hole
                    })
            },
            timeout,
        );
        if let Some(r) = reply {
            return Ok(r.pkt.ip.ident);
        }
    }
    Err(ProbeError::Timeout {
        waiting_for: "validation dup-ACK",
    })
}

/// Classify an interleaved IPID sequence a₀,b₀,a₁,b₁,… per §III-C: in a
/// shared increasing space, within-connection differences dominate the
/// between-connection differences.
pub fn classify_ipids(ids: &[IpId]) -> IpidVerdict {
    assert!(
        ids.len() >= 4 && ids.len().is_multiple_of(2),
        "need interleaved pairs"
    );
    if ids.iter().all(|id| id.raw() == 0) {
        return IpidVerdict::ConstantZero;
    }
    // Between-connection (adjacent) differences must all be positive…
    let between: Vec<i16> = ids.windows(2).map(|w| w[0].distance_to(w[1])).collect();
    if between.iter().any(|&d| d <= 0) {
        return IpidVerdict::NonMonotonic;
    }
    // …and each within-connection difference (index i to i+2) must
    // dominate the between-connection steps it spans.
    for i in 0..ids.len() - 2 {
        let within = ids[i].distance_to(ids[i + 2]);
        if within < between[i] || within < between[i + 1] {
            return IpidVerdict::NonMonotonic;
        }
    }
    IpidVerdict::Amenable
}

/// The Dual Connection Test.
#[derive(Debug, Clone)]
pub struct DualConnectionTest {
    /// Shared knobs.
    pub cfg: TestConfig,
    /// Pre-measurement validation parameters.
    pub validator: IpidValidator,
}

impl DualConnectionTest {
    /// With default validation.
    pub fn new(cfg: TestConfig) -> Self {
        DualConnectionTest {
            cfg,
            validator: IpidValidator {
                reply_timeout: cfg.reply_timeout,
                ..IpidValidator::default()
            },
        }
    }

    /// Validate the IPID space over `a`/`b` unless the session already
    /// holds a verdict, recording the result (and the consumed probe
    /// offsets) on the session.
    fn ensure_verdict(
        &self,
        session: &mut Session<'_>,
        a: &ClientConn,
        b: &ClientConn,
    ) -> Result<IpidVerdict, ProbeError> {
        if let Some(v) = session.verdict() {
            return Ok(v);
        }
        let mut offset = session.probe_offset();
        let verdict = self.validator.validate(session.prober(), a, b, &mut offset);
        session.set_probe_offset(offset);
        if let Ok(v) = verdict {
            session.set_verdict(v);
        }
        verdict
    }

    /// One sample: an out-of-order byte on each connection, `gap`
    /// apart; classify from the two duplicate ACKs.
    fn sample(
        &self,
        p: &mut Prober,
        a: &ClientConn,
        b: &ClientConn,
        offset: &mut u32,
    ) -> SampleRecord {
        let started = p.now();
        p.flush();
        let ipid_a = p.alloc_ipid();
        let ipid_b = p.alloc_ipid();
        let off = *offset;
        *offset += 1;
        let pkt_a = p
            .tcp_pkt(a)
            .ipid(ipid_a)
            .seq(a.snd_nxt + 1 + off)
            .ack(a.rcv_nxt)
            .flags(TcpFlags::ACK)
            .data(b"D".to_vec())
            .build();
        p.send(pkt_a);
        p.run_for(self.cfg.gap);
        let pkt_b = p
            .tcp_pkt(b)
            .ipid(ipid_b)
            .seq(b.snd_nxt + 1 + off)
            .ack(b.rcv_nxt)
            .flags(TcpFlags::ACK)
            .data(b"D".to_vec())
            .build();
        p.send(pkt_b);

        let fa = a.flow;
        let fb = b.flow;
        let hole_a = a.snd_nxt;
        let hole_b = b.snd_nxt;
        let is_sample_ack = move |pkt: &reorder_wire::Packet| {
            let Some(flow) = pkt.flow() else { return false };
            let Some(t) = pkt.tcp() else { return false };
            if !t.flags.contains(TcpFlags::ACK) || t.flags.intersects(TcpFlags::SYN | TcpFlags::RST)
            {
                return false;
            }
            (flow == fa.reversed() && t.ack == hole_a) || (flow == fb.reversed() && t.ack == hole_b)
        };
        let replies = p.recv_n_where(is_sample_ack, 2, self.cfg.reply_timeout);
        let forensics_fwd = [
            PacketMatcher::flow(fa).ipid(ipid_a),
            PacketMatcher::flow(fb).ipid(ipid_b),
        ];
        if replies.len() < 2 {
            return SampleRecord {
                outcome: SampleOutcome::DISCARD,
                forensics: SampleForensics {
                    started,
                    fwd: forensics_fwd,
                    rev: None,
                },
            };
        }
        // Identify which reply belongs to which connection.
        let first_is_a = replies[0].pkt.flow() == Some(fa.reversed());
        let (ack_a, ack_b) = if first_is_a {
            (&replies[0], &replies[1])
        } else {
            (&replies[1], &replies[0])
        };
        if ack_a.pkt.flow() == ack_b.pkt.flow() {
            // Both dup-ACKs from one connection (e.g. a retransmitted
            // probe): ambiguous, discard.
            return SampleRecord {
                outcome: SampleOutcome::DISCARD,
                forensics: SampleForensics {
                    started,
                    fwd: forensics_fwd,
                    rev: None,
                },
            };
        }
        let id_a = ack_a.pkt.ip.ident;
        let id_b = ack_b.pkt.ip.ident;
        // Generation (= receive) order from the IPID space.
        let a_generated_first = id_a.before(id_b);
        // We sent A first, so the forward path is ordered iff A's probe
        // was received (acknowledged) first.
        let fwd = if a_generated_first {
            Order::Ordered
        } else {
            Order::Reordered
        };
        // Reverse path: compare generation order with arrival order.
        let a_arrived_first = first_is_a;
        let rev = if a_generated_first == a_arrived_first {
            Order::Ordered
        } else {
            Order::Reordered
        };
        // Reply matchers in generation order.
        let (gen_first, gen_second) = if a_generated_first {
            (
                PacketMatcher::flow(fa.reversed()).ack(hole_a).ipid(id_a),
                PacketMatcher::flow(fb.reversed()).ack(hole_b).ipid(id_b),
            )
        } else {
            (
                PacketMatcher::flow(fb.reversed()).ack(hole_b).ipid(id_b),
                PacketMatcher::flow(fa.reversed()).ack(hole_a).ipid(id_a),
            )
        };
        SampleRecord {
            outcome: SampleOutcome { fwd, rev },
            forensics: SampleForensics {
                started,
                fwd: forensics_fwd,
                rev: Some([gen_first, gen_second]),
            },
        }
    }
}

impl Technique for DualConnectionTest {
    fn kind(&self) -> TestKind {
        TestKind::DualConnection
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            measures_fwd: true,
            measures_rev: true,
            connections: 2,
            needs_global_ipid: true,
            needs_object: false,
        }
    }

    /// The §III-C pre-check. On a reusing session the two validated
    /// connections stay open and the verdict is cached, so a following
    /// [`Technique::execute`] measures immediately — no second round of
    /// handshakes, no repeated validation.
    fn probe_amenability(&self, session: &mut Session<'_>) -> Result<IpidVerdict, ProbeError> {
        let t = self.cfg.reply_timeout;
        let a = session.checkout("dual", 1460, 65535, t)?;
        let b = session.checkout("dual", 1460, 65535, t)?;
        match self.ensure_verdict(session, &a, &b) {
            Ok(v) => {
                session.checkin("dual", 1460, 65535, a, t);
                session.checkin("dual", 1460, 65535, b, t);
                Ok(v)
            }
            Err(e) => {
                // Probe state unknown after an errored validation:
                // close instead of caching (see `execute`).
                session.discard(a, t);
                session.discard(b, t);
                Err(e)
            }
        }
    }

    fn execute(&self, session: &mut Session<'_>) -> Result<MeasurementRun, ProbeError> {
        let t = self.cfg.reply_timeout;
        let a = session.checkout("dual", 1460, 65535, t)?;
        let b = session.checkout("dual", 1460, 65535, t)?;
        let verdict = match self.ensure_verdict(session, &a, &b) {
            Ok(v) => v,
            Err(e) => {
                // A validation that errored (not merely rejected) left
                // the probes in unknown state: close both connections
                // rather than caching or leaking them.
                session.discard(a, t);
                session.discard(b, t);
                return Err(e);
            }
        };
        if verdict != IpidVerdict::Amenable {
            session.checkin("dual", 1460, 65535, a, t);
            session.checkin("dual", 1460, 65535, b, t);
            return Err(ProbeError::HostUnsuitable(verdict.describe().to_string()));
        }
        let mut offset = session.probe_offset();
        let mut run = MeasurementRun::default();
        for _ in 0..self.cfg.samples {
            session.prober().run_for(self.cfg.pace);
            let rec = self.sample(session.prober(), &a, &b, &mut offset);
            run.samples.push(rec);
        }
        session.set_probe_offset(offset);
        session.checkin("dual", 1460, 65535, a, t);
        session.checkin("dual", 1460, 65535, b, t);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn classify_shared_counter() {
        let ids: Vec<IpId> = [10u16, 11, 12, 13, 14, 15, 16, 17]
            .iter()
            .map(|&v| IpId(v))
            .collect();
        assert_eq!(classify_ipids(&ids), IpidVerdict::Amenable);
    }

    #[test]
    fn classify_shared_counter_with_background_traffic() {
        // Other traffic advances the counter between our ACKs.
        let ids: Vec<IpId> = [10u16, 14, 15, 29, 30, 31, 40, 44]
            .iter()
            .map(|&v| IpId(v))
            .collect();
        assert_eq!(classify_ipids(&ids), IpidVerdict::Amenable);
    }

    #[test]
    fn classify_wraparound_is_tolerated() {
        let ids: Vec<IpId> = [0xfffd_u16, 0xfffe, 0xffff, 0, 1, 2, 3, 4]
            .iter()
            .map(|&v| IpId(v))
            .collect();
        assert_eq!(classify_ipids(&ids), IpidVerdict::Amenable);
    }

    #[test]
    fn classify_zero() {
        let ids = vec![IpId(0); 8];
        assert_eq!(classify_ipids(&ids), IpidVerdict::ConstantZero);
    }

    #[test]
    fn classify_two_independent_counters() {
        // a from counter ~100, b from counter ~9000: between-diffs swing
        // wildly negative.
        let ids: Vec<IpId> = [100u16, 9000, 101, 9001, 102, 9002, 103, 9003]
            .iter()
            .map(|&v| IpId(v))
            .collect();
        assert_eq!(classify_ipids(&ids), IpidVerdict::NonMonotonic);
    }

    #[test]
    fn classify_random() {
        let ids: Vec<IpId> = [
            0x8d21u16, 0x1f00, 0x77aa, 0x0201, 0xeeee, 0x1234, 0x9999, 0x4242,
        ]
        .iter()
        .map(|&v| IpId(v))
        .collect();
        assert_eq!(classify_ipids(&ids), IpidVerdict::NonMonotonic);
    }

    #[test]
    fn amenable_host_measures_cleanly() {
        let mut sc = scenario::validation_rig(0.0, 0.0, 50);
        let test = DualConnectionTest::new(TestConfig::samples(25));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert_eq!(run.samples.len(), 25);
        assert_eq!(run.fwd_reordered(), 0);
        assert_eq!(run.rev_reordered(), 0);
        assert!(run.fwd_determinate() >= 24);
        assert!(run.rev_determinate() >= 24);
    }

    #[test]
    fn forward_swaps_detected() {
        let mut sc = scenario::validation_rig(1.0, 0.0, 51);
        let test = DualConnectionTest::new(TestConfig::samples(20));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 15);
        assert_eq!(run.fwd_reordered(), run.fwd_determinate());
        assert_eq!(run.rev_reordered(), 0);
    }

    #[test]
    fn reverse_swaps_detected() {
        let mut sc = scenario::validation_rig(0.0, 1.0, 52);
        let test = DualConnectionTest::new(TestConfig::samples(20));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.rev_determinate() >= 15);
        assert_eq!(run.rev_reordered(), run.rev_determinate());
        assert_eq!(run.fwd_reordered(), 0);
    }

    #[test]
    fn random_ipid_host_rejected() {
        let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::openbsd3(), 53);
        let test = DualConnectionTest::new(TestConfig::samples(5));
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        match test.execute(&mut session) {
            Err(ProbeError::HostUnsuitable(why)) => assert!(why.contains("non-monotonic")),
            other => panic!("expected HostUnsuitable, got {other:?}"),
        }
    }

    #[test]
    fn linux24_zero_ipid_rejected() {
        let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::linux24(), 54);
        let test = DualConnectionTest::new(TestConfig::samples(5));
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        match test.probe_amenability(&mut session) {
            Ok(IpidVerdict::ConstantZero) => {}
            other => panic!("expected ConstantZero, got {other:?}"),
        }
    }

    #[test]
    fn load_balanced_site_rejected() {
        // Fig. 3: the two connections land on different backends with
        // independent IPID spaces. (Seed chosen arbitrarily; if the two
        // flows hash to the same backend the validator may legitimately
        // pass, so assert on the common case across seeds.)
        let mut rejected = 0;
        let mut tried = 0;
        for seed in 0..6 {
            let mut sc =
                scenario::load_balanced(0.0, 0.0, 4, HostPersonality::freebsd4(), 60 + seed);
            let test = DualConnectionTest::new(TestConfig::samples(5));
            let mut session = Session::new(&mut sc.prober, sc.target, 80);
            match test.probe_amenability(&mut session) {
                Ok(IpidVerdict::NonMonotonic) => {
                    rejected += 1;
                    tried += 1;
                }
                Ok(IpidVerdict::Amenable) => {
                    tried += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(tried == 6);
        assert!(
            rejected >= 4,
            "most load-balanced trials must be rejected ({rejected}/6)"
        );
    }

    #[test]
    fn byte_swapped_windows_counter_is_amenable() {
        // The Windows NT/2000 wire quirk (host-byte-order IPID) is
        // still serially monotone, so the test works unmodified — and
        // so does the validator.
        let mut sc = scenario::validation_rig_with(0.2, 0.1, HostPersonality::windows2000(), 56);
        let test = DualConnectionTest::new(TestConfig::samples(40));
        let run = test
            .execute(&mut Session::new(&mut sc.prober, sc.target, 80))
            .expect("run");
        assert!(run.fwd_determinate() >= 35);
        let rate = run.fwd_estimate().rate();
        assert!((0.08..=0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn solaris_per_destination_is_amenable() {
        // Per-destination counters are monotone from one prober's view:
        // "since our techniques do not depend on IPID being unique
        // across destinations this is not a complication."
        let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::solaris8(), 55);
        let test = DualConnectionTest::new(TestConfig::samples(5));
        assert_eq!(
            test.probe_amenability(&mut Session::new(&mut sc.prober, sc.target, 80))
                .unwrap(),
            IpidVerdict::Amenable
        );
    }

    #[test]
    #[should_panic(expected = "interleaved pairs")]
    fn classify_needs_enough_rounds() {
        classify_ipids(&[IpId(1), IpId(2)]);
    }
}
