//! Sample outcome types shared by all four measurement techniques.
//!
//! A *sample* is one pair of test packets (§III). Each test classifies
//! each direction independently as ordered, reordered ("exchanged"), or
//! indeterminate (loss, delayed-ACK collapse, or a lone ambiguous
//! reply — the cases §III-B says must be discarded).

use reorder_netsim::SimTime;
use reorder_wire::{FlowKey, IpId, SeqNum, TcpFlags};
use std::time::Duration;

/// Classification of one direction of one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// The pair arrived in the order it was sent.
    Ordered,
    /// The pair was exchanged in flight.
    Reordered,
    /// Cannot tell (loss, single merged ACK, ambiguous reply).
    Indeterminate,
}

impl Order {
    /// True for `Reordered`.
    pub fn is_reordered(self) -> bool {
        self == Order::Reordered
    }

    /// True unless `Indeterminate`.
    pub fn is_determinate(self) -> bool {
        self != Order::Indeterminate
    }
}

/// The verdict of one sample, both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleOutcome {
    /// Probe-host → target direction.
    pub fwd: Order,
    /// Target → probe-host direction.
    pub rev: Order,
}

impl SampleOutcome {
    /// Entirely indeterminate sample (discarded by estimators).
    pub const DISCARD: SampleOutcome = SampleOutcome {
        fwd: Order::Indeterminate,
        rev: Order::Indeterminate,
    };
}

/// Matches one specific packet in a capture trace (see
/// [`crate::validate`]). Fields set to `None` are wildcards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketMatcher {
    /// Flow the packet belongs to (exact direction).
    pub flow: FlowKey,
    /// IP identification, if the sender controlled it (probe packets).
    pub ipid: Option<IpId>,
    /// TCP sequence number.
    pub seq: Option<SeqNum>,
    /// TCP acknowledgment number.
    pub ack: Option<SeqNum>,
    /// Flags that must all be present.
    pub flags_all: TcpFlags,
    /// Flags that must all be absent.
    pub flags_none: TcpFlags,
    /// Minimum payload length.
    pub min_data: usize,
}

impl PacketMatcher {
    /// Matcher for any packet of `flow`.
    pub fn flow(flow: FlowKey) -> Self {
        PacketMatcher {
            flow,
            ipid: None,
            seq: None,
            ack: None,
            flags_all: TcpFlags::EMPTY,
            flags_none: TcpFlags::EMPTY,
            min_data: 0,
        }
    }

    /// Require this probe IPID.
    pub fn ipid(mut self, id: IpId) -> Self {
        self.ipid = Some(id);
        self
    }

    /// Require this sequence number.
    pub fn seq(mut self, s: SeqNum) -> Self {
        self.seq = Some(s);
        self
    }

    /// Require this acknowledgment number.
    pub fn ack(mut self, a: SeqNum) -> Self {
        self.ack = Some(a);
        self
    }

    /// Require all of `flags` set.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.flags_all = flags;
        self
    }

    /// Require all of `flags` clear.
    pub fn without(mut self, flags: TcpFlags) -> Self {
        self.flags_none = flags;
        self
    }

    /// Require at least `n` payload bytes.
    pub fn min_data(mut self, n: usize) -> Self {
        self.min_data = n;
        self
    }

    /// Does `pkt` satisfy every constraint?
    pub fn matches(&self, pkt: &reorder_wire::Packet) -> bool {
        if pkt.flow() != Some(self.flow) {
            return false;
        }
        let tcp = match pkt.tcp() {
            Some(t) => t,
            None => return false,
        };
        if let Some(id) = self.ipid {
            if pkt.ip.ident != id {
                return false;
            }
        }
        if let Some(s) = self.seq {
            if tcp.seq != s {
                return false;
            }
        }
        if let Some(a) = self.ack {
            if tcp.ack != a {
                return false;
            }
        }
        if !tcp.flags.contains(self.flags_all) {
            return false;
        }
        if tcp.flags.intersects(self.flags_none) {
            return false;
        }
        pkt.tcp_data().map_or(0, <[u8]>::len) >= self.min_data
    }
}

/// Everything needed to check one sample against capture traces.
#[derive(Debug, Clone)]
pub struct SampleForensics {
    /// Simulation time the sample began (trace matching starts here).
    pub started: SimTime,
    /// The two probe packets, in send order.
    pub fwd: [PacketMatcher; 2],
    /// The two reply packets, in the order the remote host (should
    /// have) generated them; `None` when the sample saw < 2 replies.
    pub rev: Option<[PacketMatcher; 2]>,
}

/// One completed sample.
#[derive(Debug, Clone)]
pub struct SampleRecord {
    /// The test's verdict.
    pub outcome: SampleOutcome,
    /// Trace-matching metadata for validation.
    pub forensics: SampleForensics,
}

/// A full measurement: many samples of one test against one target.
#[derive(Debug, Clone, Default)]
pub struct MeasurementRun {
    /// All samples, in execution order.
    pub samples: Vec<SampleRecord>,
}

impl MeasurementRun {
    /// Count of samples whose forward verdict is determinate.
    pub fn fwd_determinate(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| s.outcome.fwd.is_determinate())
            .count()
    }

    /// Count of forward reorder events.
    pub fn fwd_reordered(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| s.outcome.fwd.is_reordered())
            .count()
    }

    /// Count of samples whose reverse verdict is determinate.
    pub fn rev_determinate(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| s.outcome.rev.is_determinate())
            .count()
    }

    /// Count of reverse reorder events.
    pub fn rev_reordered(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| s.outcome.rev.is_reordered())
            .count()
    }

    /// Count of samples indeterminate in both directions — the §III-B
    /// "discard" outcome. Reported by [`crate::measurer::Measurement`].
    pub fn discarded(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| !s.outcome.fwd.is_determinate() && !s.outcome.rev.is_determinate())
            .count()
    }

    /// Forward reordering estimate.
    pub fn fwd_estimate(&self) -> crate::metrics::ReorderEstimate {
        crate::metrics::ReorderEstimate::new(self.fwd_reordered(), self.fwd_determinate())
    }

    /// Reverse reordering estimate.
    pub fn rev_estimate(&self) -> crate::metrics::ReorderEstimate {
        crate::metrics::ReorderEstimate::new(self.rev_reordered(), self.rev_determinate())
    }
}

/// Common knobs shared by all tests.
#[derive(Debug, Clone, Copy)]
pub struct TestConfig {
    /// Number of samples to take (the paper used 15 per measurement in
    /// the wild and 100 in validation).
    pub samples: usize,
    /// Inter-packet gap between the two packets of a sample — the
    /// §IV-C time-domain parameter.
    pub gap: Duration,
    /// Idle time between samples (politeness/pacing; the paper was
    /// "very careful to limit the rate at which SYNs are generated").
    pub pace: Duration,
    /// Per-reply wait deadline. Must exceed the remote's delayed-ACK
    /// timer (500 ms worst case) plus a round trip.
    pub reply_timeout: Duration,
    /// Data-transfer keep-alive: request a persistent connection and
    /// check the clamped-MSS connection back into the session after
    /// the fetch, so repeated transfers (multi-round transfer
    /// campaigns) skip the per-round handshake. Off by default — a
    /// keep-alive request changes the bytes on the wire, and single
    /// fetches must stay packet-identical to the historical protocol.
    pub keep_alive: bool,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            samples: 15,
            gap: Duration::ZERO,
            pace: Duration::from_millis(20),
            reply_timeout: Duration::from_millis(900),
            keep_alive: false,
        }
    }
}

impl TestConfig {
    /// `n` samples, otherwise default.
    pub fn samples(n: usize) -> Self {
        TestConfig {
            samples: n,
            ..Default::default()
        }
    }

    /// Set the inter-packet gap.
    pub fn with_gap(mut self, gap: Duration) -> Self {
        self.gap = gap;
        self
    }

    /// Toggle transfer keep-alive (see the field docs).
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Self {
        self.keep_alive = keep_alive;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_wire::{Ipv4Addr4, PacketBuilder};

    fn flow() -> FlowKey {
        FlowKey {
            src: Ipv4Addr4::new(1, 1, 1, 1),
            src_port: 10,
            dst: Ipv4Addr4::new(2, 2, 2, 2),
            dst_port: 80,
        }
    }

    fn pkt(seq: u32, ack: u32, flags: TcpFlags, ipid: u16, data: &[u8]) -> reorder_wire::Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(1, 1, 1, 1), 10)
            .dst(Ipv4Addr4::new(2, 2, 2, 2), 80)
            .seq(seq)
            .flags(flags)
            .ack(ack)
            .ipid(ipid)
            .data(data.to_vec())
            .build()
    }

    #[test]
    fn matcher_constraints() {
        let p = pkt(5, 9, TcpFlags::ACK | TcpFlags::PSH, 42, b"xy");
        assert!(PacketMatcher::flow(flow()).matches(&p));
        assert!(PacketMatcher::flow(flow()).seq(SeqNum(5)).matches(&p));
        assert!(!PacketMatcher::flow(flow()).seq(SeqNum(6)).matches(&p));
        assert!(PacketMatcher::flow(flow()).ack(SeqNum(9)).matches(&p));
        assert!(PacketMatcher::flow(flow()).ipid(IpId(42)).matches(&p));
        assert!(!PacketMatcher::flow(flow()).ipid(IpId(43)).matches(&p));
        assert!(PacketMatcher::flow(flow()).flags(TcpFlags::PSH).matches(&p));
        assert!(!PacketMatcher::flow(flow()).flags(TcpFlags::RST).matches(&p));
        assert!(!PacketMatcher::flow(flow())
            .without(TcpFlags::PSH)
            .matches(&p));
        assert!(PacketMatcher::flow(flow()).min_data(2).matches(&p));
        assert!(!PacketMatcher::flow(flow()).min_data(3).matches(&p));
        // Wrong direction.
        let rev = PacketMatcher::flow(flow().reversed());
        assert!(!rev.matches(&p));
    }

    #[test]
    fn run_counters() {
        let f = SampleForensics {
            started: SimTime::ZERO,
            fwd: [PacketMatcher::flow(flow()), PacketMatcher::flow(flow())],
            rev: None,
        };
        let mk = |fwd, rev| SampleRecord {
            outcome: SampleOutcome { fwd, rev },
            forensics: f.clone(),
        };
        let run = MeasurementRun {
            samples: vec![
                mk(Order::Ordered, Order::Ordered),
                mk(Order::Reordered, Order::Indeterminate),
                mk(Order::Indeterminate, Order::Reordered),
                mk(Order::Reordered, Order::Ordered),
            ],
        };
        assert_eq!(run.fwd_determinate(), 3);
        assert_eq!(run.fwd_reordered(), 2);
        assert_eq!(run.rev_determinate(), 3);
        assert_eq!(run.rev_reordered(), 1);
        assert!((run.fwd_estimate().rate() - 2.0 / 3.0).abs() < 1e-12);
        // No sample above is indeterminate in BOTH directions.
        assert_eq!(run.discarded(), 0);
        let discarded = MeasurementRun {
            samples: vec![mk(Order::Indeterminate, Order::Indeterminate)],
        };
        assert_eq!(discarded.discarded(), 1);
    }

    #[test]
    fn order_helpers() {
        assert!(Order::Reordered.is_reordered());
        assert!(!Order::Ordered.is_reordered());
        assert!(Order::Ordered.is_determinate());
        assert!(!Order::Indeterminate.is_determinate());
    }
}
