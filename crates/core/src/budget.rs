//! Per-host probe budgets and the failure taxonomy — how a survey
//! bounds the cost of a hostile host and classifies what went wrong.
//!
//! Bellardo & Savage's live survey (§IV) met plenty of uncooperative
//! hosts: firewalled, rate-limited, non-amenable, or simply dead
//! mid-measurement. A [`Budget`] caps how much simulated time and how
//! many retries one host may consume; [`HostErrorKind`] folds every
//! [`ProbeError`] into the small taxonomy the campaign aggregates and
//! reports. Both are pure policy — deterministic, clock-free — so a
//! budgeted campaign stays byte-reproducible.

use crate::probe::ProbeError;
use std::time::Duration;

/// The per-host spending cap a survey enforces. Deadlines are
/// *simulated* time: bounding simulated work bounds the wall clock of
/// the event-driven run, so no tarpit or blackhole host can stall a
/// shard past its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum accumulated simulated time across all of one host's
    /// phases (amenability, rounds, baseline, gap sweep). Phases that
    /// would start past the deadline are skipped and the host is
    /// classified [`HostErrorKind::DeadlineExceeded`].
    pub deadline: Duration,
    /// Transient-failure retries per measurement phase. Permanent
    /// failures (reset, unsuitable) never retry.
    pub max_retries: u32,
    /// Base backoff charged against the deadline before retry `n` as
    /// `backoff << n` — exponential, deterministic, no clock involved.
    pub backoff: Duration,
}

impl Default for Budget {
    /// Generous defaults that never bite a cooperative host: two
    /// simulated minutes is an order of magnitude above the worst
    /// well-behaved pipeline (so default campaign bytes are
    /// unchanged), and zero retries reproduces the historical
    /// fail-the-round behavior.
    fn default() -> Self {
        Budget {
            deadline: Duration::from_secs(120),
            max_retries: 0,
            backoff: Duration::from_millis(250),
        }
    }
}

impl Budget {
    /// The deadline-accounted cost of retry `attempt` (0-based):
    /// `backoff << attempt`, saturating.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
    }
}

/// Why a host failed (or only partially completed) — the §IV failure
/// taxonomy the campaign summary breaks down by mechanism and
/// personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HostErrorKind {
    /// Nothing ever answered: handshakes timed out with no sign of
    /// life (blackholed, tarpitted past every timeout, or dead).
    Unreachable,
    /// The host (or a firewall in front of it) actively reset the
    /// connection attempt.
    Refused,
    /// The host's per-[`Budget`] deadline ran out before its phases
    /// finished.
    DeadlineExceeded,
    /// The host answered but failed a technique precondition (IPID
    /// scheme, missing object) and no technique could measure it.
    NonAmenable,
    /// The host made measurable progress, then went dark.
    DiedMidMeasurement,
    /// The host completed some phases but not all — the degraded
    /// (partial-result) class.
    Partial,
}

impl HostErrorKind {
    /// Stable report/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            HostErrorKind::Unreachable => "unreachable",
            HostErrorKind::Refused => "refused",
            HostErrorKind::DeadlineExceeded => "deadline-exceeded",
            HostErrorKind::NonAmenable => "non-amenable",
            HostErrorKind::DiedMidMeasurement => "died-mid-measurement",
            HostErrorKind::Partial => "partial",
        }
    }

    /// Classify one probe error. `progressed` says whether the host
    /// had already produced results (a verdict or a successful round):
    /// a timeout before any progress is [`HostErrorKind::Unreachable`],
    /// the same timeout after progress is a mid-measurement death.
    pub fn classify(err: &ProbeError, progressed: bool) -> HostErrorKind {
        match err {
            ProbeError::Timeout { .. } if progressed => HostErrorKind::DiedMidMeasurement,
            ProbeError::Timeout { .. } => HostErrorKind::Unreachable,
            ProbeError::ConnectionReset => HostErrorKind::Refused,
            ProbeError::HostUnsuitable(_) => HostErrorKind::NonAmenable,
            ProbeError::DeadlineExceeded => HostErrorKind::DeadlineExceeded,
        }
    }

    /// Whether retrying the failed phase could plausibly succeed.
    /// Resets and precondition failures are properties of the host;
    /// only timeouts are worth a retry.
    pub fn is_transient(err: &ProbeError) -> bool {
        matches!(err, ProbeError::Timeout { .. })
    }
}

impl std::fmt::Display for HostErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_generous_and_retry_free() {
        let b = Budget::default();
        assert_eq!(b.deadline, Duration::from_secs(120));
        assert_eq!(b.max_retries, 0);
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let b = Budget {
            backoff: Duration::from_millis(100),
            ..Budget::default()
        };
        assert_eq!(b.backoff_for(0), Duration::from_millis(100));
        assert_eq!(b.backoff_for(1), Duration::from_millis(200));
        assert_eq!(b.backoff_for(3), Duration::from_millis(800));
        // Far past any sane retry count: saturates instead of panicking.
        assert!(b.backoff_for(200) > Duration::from_secs(1));
    }

    #[test]
    fn classification_covers_every_error() {
        let timeout = ProbeError::Timeout {
            waiting_for: "SYN/ACK",
        };
        assert_eq!(
            HostErrorKind::classify(&timeout, false),
            HostErrorKind::Unreachable
        );
        assert_eq!(
            HostErrorKind::classify(&timeout, true),
            HostErrorKind::DiedMidMeasurement
        );
        assert_eq!(
            HostErrorKind::classify(&ProbeError::ConnectionReset, false),
            HostErrorKind::Refused
        );
        assert_eq!(
            HostErrorKind::classify(&ProbeError::HostUnsuitable("ipid".into()), true),
            HostErrorKind::NonAmenable
        );
        assert_eq!(
            HostErrorKind::classify(&ProbeError::DeadlineExceeded, true),
            HostErrorKind::DeadlineExceeded
        );
        assert!(HostErrorKind::is_transient(&timeout));
        assert!(!HostErrorKind::is_transient(&ProbeError::ConnectionReset));
    }

    #[test]
    fn labels_round_trip_through_display() {
        for kind in [
            HostErrorKind::Unreachable,
            HostErrorKind::Refused,
            HostErrorKind::DeadlineExceeded,
            HostErrorKind::NonAmenable,
            HostErrorKind::DiedMidMeasurement,
            HostErrorKind::Partial,
        ] {
            assert_eq!(kind.to_string(), kind.label());
        }
    }
}
