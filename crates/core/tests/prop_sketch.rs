//! Property tests for the mergeable aggregation primitives behind the
//! sharded campaign summary: the algebraic laws of
//! [`QuantileSketch`] (merge is an exact commutative monoid, quantiles
//! stay within the declared relative error of a sorted reference, NaNs
//! are quarantined) and the partition invariance of [`Moments`]. These
//! laws are what let per-worker aggregators fold results in completion
//! order and still produce byte-identical summaries.

use proptest::prelude::*;
use reorder_core::stats::{Moments, QuantileSketch, SKETCH_RELATIVE_ERROR};

fn sketch_of(xs: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &x in xs {
        s.push(x);
    }
    s
}

/// Observation streams: magnitudes spanning many octaves, both signs,
/// with exact zeros mixed in.
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    // Repetition stands in for weights (the vendored `prop_oneof` is
    // unweighted): mostly positive, some negative, occasional zeros.
    proptest::collection::vec(
        prop_oneof![
            1e-6f64..1e6,
            1e-6f64..1e6,
            1e-6f64..1e6,
            -1e6f64..-1e-6,
            Just(0.0f64),
        ],
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merge is associative, commutative, and lossless: any grouping or
    /// ordering of sub-sketches equals the sketch of the concatenated
    /// stream, down to the exact state (`Eq`, not quantile-approximate).
    #[test]
    fn sketch_merge_is_an_exact_commutative_monoid(
        a in arb_stream(50),
        b in arb_stream(50),
        c in arb_stream(50),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        // (a ∪ b) ∪ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ∪ (b ∪ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");
        // b ∪ a == a ∪ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");
        // The empty sketch is the identity.
        let mut with_empty = left.clone();
        with_empty.merge(&QuantileSketch::new());
        prop_assert_eq!(&with_empty, &left, "empty sketch must be the identity");
        // Merging sub-sketches equals sketching the whole stream.
        let whole: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &sketch_of(&whole), "merge must be lossless");
    }

    /// `quantile(q)` lands within [`SKETCH_RELATIVE_ERROR`] (relative)
    /// of the value holding rank `round(q·(n−1))` in the exact sorted
    /// stream — the sketch's headline accuracy contract, checked
    /// against a from-scratch sorted reference.
    #[test]
    fn sketch_quantile_within_declared_relative_error(
        xs in arb_stream(200),
        q in 0.0f64..=1.0,
    ) {
        prop_assume!(!xs.is_empty());
        let s = sketch_of(&xs);
        prop_assert_eq!(s.count(), xs.len() as u64);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * (xs.len() - 1) as f64).round() as usize;
        let exact = sorted[rank];
        let got = s.quantile(q).expect("non-empty sketch");
        prop_assert!(
            (got - exact).abs() <= SKETCH_RELATIVE_ERROR * exact.abs() + 1e-300,
            "q {} rank {} exact {} got {}",
            q, rank, exact, got
        );
        // The reported value keeps the exact value's sign class.
        prop_assert_eq!(got == 0.0, exact == 0.0);
    }

    /// NaNs are quarantined: they count in `nans()`, never in `count()`,
    /// and never move any quantile (the PR 5 `RateHistogram::nans` rule —
    /// a NaN must not fatten the heavy tail). Quarantine survives merge.
    #[test]
    fn sketch_quarantines_nans(xs in arb_stream(60), nans in 0usize..6) {
        let clean = sketch_of(&xs);
        let mut dirty = clean.clone();
        for _ in 0..nans {
            dirty.push(f64::NAN);
        }
        prop_assert_eq!(dirty.nans(), nans as u64);
        prop_assert_eq!(dirty.count(), clean.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            prop_assert_eq!(dirty.quantile(q), clean.quantile(q));
        }
        let mut merged = clean.clone();
        merged.merge(&dirty);
        prop_assert_eq!(merged.nans(), nans as u64);
        prop_assert_eq!(merged.count(), clean.count() * 2);
    }

    /// The JSON checkpoint round-trips the exact state for arbitrary
    /// streams (including quarantined NaNs).
    #[test]
    fn sketch_json_roundtrip_is_exact(xs in arb_stream(80), nans in 0usize..3) {
        let mut s = sketch_of(&xs);
        for _ in 0..nans {
            s.push(f64::NAN);
        }
        let back = QuantileSketch::from_json(&s.to_json()).expect("own JSON must parse");
        prop_assert_eq!(back, s);
    }

    /// `Moments` is partition-invariant: splitting a stream at any
    /// point and merging the halves reproduces the serial fold exactly
    /// (`Eq` on the fixed-point state), and merge commutes — the
    /// property float Welford merges only approximate.
    #[test]
    fn moments_merge_is_partition_invariant(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..80),
        cut in 0usize..80,
    ) {
        let cut = cut.min(xs.len());
        let fold = |slice: &[f64]| {
            let mut m = Moments::new();
            for &x in slice {
                m.push(x);
            }
            m
        };
        let serial = fold(&xs);
        let (lo, hi) = (fold(&xs[..cut]), fold(&xs[cut..]));
        prop_assert_eq!(lo.merge(&hi), serial, "split/merge must equal the serial fold");
        prop_assert_eq!(hi.merge(&lo), serial, "merge must commute");
        prop_assert_eq!(serial.merge(&Moments::new()), serial, "empty is the identity");
        prop_assert_eq!(serial.count(), xs.len() as u64);
        // The fixed-point mean tracks the naive f64 mean closely.
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((serial.mean() - naive).abs() <= 1e-9 * (1.0 + naive.abs()));
    }
}
