//! Property tests for the metric and statistics layers: structural
//! invariants of the exchange metric, the non-reversing-order rules,
//! the SACK-block metric, CDFs, the IPID classifier, and the
//! paired-difference test.

use proptest::prelude::*;
use reorder_core::metrics::{
    exchanges, max_sack_blocks, non_reversing_reordered, reordering_extents, Cdf, ReorderEstimate,
};
use reorder_core::stats::{mean, pair_difference, stddev, variance};
use reorder_core::techniques::dual::classify_ipids;
use reorder_core::techniques::IpidVerdict;
use reorder_wire::IpId;

fn arb_permutation(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    (1..max_len).prop_flat_map(|n| Just((0..n as u64).collect::<Vec<u64>>()).prop_shuffle())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exchange count is the inversion count: zero iff sorted, at most
    /// n(n-1)/2, and invariant under value translation.
    #[test]
    fn exchange_metric_bounds(perm in arb_permutation(30), shift in 0u64..1_000_000) {
        let n = perm.len();
        let e = exchanges(&perm);
        prop_assert!(e <= n * (n - 1) / 2);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(e == 0, sorted == perm);
        let shifted: Vec<u64> = perm.iter().map(|&x| x + shift).collect();
        prop_assert_eq!(exchanges(&shifted), e);
    }

    /// The merge-count implementation agrees with the naive bubble-sort
    /// swap count on random permutations (and on sequences with ties).
    #[test]
    fn exchange_merge_count_matches_naive(perm in arb_permutation(64)) {
        fn naive(order: &[u64]) -> usize {
            let mut v = order.to_vec();
            let mut swaps = 0;
            for i in 0..v.len() {
                for j in 0..v.len().saturating_sub(1 + i) {
                    if v[j] > v[j + 1] {
                        v.swap(j, j + 1);
                        swaps += 1;
                    }
                }
            }
            swaps
        }
        prop_assert_eq!(exchanges(&perm), naive(&perm));
        // Halving values introduces ties; both forms treat ties as
        // ordered.
        let tied: Vec<u64> = perm.iter().map(|&x| x / 2).collect();
        prop_assert_eq!(exchanges(&tied), naive(&tied));
    }

    /// Reversing a sorted sequence gives the maximum exchange count.
    #[test]
    fn exchange_metric_maximum(n in 2usize..30) {
        let rev: Vec<u64> = (0..n as u64).rev().collect();
        prop_assert_eq!(exchanges(&rev), n * (n - 1) / 2);
    }

    /// Non-reversing rule: flags are consistent with extents (a packet
    /// is flagged iff its extent is positive), and an in-order prefix
    /// is never flagged.
    #[test]
    fn non_reversing_consistent_with_extents(perm in arb_permutation(40)) {
        let flags = non_reversing_reordered(&perm);
        let extents = reordering_extents(&perm);
        prop_assert_eq!(flags.len(), perm.len());
        for (f, e) in flags.iter().zip(&extents) {
            prop_assert_eq!(*f, *e > 0, "flag/extent mismatch");
        }
        prop_assert!(!flags[0], "first arrival can never be late");
    }

    /// SACK blocks: zero iff the permutation is the identity; bounded
    /// by half the sequence length (each block needs a missing packet
    /// before it).
    #[test]
    fn sack_blocks_bounds(perm in arb_permutation(40)) {
        let blocks = max_sack_blocks(&perm, 0);
        let sorted = {
            let mut s = perm.clone();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(blocks == 0, sorted == perm);
        prop_assert!(blocks <= perm.len() / 2 + 1);
    }

    /// Wilson interval always contains the point estimate and stays in
    /// [0, 1]; more samples shrink it.
    #[test]
    fn wilson_interval_sane(reordered in 0usize..200, extra in 0usize..200) {
        let total = reordered + extra;
        prop_assume!(total > 0);
        let e = ReorderEstimate::new(reordered, total);
        let (lo, hi) = e.wilson_ci(1.96);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        // At p = 0 or p = 1 the interval endpoint equals p exactly in
        // real arithmetic; allow float rounding.
        prop_assert!(lo <= e.rate() + 1e-9 && e.rate() <= hi + 1e-9);
        // Scaling counts by 16 shrinks the interval.
        let big = ReorderEstimate::new(reordered * 16, total * 16);
        let (blo, bhi) = big.wilson_ci(1.96);
        prop_assert!(bhi - blo <= hi - lo + 1e-12);
    }

    /// CDF: monotone, normalized, quantile/fraction round-trip.
    #[test]
    fn cdf_invariants(values in proptest::collection::vec(0.0f64..1.0, 1..100)) {
        let cdf = Cdf::new(values.clone());
        let pts = cdf.points();
        prop_assert_eq!(pts.len(), values.len());
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = cdf.quantile(q);
            prop_assert!(cdf.fraction_at_most(v) + 1e-12 >= q);
        }
    }

    /// Descriptive statistics basics.
    #[test]
    fn stats_basics(xs in proptest::collection::vec(-1e6f64..1e6, 2..50)) {
        let m = mean(&xs);
        let v = variance(&xs);
        prop_assert!(v >= 0.0);
        prop_assert!((stddev(&xs) - v.sqrt()).abs() < 1e-9);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// A series paired with itself always supports the null hypothesis.
    #[test]
    fn pair_difference_self_supports_null(
        xs in proptest::collection::vec(0.0f64..1.0, 2..50)
    ) {
        let d = pair_difference(&xs, &xs, 0.999);
        prop_assert!(d.supports_null);
        prop_assert_eq!(d.mean_diff, 0.0);
    }

    /// A constant large shift is always detected (given any variance).
    #[test]
    fn pair_difference_detects_shift(
        xs in proptest::collection::vec(0.0f64..0.01, 5..50)
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x + 0.5).collect();
        let d = pair_difference(&ys, &xs, 0.999);
        prop_assert!(!d.supports_null);
        prop_assert!(d.mean_diff > 0.4);
    }

    /// IPID classifier: a shared counter with arbitrary positive strides
    /// (background traffic) is always amenable, from any starting value
    /// including ones that wrap.
    #[test]
    fn classifier_accepts_shared_counter(
        start in any::<u16>(),
        strides in proptest::collection::vec(1u16..50, 4..16),
    ) {
        prop_assume!(strides.len() % 2 == 0);
        let mut v = Vec::with_capacity(strides.len());
        let mut cur = IpId(start);
        for s in &strides {
            cur = cur + *s;
            v.push(cur);
        }
        prop_assert_eq!(classify_ipids(&v), IpidVerdict::Amenable);
    }

    /// Two independent counters (the load-balancer symptom) are
    /// rejected whenever their bases are far enough apart that some
    /// between-connection difference goes negative.
    #[test]
    fn classifier_rejects_split_counters(
        base_a in 0u16..1000,
        sep in 5000u16..30000,
        rounds in 3usize..8,
    ) {
        let base_b = base_a.wrapping_add(sep);
        let mut v = Vec::new();
        for i in 0..rounds as u16 {
            v.push(IpId(base_a.wrapping_add(i)));
            v.push(IpId(base_b.wrapping_add(i)));
        }
        prop_assert_eq!(classify_ipids(&v), IpidVerdict::NonMonotonic);
    }
}
