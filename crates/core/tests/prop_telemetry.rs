//! Property tests for [`WorkerTelemetry`]'s algebraic laws, mirroring
//! `prop_sketch.rs`: merge is an exact commutative monoid over the
//! whole state (counters, span moments, span sketches), and building a
//! telemetry from any partition of an observation stream then merging
//! equals the serial build. These laws are what make per-worker
//! telemetry safe to fold in completion order — the merged metrics
//! document is independent of worker count and steal schedule, just
//! like the campaign summary itself.

use proptest::prelude::*;
use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};

const COUNTERS: [&str; 3] = ["netsim.events", "pool.hits", "sched.tasks"];
const SPANS: [&str; 3] = ["host", "measure", "baseline"];

/// One observation a worker might record mid-campaign.
#[derive(Clone, Debug)]
enum Op {
    Count(usize, u64),
    Span(usize, f64),
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..COUNTERS.len(), 0u64..10_000).prop_map(|(k, n)| Op::Count(k, n)),
            // Span durations in seconds, the unit the pipeline records
            // (well inside the Moments fixed-point domain).
            (0usize..SPANS.len(), 1e-6f64..1e3).prop_map(|(k, s)| Op::Span(k, s)),
        ],
        0..max_len,
    )
}

/// Serial build: apply every op to one telemetry. `Full` mode so span
/// sketches carry state too — the strongest equality we can test.
fn apply(ops: &[Op]) -> WorkerTelemetry {
    let mut tel = WorkerTelemetry::new();
    for op in ops {
        match *op {
            Op::Count(k, n) => tel.count(COUNTERS[k], n),
            Op::Span(k, s) => tel.record_span(SPANS[k], TelemetryMode::Full, s),
        }
    }
    tel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merge is associative, commutative, and has the empty telemetry
    /// as identity — exact `Eq` on the full state, not approximate.
    #[test]
    fn telemetry_merge_is_an_exact_commutative_monoid(
        a in arb_ops(40),
        b in arb_ops(40),
        c in arb_ops(40),
    ) {
        let (ta, tb, tc) = (apply(&a), apply(&b), apply(&c));
        // (a ∪ b) ∪ c
        let mut left = ta.clone();
        left.merge(&tb);
        left.merge(&tc);
        // a ∪ (b ∪ c)
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut right = ta.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");
        // b ∪ a == a ∪ b
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");
        // Empty telemetry is the identity, on both sides.
        let mut with_empty = left.clone();
        with_empty.merge(&WorkerTelemetry::new());
        prop_assert_eq!(&with_empty, &left, "empty must be a right identity");
        let mut empty_first = WorkerTelemetry::new();
        empty_first.merge(&left);
        prop_assert_eq!(&empty_first, &left, "empty must be a left identity");
    }

    /// Partition invariance: splitting the observation stream at any
    /// point and merging the per-shard telemetries reproduces the
    /// serial build exactly — the property that makes the metrics
    /// document worker-count-independent.
    #[test]
    fn telemetry_is_partition_invariant(ops in arb_ops(80), cut in 0usize..80) {
        let cut = cut.min(ops.len());
        let serial = apply(&ops);
        let mut split = apply(&ops[..cut]);
        split.merge(&apply(&ops[cut..]));
        prop_assert_eq!(&split, &serial, "split/merge must equal the serial build");

        // Counter totals are plain sums; span counts are op counts.
        for (k, key) in COUNTERS.iter().enumerate() {
            let want: u64 = ops
                .iter()
                .filter_map(|op| match op {
                    Op::Count(i, n) if *i == k => Some(*n),
                    _ => None,
                })
                .sum();
            prop_assert_eq!(serial.counter(key), want);
        }
        for (k, key) in SPANS.iter().enumerate() {
            let want = ops
                .iter()
                .filter(|op| matches!(op, Op::Span(i, _) if *i == k))
                .count() as u64;
            prop_assert_eq!(
                serial.span_stats(key).map_or(0, |s| s.count()),
                want
            );
        }
    }

    /// `Summary` and `Full` record identical counters and span moments;
    /// `Full` only adds the quantile sketch. `Off` records nothing.
    #[test]
    fn modes_only_differ_in_sketch_depth(ops in arb_ops(40)) {
        let build = |mode: TelemetryMode| {
            let mut tel = WorkerTelemetry::new();
            for op in &ops {
                match *op {
                    Op::Count(k, n) => tel.count(COUNTERS[k], n),
                    Op::Span(k, s) => tel.record_span(SPANS[k], mode, s),
                }
            }
            tel
        };
        let (summary, full) = (build(TelemetryMode::Summary), build(TelemetryMode::Full));
        for key in SPANS {
            let (s, f) = (summary.span_stats(key), full.span_stats(key));
            prop_assert_eq!(s.is_some(), f.is_some());
            if let (Some(s), Some(f)) = (s, f) {
                prop_assert_eq!(&s.secs, &f.secs, "moments must not depend on mode");
                prop_assert_eq!(s.sketch.count(), 0, "summary must skip the sketch");
                prop_assert_eq!(f.sketch.count(), f.secs.count(), "full must feed the sketch");
            }
        }
        for key in COUNTERS {
            prop_assert_eq!(summary.counter(key), full.counter(key));
        }
    }
}
