//! Public-API snapshot: a golden file of every `pub` item declaration
//! in `reorder-core`, so an API change (added, removed or re-signed
//! export) shows up as a reviewable diff in `tests/public_api.txt`
//! instead of sliding through unnoticed. The same job `cargo
//! public-api` does, implemented offline against the crate source.
//!
//! On mismatch, inspect the assertion output; if the change is
//! intended, regenerate with
//!
//! ```sh
//! REORDER_API_BLESS=1 cargo test -p reorder-core --test public_api
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const ITEM_KEYWORDS: [&str; 9] = [
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub mod ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub use ",
];

/// Count `{` minus `}` outside string and char literals, so format
/// strings like `"{kind}"` never desynchronize the module tracker.
/// (Line comments and `//`-prefixed text never reach this: callers
/// pass trimmed source lines and Rust keeps braces balanced in code.)
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0i64;
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str || in_char => {
                chars.next(); // escaped char, including \" and \'
            }
            '"' if !in_char => in_str = !in_str,
            // A char literal ('{', '\n'); lifetimes ('p) have no
            // closing quote and fall through harmlessly.
            '\'' if !in_str
                && (chars.peek() == Some(&'\\') || chars.clone().nth(1) == Some('\'')) =>
            {
                in_char = !in_char;
            }
            '\'' if in_char => in_char = false,
            '{' if !in_str && !in_char => delta += 1,
            '}' if !in_str && !in_char => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// A declaration is complete when its parentheses/angle-free shape is
/// closed: a `pub use …{…}` list has balanced braces, a `pub fn` has
/// balanced parentheses, everything else is single-line.
fn declaration_complete(decl: &str) -> bool {
    let parens = decl.matches('(').count() as i64 - decl.matches(')').count() as i64;
    let braces = decl.matches('{').count() as i64 - decl.matches('}').count() as i64;
    if decl.starts_with("pub use ") {
        braces <= 0
    } else {
        // A fn/struct signature line is complete once its parens
        // balance; the trailing body `{` (if any) is stripped later.
        parens <= 0
    }
}

/// Extract the public item declarations of one source file, skipping
/// private modules (`mod tests`, `mod json`, …) wholesale: a private
/// module's `pub` items are not crate API. Declarations spanning
/// several lines (brace-lists of `pub use`, multi-line `pub fn`
/// signatures) are joined, so a change to any re-export or parameter
/// shows up in the snapshot.
fn public_items(source: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut skip_depth: Option<i64> = None;
    let mut depth: i64 = 0;
    let mut pending: Option<String> = None;
    for line in source.lines() {
        let trimmed = line.trim();
        if let Some(decl) = &mut pending {
            decl.push(' ');
            decl.push_str(trimmed);
            if declaration_complete(decl) {
                items.push(finish_declaration(&pending.take().expect("pending")));
            }
            depth += brace_delta(trimmed);
            continue;
        }
        if let Some(until) = skip_depth {
            depth += brace_delta(trimmed);
            if depth <= until {
                skip_depth = None;
            }
            continue;
        }
        // A private inline module hides everything inside it.
        if trimmed.starts_with("mod ") && trimmed.ends_with('{') {
            skip_depth = Some(depth);
            depth += brace_delta(trimmed);
            continue;
        }
        if ITEM_KEYWORDS.iter().any(|k| trimmed.starts_with(k)) {
            if declaration_complete(trimmed) {
                items.push(finish_declaration(trimmed));
            } else {
                pending = Some(trimmed.to_string());
            }
        }
        depth += brace_delta(trimmed);
    }
    items
}

/// Normalize a joined declaration: strip the body opener and trailing
/// punctuation, collapse interior whitespace runs.
fn finish_declaration(decl: &str) -> String {
    let decl = decl
        .trim_end_matches('{')
        .trim_end()
        .trim_end_matches(';')
        .trim_end();
    let mut out = String::with_capacity(decl.len());
    let mut last_space = false;
    for c in decl.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

fn source_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .expect("read src dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            source_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn snapshot() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    source_files(&root, &mut files);
    let mut out = String::from(
        "# reorder-core public API snapshot (one `pub` declaration per line).\n\
         # Regenerate: REORDER_API_BLESS=1 cargo test -p reorder-core --test public_api\n",
    );
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    for path in files {
        let rel = path
            .strip_prefix(manifest)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path).expect("read source file");
        let items = public_items(&source);
        if items.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\n## {rel}");
        for item in items {
            let _ = writeln!(out, "{item}");
        }
    }
    out
}

#[test]
fn public_api_matches_snapshot() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/public_api.txt");
    let current = snapshot();
    if std::env::var_os("REORDER_API_BLESS").is_some() {
        fs::write(&golden_path, &current).expect("write golden file");
        return;
    }
    let golden = fs::read_to_string(&golden_path).unwrap_or_default();
    assert!(
        golden == current,
        "reorder-core's public API changed.\n\
         If intended, regenerate the snapshot with\n\
         REORDER_API_BLESS=1 cargo test -p reorder-core --test public_api\n\
         and commit tests/public_api.txt with the API change.\n\n\
         --- expected (tests/public_api.txt) ---\n{golden}\n\
         --- actual ---\n{current}"
    );
}

#[test]
fn snapshot_sees_the_measurement_api() {
    // Self-check of the extractor: the tentpole exports must be in the
    // snapshot, and private-module internals must not leak into it.
    let s = snapshot();
    for needle in [
        "pub trait Technique",
        "pub struct Session<'p>",
        "pub struct Measurer",
        "pub struct Measurement",
        "pub fn registry(cfg: TestConfig) -> Vec<Box<dyn Technique>>",
        "pub enum TestKind",
        // Multi-line declarations are joined, not truncated: a change
        // to any re-export in the brace list or any parameter of a
        // wrapped signature must move the snapshot.
        "pub use measurer::{ registry, technique,",
        "pub fn checkout( &mut self, tag: &'static str, mss: u16, window: u16,",
    ] {
        assert!(s.contains(needle), "snapshot must contain `{needle}`:\n{s}");
    }
    assert!(
        !s.contains("fn parse(text: &str)"),
        "private json module leaked into the snapshot"
    );
}

#[test]
fn extractor_handles_braces_in_strings_and_multiline_items() {
    let src = r#"
mod hidden {
    pub fn secret(s: &str) {
        let _ = format!("{s} {{literal}}");
    }
}
pub fn multi(
    a: usize,
    b: usize,
) -> usize {
    a + b
}
pub use other::{
    Alpha,
    Beta,
};
pub struct Plain {
    field: u8,
}
"#;
    let items = public_items(src);
    assert_eq!(
        items,
        vec![
            "pub fn multi( a: usize, b: usize, ) -> usize".to_string(),
            "pub use other::{ Alpha, Beta, }".to_string(),
            "pub struct Plain".to_string(),
        ],
        "brace-bearing strings must not desynchronize the module skip"
    );
}
