//! The trait-level conformance suite: every entry of the technique
//! registry must satisfy the same contract — deterministic estimates
//! on the validation rig, requirements consistent with what the run
//! actually produced, amenability verdicts honored, a JSON-round-
//! trippable [`Measurement`], and connection reuse that changes the
//! handshake economy but not the estimates.

use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::techniques::{IpidVerdict, TestKind};
use reorder_core::{registry, technique, Measurement, MeasurementRun, ProbeError, Session};
use reorder_tcpstack::HostPersonality;

fn cfg() -> TestConfig {
    TestConfig::samples(25)
}

fn execute(
    kind: TestKind,
    sc: &mut scenario::Scenario,
    reuse: bool,
) -> Result<MeasurementRun, ProbeError> {
    let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(reuse);
    technique(kind, cfg()).execute(&mut session)
}

/// Same seed, same technique → bit-identical counts. The registry
/// contract behind the survey engine's determinism guarantee.
#[test]
fn every_technique_is_deterministic_on_the_rig() {
    for t in registry(cfg()) {
        let once = |seed: u64| {
            let mut sc = scenario::validation_rig(0.15, 0.08, seed);
            let run = execute(t.kind(), &mut sc, false).expect("run");
            (
                run.fwd_reordered(),
                run.fwd_determinate(),
                run.rev_reordered(),
                run.rev_determinate(),
                run.discarded(),
            )
        };
        assert_eq!(once(0xC0), once(0xC0), "{}: nondeterministic", t.kind());
    }
}

/// What `requirements()` promises must match what `execute()` does: a
/// technique that claims not to measure a direction must never produce
/// a determinate verdict there.
#[test]
fn requirements_match_measured_directions() {
    for t in registry(cfg()) {
        let mut sc = scenario::validation_rig(0.2, 0.1, 0xC1);
        let run = execute(t.kind(), &mut sc, false).expect("run");
        let r = t.requirements();
        assert!(run.samples.len() > 1, "{}: no samples", t.kind());
        if !r.measures_fwd {
            assert_eq!(run.fwd_determinate(), 0, "{}: fwd claimed blind", t.kind());
        }
        if !r.measures_rev {
            assert_eq!(run.rev_determinate(), 0, "{}: rev claimed blind", t.kind());
        }
        // Something must be determinate on a clean-ish rig.
        assert!(
            run.fwd_determinate() + run.rev_determinate() > 0,
            "{}: measured nothing at all",
            t.kind()
        );
    }
}

/// Amenability is honored registry-wide: the default implementation
/// accepts any reachable host; the dual test rejects bad IPID schemes
/// through `probe_amenability` AND refuses to measure via `execute`.
#[test]
fn amenability_verdicts_are_honored() {
    // A host every technique accepts.
    for t in registry(cfg()) {
        let mut sc = scenario::validation_rig(0.0, 0.0, 0xC2);
        let mut session = Session::new(&mut sc.prober, sc.target, 80);
        assert_eq!(
            t.probe_amenability(&mut session).expect("probe"),
            IpidVerdict::Amenable,
            "{}",
            t.kind()
        );
    }
    // Hosts only the dual test must refuse.
    for (personality, expect) in [
        (HostPersonality::openbsd3(), IpidVerdict::NonMonotonic),
        (HostPersonality::linux24(), IpidVerdict::ConstantZero),
    ] {
        let name = personality.name;
        let mut sc = scenario::validation_rig_with(0.0, 0.0, personality, 0xC3);
        let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
        let dual = technique(TestKind::DualConnection, cfg());
        assert_eq!(
            dual.probe_amenability(&mut session).expect("probe"),
            expect,
            "{name}"
        );
        // The session remembers; execute refuses without re-probing.
        let validations_before = session.stats().validations;
        match dual.execute(&mut session) {
            Err(ProbeError::HostUnsuitable(why)) => {
                assert!(why.contains(match expect {
                    IpidVerdict::ConstantZero => "constant IPID 0",
                    _ => "non-monotonic",
                }));
            }
            other => panic!("{name}: expected refusal, got {other:?}"),
        }
        assert_eq!(
            session.stats().validations,
            validations_before,
            "{name}: execute must reuse the cached verdict"
        );
    }
}

/// Every technique's report survives the JSON round trip bit-exactly.
#[test]
fn measurement_report_round_trips_for_every_technique() {
    for t in registry(cfg()) {
        let mut sc = scenario::validation_rig(0.2, 0.1, 0xC4);
        let run = execute(t.kind(), &mut sc, false).expect("run");
        let mut m = Measurement::from_run(t.kind(), &run);
        m.verdict = Some(IpidVerdict::Amenable);
        let parsed =
            Measurement::from_json(&m.to_json()).unwrap_or_else(|e| panic!("{}: {e}", t.kind()));
        assert_eq!(parsed, m, "{}", t.kind());
    }
}

/// Connection reuse must be estimate-neutral: it changes how many
/// handshakes happen, never what the estimator reports. On a clean
/// path (swap probability 0) both modes report exactly zero over full
/// determinate counts; at the deterministic extreme (p = 1) both pin
/// the rate at the top — within the small pairing slack the *fresh*
/// mode's extra inter-phase packets cost it (the swap pipe pairs
/// whatever is adjacent, so more non-sample traffic means more
/// sample/handshake pairings). Reuse must also perform no more — for
/// connection-holding techniques strictly fewer — handshakes.
#[test]
fn session_reuse_changes_no_estimates() {
    let phases = |kind: TestKind, fwd_p: f64, reuse: bool| {
        let mut sc = scenario::validation_rig(fwd_p, 0.0, 0xC5);
        let (a, b, session_hs) = {
            let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(reuse);
            let tech = technique(kind, cfg());
            // Probe + two executes: the phase pattern the survey
            // pipeline runs per host.
            let _ = tech.probe_amenability(&mut session);
            let a = tech.execute(&mut session).expect("first run");
            let b = tech.execute(&mut session).expect("second run");
            (a, b, session.stats().handshakes)
        };
        // The session and prober count the same economy: every
        // handshake the session reports happened on the wire.
        assert_eq!(
            session_hs,
            sc.prober.handshakes_performed(),
            "{kind}: session/prober handshake counters diverged"
        );
        (a, b, session_hs)
    };
    for t in registry(cfg()) {
        let kind = t.kind();

        // Clean path: exact equality — zero events, full counts.
        let (fa, fb, fresh_hs) = phases(kind, 0.0, false);
        let (ra, rb, reused_hs) = phases(kind, 0.0, true);
        for (label, fresh, reused) in [("first", &fa, &ra), ("second", &fb, &rb)] {
            assert_eq!(
                fresh.fwd_reordered() + fresh.rev_reordered(),
                0,
                "{kind}/{label}: clean path, fresh mode"
            );
            assert_eq!(
                reused.fwd_reordered() + reused.rev_reordered(),
                0,
                "{kind}/{label}: clean path, reuse mode"
            );
            assert_eq!(
                (fresh.fwd_estimate().rate(), fresh.rev_estimate().rate()),
                (reused.fwd_estimate().rate(), reused.rev_estimate().rate()),
                "{kind}/{label}: clean-path estimates must match exactly"
            );
        }
        assert!(
            reused_hs <= fresh_hs,
            "{kind}: reuse must not add handshakes ({reused_hs} vs {fresh_hs})"
        );
        // Strict savings for techniques whose connections survive a
        // run; the transfer test's clamped connection is consumed by
        // the transfer (FIN/RST), so it has nothing to cache.
        if t.requirements().connections > 0 && kind != TestKind::DataTransfer {
            assert!(
                reused_hs < fresh_hs,
                "{kind}: a connection-holding technique must save handshakes \
                 ({reused_hs} vs {fresh_hs})"
            );
        }

        // Full-swap path: both modes pin the forward rate at the top.
        if t.requirements().measures_fwd {
            let (fa, _, _) = phases(kind, 1.0, false);
            let (ra, _, _) = phases(kind, 1.0, true);
            let fresh_rate = fa.fwd_estimate().rate();
            let reused_rate = ra.fwd_estimate().rate();
            assert!(
                fresh_rate >= 0.9 && reused_rate >= 0.9,
                "{kind}: p=1 must measure ~1 (fresh {fresh_rate}, reused {reused_rate})"
            );
            assert!(
                (fresh_rate - reused_rate).abs() <= 0.08,
                "{kind}: reuse moved the p=1 estimate ({fresh_rate} vs {reused_rate})"
            );
        }
    }
}

/// The mid-probability sanity check: with reuse on, estimates still
/// track the configured rate (reuse shifts which path randomness a
/// sample sees, never the distribution it is drawn from).
#[test]
fn session_reuse_tracks_configured_rates() {
    let p = 0.2;
    for kind in [TestKind::DualConnection, TestKind::Syn] {
        let mut sc = scenario::validation_rig(p, 0.0, 0xC6);
        let mut session = Session::new(&mut sc.prober, sc.target, 80).with_reuse(true);
        let tech = technique(kind, TestConfig::samples(120));
        let _ = tech.probe_amenability(&mut session);
        let run = tech.execute(&mut session).expect("run");
        let rate = run.fwd_estimate().rate();
        assert!(
            (p - 0.09..=p + 0.09).contains(&rate),
            "{kind}: rate {rate} not within ±0.09 of {p}"
        );
    }
}

/// The deprecated single-connection inconsistency, settled: `single`
/// and `single-rev` are distinct registry entries with distinct
/// behavior (the reversed variant stays determinate against an
/// ACK-collapsing stack; the in-order variant goes blind).
#[test]
fn single_variants_are_distinct_registry_entries() {
    let kinds: Vec<TestKind> = registry(cfg()).iter().map(|t| t.kind()).collect();
    assert!(kinds.contains(&TestKind::SingleConnection));
    assert!(kinds.contains(&TestKind::SingleConnectionReversed));

    let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::windows2000(), 0xC7);
    let in_order = execute(TestKind::SingleConnection, &mut sc, false).expect("run");
    assert_eq!(in_order.fwd_determinate(), 0, "in-order variant is blind");
    let mut sc = scenario::validation_rig_with(0.0, 0.0, HostPersonality::windows2000(), 0xC8);
    let reversed = execute(TestKind::SingleConnectionReversed, &mut sc, false).expect("run");
    assert!(reversed.fwd_determinate() > 0, "reversed variant sees");
}
