//! Property tests for the simulation substrate: conservation laws
//! (pipes neither lose nor duplicate nor corrupt packets unless that is
//! their explicit job), FIFO link discipline, and determinism.

use proptest::prelude::*;
use reorder_netsim::pipes::{
    ArqConfig, CrossTraffic, CrossTrafficModel, DelayJitter, DummynetConfig, DummynetReorder,
    MultipathRoute, SplitMode, StripingLink, WirelessArq, DOWN, UP,
};
use reorder_netsim::{Ctx, Device, LinkParams, Port, SimTime, Simulator, TraceHandle};
use reorder_wire::{Ipv4Addr4, Packet, PacketBuilder, TcpFlags};
use std::time::Duration;

struct Blackhole;
impl Device for Blackhole {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: Port, _: Packet) {}
}

fn probe(n: u16) -> Packet {
    PacketBuilder::tcp()
        .src(Ipv4Addr4::new(10, 0, 0, 1), 1000)
        .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
        .seq(u32::from(n))
        .flags(TcpFlags::ACK)
        .ipid(n)
        .build()
}

/// Push `n` packets with the given inter-send gaps through `pipe` and
/// return the sequence numbers in arrival order.
fn run_pipe(pipe: Box<dyn Device>, seed: u64, gaps_ns: &[u64]) -> Vec<u32> {
    let mut sim = Simulator::new(seed);
    let src = sim.add_node(Box::new(Blackhole));
    let p = sim.add_node(pipe);
    let dst = sim.add_node(Box::new(Blackhole));
    let fast = LinkParams {
        bits_per_sec: 10_000_000_000,
        propagation: Duration::from_nanos(10),
        queue_limit: None,
    };
    sim.connect(src, Port(0), p, UP, fast);
    sim.connect(p, DOWN, dst, Port(0), fast);
    let tap: TraceHandle = sim.tap_rx(dst);
    for (i, &g) in gaps_ns.iter().enumerate() {
        sim.transmit_from(src, Port(0), probe(i as u16));
        if g > 0 {
            sim.run_for(Duration::from_nanos(g));
        }
    }
    sim.run_until_idle(SimTime::from_secs(100));
    let order: Vec<u32> = tap
        .borrow()
        .iter()
        .map(|r| r.pkt.tcp().unwrap().seq.raw())
        .collect();
    order
}

/// Arrival multiset must equal the send multiset (conservation).
fn assert_conserved(order: &[u32], n: usize) {
    let mut sorted = order.to_vec();
    sorted.sort_unstable();
    let expect: Vec<u32> = (0..n as u32).collect();
    assert_eq!(sorted, expect, "packets lost or duplicated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dummynet_conserves_packets(
        seed in 0u64..1000,
        prob in 0.0f64..=1.0,
        gaps in proptest::collection::vec(0u64..200_000, 2..60),
    ) {
        let pipe = DummynetReorder::new(
            DummynetConfig { fwd_swap: prob, ..Default::default() },
            seed,
            "p",
        );
        let order = run_pipe(Box::new(pipe), seed, &gaps);
        assert_conserved(&order, gaps.len());
    }

    #[test]
    fn striping_conserves_packets(
        seed in 0u64..1000,
        links in 1usize..5,
        model in prop_oneof![
            Just(CrossTrafficModel::Replay),
            Just(CrossTrafficModel::Stationary)
        ],
        gaps in proptest::collection::vec(0u64..100_000, 2..60),
    ) {
        let pipe = StripingLink::new(
            links,
            1_000_000_000,
            Some(CrossTraffic::backbone()),
            model,
            seed,
            "p",
        );
        let order = run_pipe(Box::new(pipe), seed, &gaps);
        assert_conserved(&order, gaps.len());
    }

    #[test]
    fn multipath_conserves_packets(
        seed in 0u64..1000,
        mode in prop_oneof![
            Just(SplitMode::PerFlow),
            Just(SplitMode::PerPacket),
            Just(SplitMode::Random)
        ],
        skew_us in 0u64..500,
        gaps in proptest::collection::vec(0u64..100_000, 2..60),
    ) {
        let pipe = MultipathRoute::with_seed(
            mode,
            vec![
                Duration::from_micros(50),
                Duration::from_micros(50 + skew_us),
            ],
            seed,
            "p",
        );
        let order = run_pipe(Box::new(pipe), seed, &gaps);
        assert_conserved(&order, gaps.len());
    }

    #[test]
    fn jitter_conserves_packets(
        seed in 0u64..1000,
        max_us in 0u64..500,
        gaps in proptest::collection::vec(0u64..100_000, 2..60),
    ) {
        let pipe = DelayJitter::new(
            Duration::ZERO,
            Duration::from_micros(max_us),
            seed,
            "p",
        );
        let order = run_pipe(Box::new(pipe), seed, &gaps);
        assert_conserved(&order, gaps.len());
    }

    /// ARQ may drop (that's its job) but never duplicates, and
    /// survivors of a stalling (in-order) ARQ keep their order.
    #[test]
    fn arq_never_duplicates_and_stalling_preserves_order(
        seed in 0u64..1000,
        error in 0.0f64..0.9,
        in_order in any::<bool>(),
        gaps in proptest::collection::vec(0u64..100_000, 2..60),
    ) {
        let pipe = WirelessArq::new(
            ArqConfig {
                frame_error: error,
                in_order_delivery: in_order,
                ..Default::default()
            },
            seed,
            "p",
        );
        let order = run_pipe(Box::new(pipe), seed, &gaps);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), order.len(), "duplicate delivery");
        prop_assert!(order.len() <= gaps.len());
        if in_order {
            let mut s = order.clone();
            s.sort_unstable();
            prop_assert_eq!(s, order, "stalling ARQ must preserve order");
        }
    }

    /// Per-flow splitting never reorders, regardless of skew or gaps.
    #[test]
    fn per_flow_multipath_never_reorders(
        skew_us in 0u64..2000,
        gaps in proptest::collection::vec(0u64..50_000, 2..60),
    ) {
        let pipe = MultipathRoute::new(
            SplitMode::PerFlow,
            vec![
                Duration::from_micros(10),
                Duration::from_micros(10 + skew_us),
            ],
        );
        let order = run_pipe(Box::new(pipe), 7, &gaps);
        let mut s = order.clone();
        s.sort_unstable();
        prop_assert_eq!(s, order);
    }

    /// Whatever the pipe, a run is exactly reproducible from its seed.
    #[test]
    fn pipes_are_deterministic(
        seed in 0u64..1000,
        gaps in proptest::collection::vec(0u64..100_000, 2..40),
    ) {
        let mk = || {
            DummynetReorder::new(
                DummynetConfig { fwd_swap: 0.5, ..Default::default() },
                seed,
                "p",
            )
        };
        let a = run_pipe(Box::new(mk()), seed, &gaps);
        let b = run_pipe(Box::new(mk()), seed, &gaps);
        prop_assert_eq!(a, b);
    }

    /// Plain links are FIFO: without a reordering pipe, arbitrary send
    /// schedules arrive in order.
    #[test]
    fn bare_links_are_fifo(
        gaps in proptest::collection::vec(0u64..1_000_000, 2..80),
    ) {
        let pipe = reorder_netsim::pipes::Forwarder::new();
        let order = run_pipe(Box::new(pipe), 1, &gaps);
        let sorted: Vec<u32> = (0..gaps.len() as u32).collect();
        prop_assert_eq!(order, sorted);
    }
}
