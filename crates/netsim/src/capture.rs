//! Packet capture: the simulated analogue of the tcpdump traces the
//! authors collected on their FreeBSD router to establish ground truth
//! (§IV-A: "A network trace was captured for every test run and this
//! trace was analyzed to find the actual number of sample packets that
//! were reordered").

use crate::engine::{NodeId, Port};
use crate::time::SimTime;
use reorder_wire::{FlowKey, Packet};
use std::cell::RefCell;
use std::rc::Rc;

/// Direction of a trace record relative to the tapped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Packet delivered to the node.
    Rx,
    /// Packet transmitted by the node.
    Tx,
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Simulation time of the delivery/transmission.
    pub time: SimTime,
    /// Tapped node.
    pub node: NodeId,
    /// Port on which the packet moved.
    pub port: Port,
    /// Direction relative to the node.
    pub dir: Dir,
    /// The packet itself.
    pub pkt: Packet,
}

/// Shared, growable capture buffer filled by the engine.
pub type TraceHandle = Rc<RefCell<Vec<TraceRecord>>>;

/// Read-only analysis helpers over a finished trace.
pub struct Trace(pub Vec<TraceRecord>);

impl Trace {
    /// Snapshot a live handle.
    pub fn snapshot(h: &TraceHandle) -> Trace {
        Trace(h.borrow().clone())
    }

    /// Clear a live handle (start a fresh measurement window).
    pub fn reset(h: &TraceHandle) {
        h.borrow_mut().clear();
    }

    /// Records for one TCP flow (either direction of the 4-tuple).
    pub fn flow(&self, key: FlowKey) -> Vec<&TraceRecord> {
        self.0
            .iter()
            .filter(|r| {
                r.pkt
                    .flow()
                    .map(|f| f == key || f == key.reversed())
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Arrival order of the TCP sequence numbers of data packets in
    /// `key`'s direction — the ground-truth view of forward-path order.
    pub fn data_seq_order(&self, key: FlowKey) -> Vec<u32> {
        self.0
            .iter()
            .filter(|r| r.pkt.flow() == Some(key))
            .filter(|r| r.pkt.tcp_data().map(|d| !d.is_empty()).unwrap_or(false))
            .map(|r| r.pkt.tcp().expect("tcp").seq.raw())
            .collect()
    }

    /// Count of adjacent exchanges needed to sort `order` — the paper's
    /// primitive metric ("the number of exchanges between pairs of test
    /// packets") applied to a ground-truth arrival sequence. Equals the
    /// inversion count, computed by [`count_inversions`] in
    /// O(n log n) rather than the bubble-sort O(n²) form.
    pub fn exchanges(order: &[u32]) -> usize {
        count_inversions(order)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Number of inversions in `seq`: pairs `i < j` with `seq[i] > seq[j]`.
///
/// This equals the adjacent-exchange (bubble-sort swap) count the paper
/// uses as its reordering primitive, but runs in O(n log n) via a
/// bottom-up merge count — campaign-scale traces (a 64-segment transfer
/// per host, ground-truth analyses over full captures) made the O(n²)
/// form measurable. Equal elements count as ordered, matching the
/// strict `>` the bubble-sort form swapped on. Property tests pin
/// equality with the naive count on random permutations.
pub fn count_inversions<T: Ord + Copy>(seq: &[T]) -> usize {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mut v = seq.to_vec();
    let mut scratch = v.clone();
    let mut inversions = 0usize;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if v[j] < v[i] {
                    // v[j] precedes every remaining left element it is
                    // smaller than: mid - i inversions at once.
                    inversions += mid - i;
                    scratch[k] = v[j];
                    j += 1;
                } else {
                    scratch[k] = v[i];
                    i += 1;
                }
                k += 1;
            }
            scratch[k..k + (mid - i)].copy_from_slice(&v[i..mid]);
            scratch[k + (mid - i)..hi].copy_from_slice(&v[j..hi]);
            v[lo..hi].copy_from_slice(&scratch[lo..hi]);
            lo = hi;
        }
        width *= 2;
    }
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};

    fn rec(seq: u32, data: &[u8], t: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_micros(t),
            node: NodeId(0),
            port: Port(0),
            dir: Dir::Rx,
            pkt: PacketBuilder::tcp()
                .src(Ipv4Addr4::new(1, 1, 1, 1), 10)
                .dst(Ipv4Addr4::new(2, 2, 2, 2), 20)
                .seq(seq)
                .flags(TcpFlags::ACK)
                .data(data.to_vec())
                .build(),
        }
    }

    fn key() -> FlowKey {
        FlowKey {
            src: Ipv4Addr4::new(1, 1, 1, 1),
            src_port: 10,
            dst: Ipv4Addr4::new(2, 2, 2, 2),
            dst_port: 20,
        }
    }

    #[test]
    fn data_seq_order_skips_pure_acks() {
        let t = Trace(vec![rec(1, b"a", 0), rec(5, b"", 1), rec(3, b"b", 2)]);
        assert_eq!(t.data_seq_order(key()), vec![1, 3]);
    }

    #[test]
    fn exchanges_counts_inversions() {
        assert_eq!(Trace::exchanges(&[1, 2, 3]), 0);
        assert_eq!(Trace::exchanges(&[2, 1]), 1);
        assert_eq!(Trace::exchanges(&[3, 2, 1]), 3);
        assert_eq!(Trace::exchanges(&[]), 0);
        assert_eq!(Trace::exchanges(&[7]), 0);
    }

    /// The bubble-sort form the merge count replaced, kept as the
    /// reference for the equivalence tests.
    fn naive_exchanges<T: Ord + Copy>(order: &[T]) -> usize {
        let mut v = order.to_vec();
        let mut swaps = 0;
        let n = v.len();
        for i in 0..n {
            for j in 0..n.saturating_sub(1 + i) {
                if v[j] > v[j + 1] {
                    v.swap(j, j + 1);
                    swaps += 1;
                }
            }
        }
        swaps
    }

    #[test]
    fn merge_count_equals_naive_on_random_permutations() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng: SmallRng = SeedableRng::seed_from_u64(0x17C0);
        for case in 0..300 {
            let n = rng.gen_range(0..80usize);
            // Mix pure permutations with duplicate-heavy sequences —
            // ties must count as ordered in both forms.
            let v: Vec<u32> = if case % 3 == 0 {
                (0..n).map(|_| rng.gen_range(0..8u32)).collect()
            } else {
                let mut p: Vec<u32> = (0..n as u32).collect();
                for i in (1..p.len()).rev() {
                    p.swap(i, rng.gen_range(0..=i));
                }
                p
            };
            assert_eq!(
                count_inversions(&v),
                naive_exchanges(&v),
                "case {case}: {v:?}"
            );
        }
    }

    #[test]
    fn merge_count_handles_duplicates_as_ordered() {
        assert_eq!(count_inversions(&[5u32, 5, 5]), 0);
        assert_eq!(count_inversions(&[2u32, 2, 1]), 2);
        assert_eq!(count_inversions(&[1u32, 3, 2, 3, 1]), 4);
    }

    #[test]
    fn flow_matches_both_directions() {
        let fwd = rec(1, b"x", 0);
        let mut rev = rec(9, b"y", 1);
        std::mem::swap(&mut rev.pkt.ip.src, &mut rev.pkt.ip.dst);
        if let reorder_wire::Payload::Tcp { header, .. } = &mut rev.pkt.payload {
            std::mem::swap(&mut header.src_port, &mut header.dst_port);
        }
        let t = Trace(vec![fwd, rev]);
        assert_eq!(t.flow(key()).len(), 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn snapshot_and_reset() {
        let h: TraceHandle = Rc::new(RefCell::new(vec![rec(1, b"a", 0)]));
        let snap = Trace::snapshot(&h);
        assert_eq!(snap.len(), 1);
        Trace::reset(&h);
        assert!(h.borrow().is_empty());
        assert_eq!(snap.len(), 1); // snapshot unaffected
    }
}
