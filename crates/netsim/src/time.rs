//! Simulated time with nanosecond resolution.
//!
//! Figure 7 of the paper sweeps inter-packet gaps in 1 µs increments, so
//! the clock must resolve well below a microsecond; nanoseconds in a
//! `u64` cover ~584 simulated years, far beyond the 20-day measurement
//! campaign of §IV-B.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation clock (nanoseconds since simulation
/// start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{us}us")
        } else {
            write!(f, "{us}.{frac:03}us")
        }
    }
}

/// Duration of serializing `bytes` onto a link of `bits_per_sec`.
///
/// This is the quantity §IV-C identifies as the reason 1500-byte data
/// packets see less reordering than 40-byte probes: the serialization
/// delay spreads the leading edges apart.
pub fn serialization_delay(bytes: usize, bits_per_sec: u64) -> Duration {
    assert!(bits_per_sec > 0, "link rate must be positive");
    // Fast path in u64 when `bits * 1e9` cannot overflow (packets up to
    // ~2.3 GB — everything real). The quotient is identical to the u128
    // form; the wide division is a libcall and this sits on the
    // per-arrival hot path of the striping pipe's workload replay.
    if bytes <= (u64::MAX / 8_000_000_000) as usize {
        let ns = bytes as u64 * 8_000_000_000 / bits_per_sec;
        return Duration::from_nanos(ns);
    }
    let bits = bytes as u128 * 8;
    let ns = bits * 1_000_000_000 / bits_per_sec as u128;
    Duration::from_nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let u = t + Duration::from_micros(5);
        assert_eq!(u.as_micros(), 15);
        assert_eq!(u - t, Duration::from_micros(5));
        assert_eq!(t - u, Duration::ZERO); // saturating
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_microseconds() {
        assert_eq!(SimTime::from_micros(42).to_string(), "42us");
        assert_eq!(SimTime::from_nanos(1500).to_string(), "1.500us");
    }

    #[test]
    fn serialization_delay_examples() {
        // 1500 bytes at 100 Mbit/s = 120 us.
        assert_eq!(
            serialization_delay(1500, 100_000_000),
            Duration::from_micros(120)
        );
        // 40 bytes at 100 Mbit/s = 3.2 us.
        assert_eq!(
            serialization_delay(40, 100_000_000),
            Duration::from_nanos(3200)
        );
        // 40 bytes at 1 Gbit/s = 320 ns.
        assert_eq!(
            serialization_delay(40, 1_000_000_000),
            Duration::from_nanos(320)
        );
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_panics() {
        serialization_delay(1, 0);
    }

    #[test]
    fn secs_f64() {
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
