//! Classic libpcap export of capture traces, so simulated measurement
//! runs can be inspected in Wireshark/tcpdump exactly like the authors'
//! router traces. Uses the original pcap format (magic `0xa1b2c3d4`)
//! with `LINKTYPE_RAW` (101): each record is a bare IPv4 datagram.

use crate::capture::{Trace, TraceRecord};
use bytes::{BufMut, BytesMut};

/// pcap global-header magic, native byte order, microsecond timestamps.
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin with the IP header.
const LINKTYPE_RAW: u32 = 101;
/// Generous snap length (we never truncate).
const SNAPLEN: u32 = 65_535;

/// Serialize a trace to pcap bytes (records in trace order).
pub fn to_pcap_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(24 + trace.0.len() * 64);
    out.put_u32_le(MAGIC);
    out.put_u16_le(2); // version major
    out.put_u16_le(4); // version minor
    out.put_i32_le(0); // thiszone
    out.put_u32_le(0); // sigfigs
    out.put_u32_le(SNAPLEN);
    out.put_u32_le(LINKTYPE_RAW);
    for rec in &trace.0 {
        put_record(&mut out, rec);
    }
    out.to_vec()
}

fn put_record(out: &mut BytesMut, rec: &TraceRecord) {
    let bytes = rec.pkt.encode();
    let us = rec.time.as_nanos() / 1_000;
    out.put_u32_le((us / 1_000_000) as u32); // ts_sec
    out.put_u32_le((us % 1_000_000) as u32); // ts_usec
    out.put_u32_le(bytes.len() as u32); // incl_len
    out.put_u32_le(bytes.len() as u32); // orig_len
    out.put_slice(&bytes);
}

/// Write a trace to a pcap file.
pub fn write_pcap(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_pcap_bytes(trace))
}

/// Minimal pcap reader (for round-trip tests and for re-analyzing
/// exported traces): returns `(timestamp_micros, packet_bytes)` pairs.
pub fn parse_pcap(bytes: &[u8]) -> Result<Vec<(u64, Vec<u8>)>, String> {
    if bytes.len() < 24 {
        return Err("truncated global header".into());
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if magic != MAGIC {
        return Err(format!("bad magic {magic:#x}"));
    }
    let linktype = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    if linktype != LINKTYPE_RAW {
        return Err(format!("unexpected linktype {linktype}"));
    }
    let mut records = Vec::new();
    let mut off = 24;
    while off < bytes.len() {
        if bytes.len() - off < 16 {
            return Err("truncated record header".into());
        }
        let f = |i: usize| {
            u32::from_le_bytes([
                bytes[off + i],
                bytes[off + i + 1],
                bytes[off + i + 2],
                bytes[off + i + 3],
            ])
        };
        let ts_sec = u64::from(f(0));
        let ts_usec = u64::from(f(4));
        let incl = f(8) as usize;
        off += 16;
        if bytes.len() - off < incl {
            return Err("truncated record body".into());
        }
        records.push((
            ts_sec * 1_000_000 + ts_usec,
            bytes[off..off + incl].to_vec(),
        ));
        off += incl;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Dir;
    use crate::engine::{NodeId, Port};
    use crate::time::SimTime;
    use reorder_wire::{Ipv4Addr4, Packet, PacketBuilder, TcpFlags};

    fn rec(seq: u32, t_us: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_micros(t_us),
            node: NodeId(0),
            port: Port(0),
            dir: Dir::Rx,
            pkt: PacketBuilder::tcp()
                .src(Ipv4Addr4::new(10, 0, 0, 1), 1000)
                .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
                .seq(seq)
                .flags(TcpFlags::ACK)
                .data(b"x".to_vec())
                .build(),
        }
    }

    #[test]
    fn global_header_layout() {
        let bytes = to_pcap_bytes(&Trace(vec![]));
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&bytes[4..6], &2u16.to_le_bytes());
        assert_eq!(&bytes[6..8], &4u16.to_le_bytes());
        assert_eq!(&bytes[20..24], &101u32.to_le_bytes());
    }

    #[test]
    fn roundtrip_preserves_packets_and_times() {
        let trace = Trace(vec![
            rec(1, 1_500_000),
            rec(2, 1_500_123),
            rec(3, 2_000_001),
        ]);
        let bytes = to_pcap_bytes(&trace);
        let parsed = parse_pcap(&bytes).expect("parse");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, 1_500_000);
        assert_eq!(parsed[1].0, 1_500_123);
        assert_eq!(parsed[2].0, 2_000_001);
        for (rec, (_, body)) in trace.0.iter().zip(&parsed) {
            let back = Packet::decode(body).expect("decode");
            assert_eq!(&back, &rec.pkt);
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_pcap(&[]).is_err());
        assert!(parse_pcap(&[0u8; 24]).is_err()); // bad magic
        let mut ok = to_pcap_bytes(&Trace(vec![rec(1, 10)]));
        ok.truncate(ok.len() - 3); // truncate record body
        assert!(parse_pcap(&ok).is_err());
    }

    #[test]
    fn write_to_disk() {
        let dir = std::env::temp_dir().join("reorder_pcap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcap");
        write_pcap(&Trace(vec![rec(7, 42)]), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(parse_pcap(&bytes).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
