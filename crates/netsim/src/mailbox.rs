//! The probe host's attachment point: a node whose received packets are
//! exposed to code *outside* the event loop.
//!
//! The paper's tools ran as user-level programs above a packet filter
//! ("programmable packet filters ... allow a user-level test program to
//! generate and receive arbitrary IP packets", §IV). [`Mailbox`] plays
//! that role in the simulator: the measurement algorithms inject raw
//! packets with [`crate::Simulator::transmit_from`] and poll received
//! packets from the shared queue, while the simulated network runs in
//! between.

use crate::engine::{Ctx, Device, Port};
use crate::time::SimTime;
use reorder_wire::Packet;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A timestamped received packet.
#[derive(Debug, Clone)]
pub struct RxPacket {
    /// Arrival time at the mailbox node.
    pub time: SimTime,
    /// Port it arrived on.
    pub port: Port,
    /// The packet.
    pub pkt: Packet,
}

/// Shared receive queue; the external agent holds the other clone.
pub type MailboxQueue = Rc<RefCell<VecDeque<RxPacket>>>;

/// Node that appends every delivery to a shared queue.
pub struct Mailbox {
    queue: MailboxQueue,
}

impl Mailbox {
    /// Create the device and the external handle.
    pub fn new() -> (Self, MailboxQueue) {
        let queue: MailboxQueue = Rc::new(RefCell::new(VecDeque::new()));
        (
            Mailbox {
                queue: queue.clone(),
            },
            queue,
        )
    }
}

impl Device for Mailbox {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        self.queue.borrow_mut().push_back(RxPacket {
            time: ctx.now(),
            port,
            pkt,
        });
    }

    fn name(&self) -> &str {
        "mailbox"
    }
}

/// Drain every queued packet.
pub fn drain(queue: &MailboxQueue) -> Vec<RxPacket> {
    queue.borrow_mut().drain(..).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::link::LinkParams;
    use crate::pipes::Forwarder;
    use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};

    #[test]
    fn mailbox_records_arrivals_in_order() {
        let mut sim = Simulator::new(0);
        let (mb, queue) = Mailbox::new();
        let me = sim.add_node(Box::new(mb));
        let fwd = sim.add_node(Box::new(Forwarder::new()));
        sim.connect(me, Port(0), fwd, Port(0), LinkParams::lan());
        // Loop the forwarder's other port straight back to a second
        // mailbox port so packets echo around.
        let (mb2, queue2) = Mailbox::new();
        let other = sim.add_node(Box::new(mb2));
        sim.connect(fwd, Port(1), other, Port(0), LinkParams::lan());

        for i in 0..5u16 {
            let pkt = PacketBuilder::tcp()
                .src(Ipv4Addr4::new(1, 1, 1, 1), 10)
                .dst(Ipv4Addr4::new(2, 2, 2, 2), 20)
                .seq(u32::from(i))
                .flags(TcpFlags::ACK)
                .build();
            sim.transmit_from(me, Port(0), pkt);
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(queue.borrow().is_empty());
        let got = drain(&queue2);
        assert_eq!(got.len(), 5);
        let seqs: Vec<u32> = got.iter().map(|r| r.pkt.tcp().unwrap().seq.raw()).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert!(got.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(drain(&queue2).is_empty(), "drain empties the queue");
    }
}
