//! Point-to-point link model: bandwidth (serialization delay),
//! propagation delay, and a drop-tail transmit queue.

use crate::time::{serialization_delay, SimTime};
use std::time::Duration;

/// Static parameters of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Link rate in bits per second; determines serialization delay.
    pub bits_per_sec: u64,
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Maximum number of packets queued awaiting transmission (beyond the
    /// one being serialized). `None` = unbounded. Overflow drops the
    /// packet (drop-tail), like a router output queue.
    pub queue_limit: Option<usize>,
}

impl LinkParams {
    /// A fast LAN-ish default: 1 Gbit/s, 50 µs propagation, unbounded.
    pub const fn lan() -> Self {
        LinkParams {
            bits_per_sec: 1_000_000_000,
            propagation: Duration::from_micros(50),
            queue_limit: None,
        }
    }

    /// A WAN-ish default: 100 Mbit/s, 20 ms propagation, unbounded.
    pub const fn wan() -> Self {
        LinkParams {
            bits_per_sec: 100_000_000,
            propagation: Duration::from_millis(20),
            queue_limit: None,
        }
    }

    /// Override the rate.
    pub fn with_rate(mut self, bits_per_sec: u64) -> Self {
        self.bits_per_sec = bits_per_sec;
        self
    }

    /// Override the propagation delay.
    pub fn with_propagation(mut self, d: Duration) -> Self {
        self.propagation = d;
        self
    }

    /// Override the queue limit.
    pub fn with_queue_limit(mut self, pkts: usize) -> Self {
        self.queue_limit = Some(pkts);
        self
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::lan()
    }
}

/// Dynamic state of one direction of a link.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Parameters.
    pub params: LinkParams,
    /// Time at which the transmitter finishes everything queued so far.
    pub busy_until: SimTime,
    /// Number of packets currently queued (not yet begun serializing).
    pub queued: usize,
    /// Packets dropped by queue overflow (observability for tests).
    pub drops: u64,
    /// Exact ns-per-byte multiplier when the rate divides 8×10⁹ (every
    /// rate this workspace uses); turns the per-offer serialization
    /// division into a multiply.
    ns_per_byte: Option<u64>,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Packet accepted; it will arrive at the far end at this time.
    Arrives(SimTime),
    /// Queue full; packet dropped.
    Dropped,
}

impl LinkState {
    /// New idle link.
    pub fn new(params: LinkParams) -> Self {
        LinkState {
            ns_per_byte: exact_ns_per_byte(params.bits_per_sec),
            params,
            busy_until: SimTime::ZERO,
            queued: 0,
            drops: 0,
        }
    }

    /// Offer a packet of `wire_len` bytes at time `now`. Computes FIFO
    /// departure honoring serialization delay, updates queue accounting,
    /// and returns the arrival time at the far end (or `Dropped`).
    pub fn offer(&mut self, now: SimTime, wire_len: usize) -> Offer {
        if self.busy_until > now {
            if let Some(limit) = self.params.queue_limit {
                if self.queued >= limit {
                    self.drops += 1;
                    return Offer::Dropped;
                }
            }
            self.queued += 1;
        } else {
            self.queued = 0;
        }
        let start = self.busy_until.max(now);
        let done = start + ser_delay_cached(self.ns_per_byte, wire_len, self.params.bits_per_sec);
        self.busy_until = done;
        Offer::Arrives(done + self.params.propagation)
    }
}

/// `Some(8e9 / rate)` when the division is exact — then
/// `serialization_delay(bytes, rate)` equals `bytes * that` for every
/// byte count (`⌊bytes·8e9/rate⌋ = bytes·(8e9/rate)` when `rate | 8e9`),
/// so callers on per-packet paths can multiply instead of divide.
pub(crate) fn exact_ns_per_byte(bits_per_sec: u64) -> Option<u64> {
    assert!(bits_per_sec > 0, "link rate must be positive");
    (8_000_000_000 % bits_per_sec == 0).then(|| 8_000_000_000 / bits_per_sec)
}

/// Serialization delay using a cached [`exact_ns_per_byte`] multiplier
/// when one exists — the shared fast path of the link offer and the
/// striping replay.
pub(crate) fn ser_delay_cached(
    ns_per_byte: Option<u64>,
    bytes: usize,
    bits_per_sec: u64,
) -> Duration {
    match ns_per_byte {
        Some(m) => Duration::from_nanos(bytes as u64 * m),
        None => serialization_delay(bytes, bits_per_sec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_delivers_after_ser_plus_prop() {
        let mut l = LinkState::new(LinkParams {
            bits_per_sec: 8_000_000, // 1 byte per microsecond
            propagation: Duration::from_micros(100),
            queue_limit: None,
        });
        match l.offer(SimTime::from_micros(10), 40) {
            Offer::Arrives(t) => assert_eq!(t, SimTime::from_micros(10 + 40 + 100)),
            Offer::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize_fifo() {
        let mut l = LinkState::new(LinkParams {
            bits_per_sec: 8_000_000,
            propagation: Duration::ZERO,
            queue_limit: None,
        });
        let a = l.offer(SimTime::ZERO, 100);
        let b = l.offer(SimTime::ZERO, 100);
        assert_eq!(a, Offer::Arrives(SimTime::from_micros(100)));
        // Second packet waits for the first to finish serializing.
        assert_eq!(b, Offer::Arrives(SimTime::from_micros(200)));
    }

    #[test]
    fn queue_limit_drops_tail() {
        let mut l = LinkState::new(LinkParams {
            bits_per_sec: 8_000_000,
            propagation: Duration::ZERO,
            queue_limit: Some(1),
        });
        assert!(matches!(l.offer(SimTime::ZERO, 1000), Offer::Arrives(_))); // serializing
        assert!(matches!(l.offer(SimTime::ZERO, 1000), Offer::Arrives(_))); // queued (1)
        assert_eq!(l.offer(SimTime::ZERO, 1000), Offer::Dropped);
        assert_eq!(l.drops, 1);
    }

    #[test]
    fn queue_drains_when_idle() {
        let mut l = LinkState::new(LinkParams {
            bits_per_sec: 8_000_000,
            propagation: Duration::ZERO,
            queue_limit: Some(1),
        });
        let _ = l.offer(SimTime::ZERO, 1000);
        let _ = l.offer(SimTime::ZERO, 1000);
        assert_eq!(l.offer(SimTime::ZERO, 1000), Offer::Dropped);
        // After busy_until passes, the queue resets.
        assert!(matches!(
            l.offer(SimTime::from_micros(5000), 1000),
            Offer::Arrives(_)
        ));
        assert_eq!(l.queued, 0);
    }

    #[test]
    fn builders() {
        let p = LinkParams::wan()
            .with_rate(42)
            .with_propagation(Duration::from_millis(1))
            .with_queue_limit(9);
        assert_eq!(p.bits_per_sec, 42);
        assert_eq!(p.propagation, Duration::from_millis(1));
        assert_eq!(p.queue_limit, Some(9));
    }
}
