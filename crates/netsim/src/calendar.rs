//! The calendar-queue event scheduler behind [`crate::Simulator`].
//!
//! A discrete-event simulation at network timescales pops events that
//! are overwhelmingly *near*: link serialization and propagation put
//! the next arrival microseconds-to-milliseconds ahead, while only
//! pacing and retransmission timers look further out. A binary heap
//! pays `O(log n)` pointer-chasing sift operations — moving the whole
//! event payload at every level — for a distribution this skewed. The
//! calendar queue (Brown 1988, the structure inside timer wheels)
//! instead hashes each event by time into a ring of buckets covering a
//! sliding window, leaving pops to drain one small bucket at a time:
//! amortized O(1) per event, with the event payload moved once.
//!
//! Determinism contract: pops come out in exactly `(time, seq)` order —
//! the same total order the previous `BinaryHeap<Reverse<Event>>`
//! produced — so time ties keep breaking by insertion sequence and
//! golden traces survive the swap. Events beyond the window go to an
//! ordered overflow heap (the far-future fallback) and are compared
//! against the wheel on every pop, so no ordering is lost when the
//! window slides.
//!
//! Tuning (measured on the 1000-host campaign, which mixes sub-µs LAN
//! bursts with 5–120 ms WAN lulls): bucket width 2^21 ns ≈ 2 ms with a
//! 256-bucket ring ≈ 537 ms window. Coarse buckets keep the ring and
//! its occupancy bitmap cache-resident and amortize ordering into one
//! small sort per bucket; the wide window keeps WAN propagation,
//! sample pacing (20 ms) and delayed-ACK timers (200 ms) out of the
//! overflow heap. Finer widths (16–131 µs) measured 10–35% slower on
//! the same campaign — at these queue depths scan locality beats
//! bucket granularity.

use crate::time::SimTime;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket width in nanoseconds.
const BUCKET_BITS: u64 = 21;
/// Number of buckets in the ring (must be a power of two).
const NBUCKETS: usize = 256;
/// Occupancy bitmap words.
const NWORDS: usize = NBUCKETS / 64;

/// One scheduled item: the key `(time, seq)` plus the payload.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

fn bucket_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_BITS
}

fn slot_of(bucket: u64) -> usize {
    bucket as usize & (NBUCKETS - 1)
}

/// A calendar queue yielding items in exact `(time, seq)` order.
///
/// `clear` retains every bucket allocation, so a reset simulator reuses
/// the scheduler's memory — the pooling fast path.
pub(crate) struct CalendarQueue<T> {
    /// The ring. Buckets are unsorted until the cursor reaches them;
    /// the cursor's bucket is kept sorted *descending* by `(time, seq)`
    /// so pops come off the back.
    buckets: Vec<Vec<Entry<T>>>,
    /// One bit per non-empty bucket, for O(1)-ish cursor advances.
    occupancy: [u64; NWORDS],
    /// Absolute bucket index the cursor is at. Every wheel entry lives
    /// in `[cur, cur + NBUCKETS)`, which keeps ring slots collision-free.
    cur: u64,
    /// The absolute bucket currently maintained in sorted order, if any.
    sorted_bucket: Option<u64>,
    /// Ordered fallback for events beyond the window.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Entries in the ring (excluding overflow).
    wheel_len: usize,
    /// Total entries.
    len: usize,
    /// Memoized key of the earliest entry. The engine peeks two or
    /// three times per pop (deadline checks wrap the event loop), so
    /// the ring scan is paid once per structural change instead.
    min_cache: Cell<Option<(SimTime, u64)>>,
    /// Pushes routed to the overflow heap since construction or
    /// [`CalendarQueue::clear`] — the telemetry counter for "how often
    /// does traffic fall off the wheel" (each such push costs a heap
    /// insert instead of an O(1) bucket append).
    overflow_pushes: u64,
}

impl<T> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occupancy: [0; NWORDS],
            cur: 0,
            sorted_bucket: None,
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
            min_cache: Cell::new(None),
            overflow_pushes: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every entry but keep all allocations (buckets, heap).
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
        }
        self.occupancy = [0; NWORDS];
        self.cur = 0;
        self.sorted_bucket = None;
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
        self.min_cache.set(None);
        self.overflow_pushes = 0;
    }

    /// Pushes that landed in the overflow heap (see the field docs).
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    /// Schedule `item` at `time` with tiebreak `seq`. `now` is the
    /// caller's clock; `time >= now` is required (events are never
    /// scheduled in the past) and lets an empty wheel re-anchor its
    /// window at the present.
    pub fn push(&mut self, now: SimTime, time: SimTime, seq: u64, item: T) {
        debug_assert!(time >= now, "event scheduled in the past");
        if self.wheel_len == 0 {
            // Empty wheel: re-anchor the window at the present so the
            // push below lands in it whenever possible. Safe because
            // every future push has time >= now.
            self.cur = self.cur.max(bucket_of(now));
            self.sorted_bucket = None;
        }
        let b = bucket_of(time);
        let entry = Entry { time, seq, item };
        self.len += 1;
        if let Some(cached) = self.min_cache.get() {
            if entry.key() < cached {
                self.min_cache.set(Some(entry.key()));
            }
        } else if self.len == 1 {
            self.min_cache.set(Some(entry.key()));
        }
        if b >= self.cur + NBUCKETS as u64 || b < self.cur {
            // Outside the window. Beyond it is the ordinary far-future
            // case; *below* it happens when an overflow event popped
            // earlier than the cursor's bucket (the clock now trails
            // the cursor). Both sides ride the ordered heap, and every
            // pop compares heap and wheel minima, so ordering holds.
            self.overflow_pushes += 1;
            self.overflow.push(Reverse(entry));
            return;
        }
        let s = slot_of(b);
        if self.sorted_bucket == Some(b) {
            // Keep the cursor's bucket sorted (descending): binary
            // insert. Rare — only sub-bucket-width latencies land here.
            let key = entry.key();
            let pos = self.buckets[s].partition_point(|e| e.key() > key);
            self.buckets[s].insert(pos, entry);
        } else {
            self.buckets[s].push(entry);
        }
        self.occupancy[s / 64] |= 1 << (s % 64);
        self.wheel_len += 1;
    }

    /// Key of the earliest entry, without disturbing the queue.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        if self.is_empty() {
            return None;
        }
        if let Some(k) = self.min_cache.get() {
            return Some(k);
        }
        let wheel = self.first_bucket().map(|b| {
            let bucket = &self.buckets[slot_of(b)];
            if self.sorted_bucket == Some(b) {
                bucket.last().expect("non-empty").key()
            } else {
                bucket.iter().map(Entry::key).min().expect("non-empty")
            }
        });
        let over = self.overflow.peek().map(|Reverse(e)| e.key());
        let min = match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        };
        self.min_cache.set(min);
        min
    }

    /// Remove and return the earliest entry as `(time, seq, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.migrate_overflow();
        }
        let wheel_key = if self.wheel_len > 0 {
            self.advance_cursor();
            let s = slot_of(self.cur);
            if self.sorted_bucket != Some(self.cur) {
                // First visit since the bucket filled: one sort, then
                // pops come off the back in order.
                self.buckets[s].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.sorted_bucket = Some(self.cur);
            }
            Some(self.buckets[s].last().expect("advance found entries").key())
        } else {
            None
        };
        let from_overflow = match (wheel_key, self.overflow.peek()) {
            (Some(w), Some(Reverse(o))) => o.key() < w,
            (None, Some(_)) => true,
            _ => false,
        };
        self.len -= 1;
        self.min_cache.set(None);
        if from_overflow {
            let Reverse(e) = self.overflow.pop().expect("peeked");
            return Some((e.time, e.seq, e.item));
        }
        let s = slot_of(self.cur);
        let e = self.buckets[s].pop().expect("checked");
        self.wheel_len -= 1;
        if self.buckets[s].is_empty() {
            self.occupancy[s / 64] &= !(1 << (s % 64));
        } else {
            // The bucket stays sorted, so the next minimum is known.
            self.min_cache.set(Some(
                self.buckets[s].last().expect("non-empty").key().min(
                    self.overflow
                        .peek()
                        .map(|Reverse(o)| o.key())
                        .unwrap_or((SimTime::MAX, u64::MAX)),
                ),
            ));
        }
        Some((e.time, e.seq, e.item))
    }

    /// Absolute bucket of the earliest non-empty ring slot, if any.
    fn first_bucket(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = slot_of(self.cur);
        let mut dist = 0usize;
        while dist < NBUCKETS {
            let s = (start + dist) & (NBUCKETS - 1);
            let word = self.occupancy[s / 64];
            if word == 0 {
                // Skip the whole word (aligning down may re-test a few
                // slots, never skip occupied ones).
                dist += 64 - (s % 64);
                continue;
            }
            let bit_in_word = (word >> (s % 64)).trailing_zeros() as usize;
            if (s % 64) + bit_in_word < 64 {
                let found_dist = dist + bit_in_word;
                if found_dist < NBUCKETS {
                    return Some(self.cur + found_dist as u64);
                }
                return None;
            }
            dist += 64 - (s % 64);
        }
        None
    }

    /// Move the cursor to the first non-empty bucket (wheel_len > 0).
    fn advance_cursor(&mut self) {
        let next = self.first_bucket().expect("wheel_len > 0");
        if next != self.cur {
            self.cur = next;
        }
    }

    /// The wheel is empty: re-anchor the window at the overflow's
    /// earliest entry and pull everything now inside it into the ring.
    fn migrate_overflow(&mut self) {
        let Some(Reverse(first)) = self.overflow.peek() else {
            return;
        };
        self.cur = bucket_of(first.time);
        self.sorted_bucket = None;
        let window_end = self.cur + NBUCKETS as u64;
        while let Some(Reverse(e)) = self.overflow.peek() {
            if bucket_of(e.time) >= window_end {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            let s = slot_of(bucket_of(e.time));
            self.buckets[s].push(e);
            self.occupancy[s / 64] |= 1 << (s % 64);
            self.wheel_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Reference implementation: the BinaryHeap ordering the engine
    /// used before the calendar queue.
    struct RefQueue {
        heap: BinaryHeap<Reverse<Entry<u32>>>,
    }

    impl RefQueue {
        fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, time: SimTime, seq: u64, item: u32) {
            self.heap.push(Reverse(Entry { time, seq, item }));
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            self.heap.pop().map(|Reverse(e)| (e.time, e.seq, e.item))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_micros(5);
        q.push(SimTime::ZERO, t, 1, "b");
        q.push(SimTime::ZERO, t, 0, "a");
        q.push(SimTime::ZERO, SimTime::from_micros(1), 7, "first");
        assert_eq!(q.peek_key(), Some((SimTime::from_micros(1), 7)));
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "a");
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = CalendarQueue::new();
        // Delayed-ACK-style timer far beyond the window, then near
        // traffic pushed while it waits.
        q.push(SimTime::ZERO, SimTime::from_millis(200), 0, 200);
        for i in 0..50u64 {
            q.push(SimTime::ZERO, SimTime::from_micros(i * 30), i + 1, i as u32);
        }
        let mut times = Vec::new();
        while let Some((t, _, _)) = q.pop() {
            times.push(t);
        }
        assert_eq!(times.len(), 51);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*times.last().unwrap(), SimTime::from_millis(200));
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        // The golden-order property: any schedule of pushes (including
        // pushes into the bucket being drained, far-future overflow and
        // window re-anchoring) pops identically to the reference heap.
        let mut rng: SmallRng = SeedableRng::seed_from_u64(0xCA1E);
        for round in 0..20 {
            let mut cal = CalendarQueue::new();
            let mut reference = RefQueue::new();
            let mut now = SimTime::ZERO;
            let mut seq = 0u64;
            let mut popped = 0usize;
            let mut pushed = 0usize;
            while pushed < 400 || popped < 400 {
                let push_burst = rng.gen_range(0..4usize);
                for _ in 0..push_burst.min(400 - pushed) {
                    // Mix of sub-bucket, in-window and far-future delays.
                    let delay_ns: u64 = match rng.gen_range(0..10u32) {
                        0..=4 => rng.gen_range(0..20_000),    // same/next bucket
                        5..=7 => rng.gen_range(0..2_000_000), // in window
                        8 => rng.gen_range(0..40_000_000),    // mixed
                        _ => rng.gen_range(0..400_000_000),   // overflow
                    };
                    let t = now + std::time::Duration::from_nanos(delay_ns);
                    cal.push(now, t, seq, seq as u32);
                    reference.push(t, seq, seq as u32);
                    seq += 1;
                    pushed += 1;
                }
                let pops = rng.gen_range(0..3usize);
                for _ in 0..pops {
                    let got = cal.pop();
                    let want = reference.pop();
                    match (got, want) {
                        (Some(g), Some(w)) => {
                            assert_eq!(g, w, "round {round}: divergence after {popped} pops");
                            now = g.0; // the engine advances its clock to the popped time
                            popped += 1;
                        }
                        (None, None) => break,
                        (g, w) => panic!("round {round}: one queue empty: {g:?} vs {w:?}"),
                    }
                    assert_eq!(cal.len(), reference.heap.len());
                }
            }
            // Drain the rest.
            loop {
                let got = cal.pop();
                let want = reference.pop();
                assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn clear_retains_order_semantics() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::ZERO, SimTime::from_secs(5), 0, 1);
        q.push(SimTime::ZERO, SimTime::from_micros(1), 1, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
        // Reusable after clear, from time zero again.
        q.push(SimTime::ZERO, SimTime::from_micros(3), 0, 9);
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 0, 9)));
    }

    #[test]
    fn empty_wheel_reanchors_to_now() {
        let mut q = CalendarQueue::new();
        // Advance deep into simulated time before the first push.
        let now = SimTime::from_secs(3600);
        q.push(now, now + std::time::Duration::from_micros(10), 0, 1);
        assert_eq!(
            q.pop().map(|(t, _, _)| t),
            Some(now + std::time::Duration::from_micros(10))
        );
        // And far-future first push migrates back cleanly.
        q.push(now, now + std::time::Duration::from_secs(100), 1, 2);
        q.push(now, now + std::time::Duration::from_secs(50), 2, 3);
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(3));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(2));
    }
}
