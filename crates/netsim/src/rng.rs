//! Deterministic RNG management.
//!
//! Every stochastic element (dummynet swap decisions, loss, jitter,
//! cross-traffic, host personalities) draws from its own stream, derived
//! from a single master seed by mixing in a stable label. Adding a new
//! device therefore never perturbs the random sequence seen by existing
//! devices, which keeps experiments reproducible as scenarios grow.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a child seed from `master` and a label, via SplitMix64 over the
/// label's FNV-1a hash. Stable across platforms and compiler versions.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(master ^ h)
}

/// One round of SplitMix64.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A labeled RNG stream.
pub fn stream(master: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn labels_give_distinct_streams() {
        let mut a = stream(1, "dummynet.fwd");
        let mut b = stream(1, "dummynet.rev");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_label_same_stream() {
        let mut a = stream(7, "x");
        let mut b = stream(7, "x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn master_seed_matters() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn splitmix_known_value() {
        // Reference value from the SplitMix64 paper's test vector chain
        // starting at 0: first output is 0xe220a8397b1dcdaf.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
