//! The modified-dummynet reordering pipe of §IV-A.
//!
//! The authors patched Rizzo's dummynet traffic shaper to "swap adjacent
//! packets according to a specified probability distribution". This pipe
//! reproduces that behavior per direction: with probability `p`, a packet
//! is held back and released immediately *after* the next packet in the
//! same direction passes — an adjacent-pair exchange. A hold timeout
//! bounds the delay when no successor arrives (end of a test run), in
//! which case no swap happens.

use super::other;
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::Packet;
use std::time::Duration;

/// Per-direction swap probabilities and the hold timeout.
#[derive(Debug, Clone, Copy)]
pub struct DummynetConfig {
    /// Probability of swapping an adjacent pair, upstream → downstream.
    pub fwd_swap: f64,
    /// Probability of swapping an adjacent pair, downstream → upstream.
    pub rev_swap: f64,
    /// Release a held packet unswapped after this long without a
    /// successor.
    pub max_hold: Duration,
}

impl Default for DummynetConfig {
    fn default() -> Self {
        DummynetConfig {
            fwd_swap: 0.0,
            rev_swap: 0.0,
            max_hold: Duration::from_millis(50),
        }
    }
}

struct DirState {
    held: Option<(u64, Packet)>, // (generation, packet)
    generation: u64,
    rng: SmallRng,
    prob: f64,
    /// Observability: completed swaps.
    swaps: u64,
    /// Observability: holds released by timeout (no successor).
    timeouts: u64,
}

impl DirState {
    fn new(prob: f64, rng: SmallRng) -> Self {
        DirState {
            held: None,
            generation: 0,
            rng,
            prob,
            swaps: 0,
            timeouts: 0,
        }
    }
}

/// Adjacent-pair swapping pipe (two ports; see [`super::UP`] /
/// [`super::DOWN`]).
pub struct DummynetReorder {
    cfg: DummynetConfig,
    dirs: [DirState; 2],
}

impl DummynetReorder {
    /// Build with the given config; randomness derives from
    /// `master_seed` and `label` so multiple pipes in one simulation get
    /// independent streams.
    pub fn new(cfg: DummynetConfig, master_seed: u64, label: &str) -> Self {
        assert!((0.0..=1.0).contains(&cfg.fwd_swap), "fwd_swap out of range");
        assert!((0.0..=1.0).contains(&cfg.rev_swap), "rev_swap out of range");
        DummynetReorder {
            cfg,
            dirs: [
                DirState::new(
                    cfg.fwd_swap,
                    rng::stream(master_seed, &format!("{label}.fwd")),
                ),
                DirState::new(
                    cfg.rev_swap,
                    rng::stream(master_seed, &format!("{label}.rev")),
                ),
            ],
        }
    }

    /// Total completed swaps in the given direction (0 = fwd, 1 = rev).
    pub fn swaps(&self, dir: usize) -> u64 {
        self.dirs[dir].swaps
    }

    /// Holds released unswapped by timeout, per direction.
    pub fn hold_timeouts(&self, dir: usize) -> u64 {
        self.dirs[dir].timeouts
    }

    fn timer_token(dir: usize, generation: u64) -> u64 {
        // Low bit encodes direction; the rest is the hold generation.
        (generation << 1) | dir as u64
    }
}

impl Device for DummynetReorder {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2, "dummynet pipe has two ports");
        let out = other(port);
        let st = &mut self.dirs[dir];
        if let Some((_, held)) = st.held.take() {
            // Successor arrived while holding: complete the swap.
            // Transmit order within this event is preserved by the
            // engine, so `pkt` goes first, then the older `held`.
            st.generation += 1; // invalidate the pending timeout
            st.swaps += 1;
            ctx.transmit(out, pkt);
            ctx.transmit(out, held);
            return;
        }
        if st.prob > 0.0 && st.rng.gen_bool(st.prob) {
            st.generation += 1;
            let generation = st.generation;
            st.held = Some((generation, pkt));
            ctx.set_timer(self.cfg.max_hold, Self::timer_token(dir, generation));
        } else {
            ctx.transmit(out, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let dir = (token & 1) as usize;
        let generation = token >> 1;
        let st = &mut self.dirs[dir];
        if let Some((held_generation, _)) = st.held {
            if held_generation == generation {
                let (_, pkt) = st.held.take().expect("checked");
                st.timeouts += 1;
                ctx.transmit(other(Port(dir)), pkt);
            }
        }
    }

    fn name(&self) -> &str {
        "dummynet-reorder"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{rig, send_and_collect};
    use super::*;
    use crate::time::SimTime;

    fn count_adjacent_swaps(order: &[u32]) -> usize {
        order.windows(2).filter(|w| w[0] > w[1]).count()
    }

    #[test]
    fn zero_probability_is_transparent() {
        let cfg = DummynetConfig::default();
        let (mut sim, src, _, _, tap) = rig(Box::new(DummynetReorder::new(cfg, 7, "d")), 7);
        let order = send_and_collect(&mut sim, src, &tap, 100, Duration::ZERO);
        assert_eq!(order, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn certain_probability_swaps_every_pair() {
        let cfg = DummynetConfig {
            fwd_swap: 1.0,
            ..Default::default()
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(DummynetReorder::new(cfg, 7, "d")), 7);
        let order = send_and_collect(&mut sim, src, &tap, 10, Duration::ZERO);
        // With p=1 every packet is held and swapped with its successor:
        // 1,0,3,2,5,4,...
        assert_eq!(order, vec![1, 0, 3, 2, 5, 4, 7, 6, 9, 8]);
    }

    #[test]
    fn rate_tracks_configured_probability() {
        let cfg = DummynetConfig {
            fwd_swap: 0.10,
            ..Default::default()
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(DummynetReorder::new(cfg, 42, "d")), 42);
        let n = 4000;
        let order = send_and_collect(&mut sim, src, &tap, n, Duration::ZERO);
        assert_eq!(order.len(), n as usize, "no packets lost");
        let swaps = count_adjacent_swaps(&order);
        // Each swap decision is taken per unheld packet; observed
        // adjacent inversions per packet ≈ p/(1+p) ≈ 0.0909. Accept a
        // generous band.
        let rate = swaps as f64 / n as f64;
        assert!(
            (0.06..=0.13).contains(&rate),
            "swap rate {rate} outside expected band"
        );
    }

    #[test]
    fn lone_packet_released_by_timeout() {
        let cfg = DummynetConfig {
            fwd_swap: 1.0,
            max_hold: Duration::from_millis(5),
            ..Default::default()
        };
        let (mut sim, src, pipe, _, tap) = rig(Box::new(DummynetReorder::new(cfg, 7, "d")), 7);
        sim.transmit_from(src, Port(0), super::super::testutil::probe(0));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(tap.borrow().len(), 1, "held packet must not be lost");
        // The release happened via the timeout path.
        let _ = pipe; // device is owned by the sim; stats checked below via a fresh rig
    }

    #[test]
    fn directions_are_independent() {
        // fwd swaps certainly, rev never. Send rev traffic through and
        // confirm order preserved.
        let cfg = DummynetConfig {
            fwd_swap: 1.0,
            rev_swap: 0.0,
            ..Default::default()
        };
        let mut sim = crate::engine::Simulator::new(3);
        let up = sim.add_node(Box::new(super::super::testutil::Blackhole));
        let pipe = sim.add_node(Box::new(DummynetReorder::new(cfg, 3, "d")));
        let down = sim.add_node(Box::new(super::super::testutil::Blackhole));
        let fast = crate::link::LinkParams {
            bits_per_sec: 100_000_000_000,
            propagation: Duration::from_nanos(1),
            queue_limit: None,
        };
        sim.connect(up, Port(0), pipe, super::super::UP, fast);
        sim.connect(pipe, super::super::DOWN, down, Port(0), fast);
        let tap_up = sim.tap_rx(up);
        // Upstream-bound traffic enters the pipe's DOWN port.
        for i in 0..20u16 {
            sim.transmit_from(down, Port(0), super::super::testutil::probe(i));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        let order: Vec<u32> = tap_up
            .borrow()
            .iter()
            .map(|r| r.pkt.tcp().unwrap().seq.raw())
            .collect();
        assert_eq!(order, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let cfg = DummynetConfig {
                fwd_swap: 0.3,
                ..Default::default()
            };
            let (mut sim, src, _, _, tap) =
                rig(Box::new(DummynetReorder::new(cfg, seed, "d")), seed);
            send_and_collect(&mut sim, src, &tap, 200, Duration::ZERO)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "fwd_swap out of range")]
    fn rejects_bad_probability() {
        DummynetReorder::new(
            DummynetConfig {
                fwd_swap: 1.5,
                ..Default::default()
            },
            0,
            "d",
        );
    }
}
