//! In-path devices ("pipes", after dummynet's terminology).
//!
//! Every pipe is a two-or-more-port [`crate::Device`] that forwards
//! traffic while perturbing it: swapping, striping, balancing, dropping,
//! delaying or policing. Pipes compose by chaining links, exactly like
//! the authors' FreeBSD router sat between their probe host and the
//! measured path.

mod balancer;
mod dummynet;
mod fault;
mod forward;
mod jitter;
mod loss;
mod multipath;
mod ratelimit;
mod stationary;
mod striping;
mod token;
mod wireless;

pub use balancer::{BalanceMode, LoadBalancer};
pub use dummynet::{DummynetConfig, DummynetReorder};
pub use fault::{FaultClass, FaultGate};
pub use forward::Forwarder;
pub use jitter::DelayJitter;
pub use loss::RandomLoss;
pub use multipath::{MultipathRoute, SplitMode};
pub use ratelimit::{PoliceClass, RateLimiter};
pub use stationary::{CrossTrafficModel, StationarySampler};
pub use striping::{CrossTraffic, StripingLink};
pub use wireless::{ArqConfig, WirelessArq};

use crate::engine::Port;

/// Conventional upstream port of a two-port pipe.
pub const UP: Port = Port(0);
/// Conventional downstream port of a two-port pipe.
pub const DOWN: Port = Port(1);

/// The opposite port of a two-port pipe.
pub(crate) fn other(p: Port) -> Port {
    match p {
        Port(0) => DOWN,
        Port(1) => UP,
        other => panic!("two-port pipe has no port {other:?}"),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::capture::TraceHandle;
    use crate::engine::{Ctx, Device, NodeId, Port, Simulator};
    use crate::link::LinkParams;
    use reorder_wire::{Ipv4Addr4, Packet, PacketBuilder, TcpFlags};
    use std::time::Duration;

    /// Absorbs everything (endpoint for pipe tests; observe via taps).
    pub struct Blackhole;
    impl Device for Blackhole {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: Port, _: Packet) {}
        fn name(&self) -> &str {
            "blackhole"
        }
    }

    /// A minimal 40-byte probe with `n` stamped in seq and IPID.
    pub fn probe(n: u16) -> Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(10, 0, 0, 1), 1000)
            .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
            .seq(u32::from(n))
            .flags(TcpFlags::ACK)
            .ipid(n)
            .build()
    }

    /// Harness: src --(fast)--> [pipe] --(fast)--> dst. Returns
    /// (sim, src node, pipe node, dst node, rx tap on dst).
    pub fn rig(
        pipe: Box<dyn Device>,
        seed: u64,
    ) -> (Simulator, NodeId, NodeId, NodeId, TraceHandle) {
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(Box::new(Blackhole));
        let p = sim.add_node(pipe);
        let dst = sim.add_node(Box::new(Blackhole));
        // Fast, near-zero-delay links so the pipe dominates behavior.
        let fast = LinkParams {
            bits_per_sec: 100_000_000_000,
            propagation: Duration::from_nanos(1),
            queue_limit: None,
        };
        sim.connect(src, Port(0), p, super::UP, fast);
        sim.connect(p, super::DOWN, dst, Port(0), fast);
        let tap = sim.tap_rx(dst);
        (sim, src, p, dst, tap)
    }

    /// Send `n` back-to-back probes downstream and return arrival order
    /// of their sequence numbers at dst.
    pub fn send_and_collect(
        sim: &mut Simulator,
        src: NodeId,
        tap: &TraceHandle,
        n: u16,
        gap: Duration,
    ) -> Vec<u32> {
        for i in 0..n {
            sim.transmit_from(src, Port(0), probe(i));
            if gap > Duration::ZERO {
                sim.run_for(gap);
            }
        }
        sim.run_until_idle(crate::time::SimTime::from_secs(10));
        tap.borrow()
            .iter()
            .map(|r| r.pkt.tcp().unwrap().seq.raw())
            .collect()
    }
}
