//! Independent random loss — the failure mode that forces the Single
//! Connection Test to discard samples (§III-B) and that the SYN Test's
//! lone-reply ambiguity rules are designed around.

use super::other;
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::Packet;

/// Drops packets i.i.d. with a per-direction probability.
pub struct RandomLoss {
    prob: [f64; 2],
    rngs: [SmallRng; 2],
    /// Observability: dropped packet counts per direction.
    pub dropped: [u64; 2],
    /// Observability: forwarded packet counts per direction.
    pub passed: [u64; 2],
}

impl RandomLoss {
    /// `fwd` applies upstream→downstream, `rev` the opposite direction.
    pub fn new(fwd: f64, rev: f64, master_seed: u64, label: &str) -> Self {
        assert!((0.0..=1.0).contains(&fwd) && (0.0..=1.0).contains(&rev));
        RandomLoss {
            prob: [fwd, rev],
            rngs: [
                rng::stream(master_seed, &format!("{label}.fwd")),
                rng::stream(master_seed, &format!("{label}.rev")),
            ],
            dropped: [0; 2],
            passed: [0; 2],
        }
    }
}

impl Device for RandomLoss {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2);
        if self.prob[dir] > 0.0 && self.rngs[dir].gen_bool(self.prob[dir]) {
            self.dropped[dir] += 1;
            return;
        }
        self.passed[dir] += 1;
        ctx.transmit(other(port), pkt);
    }

    fn name(&self) -> &str {
        "random-loss"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{rig, send_and_collect};
    use super::*;
    use std::time::Duration;

    #[test]
    fn zero_loss_is_transparent() {
        let (mut sim, src, _, _, tap) = rig(Box::new(RandomLoss::new(0.0, 0.0, 1, "l")), 1);
        let order = send_and_collect(&mut sim, src, &tap, 100, Duration::ZERO);
        assert_eq!(order.len(), 100);
    }

    #[test]
    fn total_loss_drops_everything() {
        let (mut sim, src, _, _, tap) = rig(Box::new(RandomLoss::new(1.0, 0.0, 1, "l")), 1);
        let order = send_and_collect(&mut sim, src, &tap, 50, Duration::ZERO);
        assert!(order.is_empty());
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let (mut sim, src, _, _, tap) = rig(Box::new(RandomLoss::new(0.2, 0.0, 77, "l")), 77);
        let order = send_and_collect(&mut sim, src, &tap, 5000, Duration::ZERO);
        let rate = 1.0 - order.len() as f64 / 5000.0;
        assert!((0.17..=0.23).contains(&rate), "loss rate {rate}");
        // Survivors keep their order.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }
}
