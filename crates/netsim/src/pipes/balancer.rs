//! Transparent load balancer — the adversary of the Dual Connection Test
//! (§III-C, Fig. 3) and the raison d'être of the SYN Test (§III-D).
//!
//! "Load balancers cannot operate on a per-packet basis, but instead
//! must balance requests per-flow or at larger granularities. [...] The
//! most common implementation strategy to ensure per-flow granularity is
//! to hash on the four-tuple."
//!
//! Port 0 faces the network; ports `1..=k` face the backend hosts. The
//! balancer is *transparent*: it does not rewrite addresses (all backends
//! are configured with the virtual IP), so the probe host cannot tell
//! which backend answered — except via IPID discontinuities, which is
//! exactly the artifact the paper's IPID validation detects.

use crate::engine::{Ctx, Device, Port};
use reorder_wire::Packet;

/// Flow-pinning policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceMode {
    /// Hash the TCP 4-tuple; every packet of a flow goes to the same
    /// backend. The common case the SYN Test relies on.
    PerFlow,
    /// Round-robin each packet — pathological, violates flow pinning;
    /// kept for failure-injection tests.
    PerPacket,
}

/// Transparent `k`-backend load balancer.
pub struct LoadBalancer {
    mode: BalanceMode,
    backends: usize,
    rr: usize,
    /// Observability: packets forwarded to each backend.
    pub per_backend: Vec<u64>,
}

impl LoadBalancer {
    /// New balancer with `backends` downstream ports (wired at ports
    /// `1..=backends`).
    pub fn new(mode: BalanceMode, backends: usize) -> Self {
        assert!(backends >= 1, "need at least one backend");
        LoadBalancer {
            mode,
            backends,
            rr: 0,
            per_backend: vec![0; backends],
        }
    }

    /// The backend port a flow would be pinned to (for test assertions).
    pub fn pin(&self, pkt: &Packet) -> usize {
        match pkt.flow() {
            Some(f) => (f.stable_hash() % self.backends as u64) as usize,
            // Non-TCP traffic (e.g. ICMP) hashes on addresses only.
            None => {
                (u64::from(pkt.ip.src.to_u32()) ^ u64::from(pkt.ip.dst.to_u32())) as usize
                    % self.backends
            }
        }
    }
}

impl Device for LoadBalancer {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        if port == Port(0) {
            // Upstream → pick a backend.
            let b = match self.mode {
                BalanceMode::PerFlow => self.pin(&pkt),
                BalanceMode::PerPacket => {
                    let b = self.rr % self.backends;
                    self.rr += 1;
                    b
                }
            };
            self.per_backend[b] += 1;
            ctx.transmit(Port(1 + b), pkt);
        } else {
            // Any backend → upstream.
            assert!(
                port.0 >= 1 && port.0 <= self.backends,
                "unexpected balancer port {port:?}"
            );
            ctx.transmit(Port(0), pkt);
        }
    }

    fn name(&self) -> &str {
        "load-balancer"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Blackhole;
    use super::*;
    use crate::engine::Simulator;
    use crate::link::LinkParams;
    use crate::time::SimTime;
    use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};

    fn pkt(src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(10, 0, 0, 1), src_port)
            .dst(Ipv4Addr4::new(10, 9, 9, 9), 80)
            .seq(1)
            .flags(TcpFlags::SYN)
            .build()
    }

    fn rig(
        mode: BalanceMode,
        k: usize,
    ) -> (
        Simulator,
        crate::engine::NodeId,
        Vec<crate::capture::TraceHandle>,
    ) {
        let mut sim = Simulator::new(0);
        let up = sim.add_node(Box::new(Blackhole));
        let lb = sim.add_node(Box::new(LoadBalancer::new(mode, k)));
        sim.connect(up, Port(0), lb, Port(0), LinkParams::lan());
        let mut taps = Vec::new();
        for b in 0..k {
            let backend = sim.add_node(Box::new(Blackhole));
            sim.connect(lb, Port(1 + b), backend, Port(0), LinkParams::lan());
            taps.push(sim.tap_rx(backend));
        }
        (sim, up, taps)
    }

    #[test]
    fn per_flow_pins_connections() {
        let (mut sim, up, taps) = rig(BalanceMode::PerFlow, 4);
        // Ten packets of the same flow: all land on one backend.
        for _ in 0..10 {
            sim.transmit_from(up, Port(0), pkt(5555));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        let counts: Vec<usize> = taps.iter().map(|t| t.borrow().len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn different_flows_spread() {
        let (mut sim, up, taps) = rig(BalanceMode::PerFlow, 4);
        for p in 0..200 {
            sim.transmit_from(up, Port(0), pkt(1000 + p));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        let nonempty = taps.iter().filter(|t| !t.borrow().is_empty()).count();
        assert!(nonempty >= 3, "200 flows should hit ≥3 of 4 backends");
    }

    #[test]
    fn per_packet_round_robins() {
        let (mut sim, up, taps) = rig(BalanceMode::PerPacket, 3);
        for _ in 0..9 {
            sim.transmit_from(up, Port(0), pkt(7777));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        for t in &taps {
            assert_eq!(t.borrow().len(), 3);
        }
    }

    #[test]
    fn identical_syn_pairs_share_backend() {
        // The SYN Test property: two SYNs identical except for their
        // starting sequence number hash to the same backend.
        let lb = LoadBalancer::new(BalanceMode::PerFlow, 8);
        let a = PacketBuilder::tcp()
            .src(Ipv4Addr4::new(1, 2, 3, 4), 4242)
            .dst(Ipv4Addr4::new(5, 6, 7, 8), 80)
            .seq(1000)
            .flags(TcpFlags::SYN)
            .build();
        let b = PacketBuilder::tcp()
            .src(Ipv4Addr4::new(1, 2, 3, 4), 4242)
            .dst(Ipv4Addr4::new(5, 6, 7, 8), 80)
            .seq(1001) // only the sequence number differs
            .flags(TcpFlags::SYN)
            .build();
        assert_eq!(lb.pin(&a), lb.pin(&b));
    }

    #[test]
    fn reverse_traffic_goes_upstream() {
        let mut sim = Simulator::new(0);
        let up = sim.add_node(Box::new(Blackhole));
        let lb = sim.add_node(Box::new(LoadBalancer::new(BalanceMode::PerFlow, 2)));
        let b0 = sim.add_node(Box::new(Blackhole));
        let b1 = sim.add_node(Box::new(Blackhole));
        sim.connect(up, Port(0), lb, Port(0), LinkParams::lan());
        sim.connect(lb, Port(1), b0, Port(0), LinkParams::lan());
        sim.connect(lb, Port(2), b1, Port(0), LinkParams::lan());
        let up_tap = sim.tap_rx(up);
        sim.transmit_from(b1, Port(0), pkt(1));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(up_tap.borrow().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_rejected() {
        LoadBalancer::new(BalanceMode::PerFlow, 0);
    }
}
