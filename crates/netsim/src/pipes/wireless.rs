//! Link-layer ARQ (wireless retransmission) — another §V reordering
//! cause ("layer 2 retransmission (particularly across wireless
//! links)").
//!
//! An 802.11-style link with per-frame loss and in-order *local*
//! retransmission would preserve order (the transmitter stalls), but
//! many deployed schemes keep the pipe full: when frame k is corrupted,
//! frames k+1… already in flight are delivered while k is retried.
//! The corrupted-and-retried frame therefore arrives *late* — a
//! reordering process whose signature is a fixed lateness (the retry
//! delay) rather than queue-imbalance decay. With `in_order_delivery`
//! the pipe instead models a stalling ARQ (no reordering, extra
//! latency), which is the ablation partner.

use super::other;
use super::token::TokenStore;
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::Packet;
use std::time::Duration;

/// Wireless ARQ link configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArqConfig {
    /// Per-transmission frame error probability.
    pub frame_error: f64,
    /// Delay before a corrupted frame's retransmission completes.
    pub retry_delay: Duration,
    /// Maximum retransmissions before the frame is dropped.
    pub max_retries: u32,
    /// If true, later frames wait for the retried frame (stalling ARQ:
    /// no reordering). If false, later frames overtake it (selective
    /// repeat without resequencing: reorders).
    pub in_order_delivery: bool,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            frame_error: 0.1,
            retry_delay: Duration::from_micros(300),
            max_retries: 4,
            in_order_delivery: false,
        }
    }
}

/// The ARQ pipe (two ports, symmetric config, independent directions).
pub struct WirelessArq {
    cfg: ArqConfig,
    rngs: [SmallRng; 2],
    /// In stalling mode: time each direction's transmitter frees up.
    release_floor: [crate::time::SimTime; 2],
    pending: TokenStore<(Port, Packet)>,
    /// Observability: retransmitted frames per direction.
    pub retries: [u64; 2],
    /// Observability: frames dropped after max retries.
    pub drops: [u64; 2],
}

impl WirelessArq {
    /// Build from config; randomness derives from the master seed.
    pub fn new(cfg: ArqConfig, master_seed: u64, label: &str) -> Self {
        assert!((0.0..1.0).contains(&cfg.frame_error), "error prob in [0,1)");
        WirelessArq {
            cfg,
            rngs: [
                rng::stream(master_seed, &format!("{label}.fwd")),
                rng::stream(master_seed, &format!("{label}.rev")),
            ],
            release_floor: [crate::time::SimTime::ZERO; 2],
            pending: TokenStore::new(),
            retries: [0; 2],
            drops: [0; 2],
        }
    }

    /// Draw the number of transmission attempts needed (1 = first try
    /// succeeded). `None` = dropped after `max_retries` retries.
    fn attempts(&mut self, dir: usize) -> Option<u32> {
        let mut tries = 1;
        while self.rngs[dir].gen_bool(self.cfg.frame_error) {
            if tries > self.cfg.max_retries {
                return None;
            }
            tries += 1;
        }
        Some(tries)
    }
}

impl Device for WirelessArq {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2, "ARQ pipe has two ports");
        let Some(tries) = self.attempts(dir) else {
            self.drops[dir] += 1;
            return;
        };
        if tries > 1 {
            self.retries[dir] += u64::from(tries - 1);
        }
        let extra = self.cfg.retry_delay * (tries - 1);
        let now = ctx.now();
        let deliver_at = if self.cfg.in_order_delivery {
            // Stalling ARQ: nothing may overtake the retried frame.
            let at = self.release_floor[dir].max(now) + extra;
            self.release_floor[dir] = at;
            at
        } else {
            now + extra
        };
        if deliver_at == now {
            ctx.transmit(other(port), pkt);
        } else {
            let token = self.pending.insert((other(port), pkt));
            ctx.set_timer(deliver_at.since(now), token);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((port, pkt)) = self.pending.remove(token) {
            ctx.transmit(port, pkt);
        }
    }

    fn name(&self) -> &str {
        "wireless-arq"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{rig, send_and_collect};
    use super::*;

    #[test]
    fn error_free_link_is_transparent() {
        let cfg = ArqConfig {
            frame_error: 0.0,
            ..Default::default()
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(WirelessArq::new(cfg, 1, "w")), 1);
        let order = send_and_collect(&mut sim, src, &tap, 60, Duration::ZERO);
        assert_eq!(order, (0..60).collect::<Vec<u32>>());
    }

    #[test]
    fn selective_repeat_reorders_retried_frames() {
        let cfg = ArqConfig {
            frame_error: 0.3,
            in_order_delivery: false,
            ..Default::default()
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(WirelessArq::new(cfg, 7, "w")), 7);
        let order = send_and_collect(&mut sim, src, &tap, 300, Duration::from_micros(20));
        assert_eq!(order.len(), 300, "no drops expected at these retry limits");
        let late = reorder_how_many(&order);
        assert!(late > 20, "retried frames must arrive late ({late})");
    }

    #[test]
    fn stalling_arq_preserves_order() {
        let cfg = ArqConfig {
            frame_error: 0.3,
            in_order_delivery: true,
            ..Default::default()
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(WirelessArq::new(cfg, 7, "w")), 7);
        let order = send_and_collect(&mut sim, src, &tap, 300, Duration::from_micros(20));
        assert_eq!(order.len(), 300);
        assert_eq!(reorder_how_many(&order), 0, "stalling ARQ must not reorder");
    }

    #[test]
    fn hopeless_frames_dropped() {
        let cfg = ArqConfig {
            frame_error: 0.9,
            max_retries: 1,
            ..Default::default()
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(WirelessArq::new(cfg, 9, "w")), 9);
        let order = send_and_collect(&mut sim, src, &tap, 200, Duration::ZERO);
        assert!(
            order.len() < 120,
            "most frames should drop ({} arrived)",
            order.len()
        );
    }

    #[test]
    fn gap_beyond_retry_delay_cannot_reorder() {
        let cfg = ArqConfig {
            frame_error: 0.3,
            retry_delay: Duration::from_micros(300),
            max_retries: 1, // lateness bounded by one retry
            in_order_delivery: false,
        };
        let (mut sim, src, _, _, tap) = rig(Box::new(WirelessArq::new(cfg, 11, "w")), 11);
        // 400 us gap > 300 us max lateness: survivors stay ordered.
        let order = send_and_collect(&mut sim, src, &tap, 100, Duration::from_micros(400));
        assert_eq!(reorder_how_many(&order), 0);
    }

    fn reorder_how_many(order: &[u32]) -> usize {
        let mut max = 0u32;
        let mut late = 0;
        for &s in order {
            if s < max {
                late += 1;
            } else {
                max = s;
            }
        }
        late
    }
}
