//! Per-packet striping across parallel L2 links — the physical source of
//! time-dependent reordering identified in §IV-C.
//!
//! "Many vendors continue to implement such striping on a per-packet
//! basis and consequently, if a newer packet is placed on a link with a
//! longer queue than an older packet, then reordering may occur. Since
//! queues drain at a constant rate, the likelihood that this occurs is
//! related to the inter-arrival time between the two packets."
//!
//! The pipe models N parallel links, each a FIFO queue draining at a
//! fixed rate, with background cross-traffic arriving as a Poisson
//! process of exponentially sized bursts (an M/G/1 workload per queue).
//! Probe packets are assigned round-robin (worst-case per-packet
//! striping), so two back-to-back probes land on different queues and
//! are exchanged whenever the queue-depth imbalance exceeds their
//! inter-arrival gap — reproducing the Fig. 7 decay from first
//! principles.
//!
//! ## Two backlog models
//!
//! How a probe's queue backlog is produced is selected by
//! [`CrossTrafficModel`] (see [`super::stationary`] for the theory):
//!
//! * **`Replay` (campaign v1)** — [`Self::lazy_update`] replays every
//!   Poisson burst since the queue's last update, an exact workload
//!   recursion `V(t) = max(V(s) − (t−s), 0) + arrivals`. Burst
//!   correlation across arrivals is preserved exactly, at ~2λ·window
//!   RNG draws per update (~2,700 per capped 100 ms window at backbone
//!   rates — the v1 campaign hot-path wall).
//! * **`Stationary` (campaign v2, default)** — one inverse-transform
//!   draw from the stationary Pollaczek–Khinchine workload per
//!   arrival: an atom `P(V=0) = 1−ρ` plus an exponential tail. O(1)
//!   per arrival, independent across arrivals.
//!
//! The models share the stability contract ([`CrossTraffic`]
//! utilization < 0.95, asserted in [`StripingLink::new`]) and the same
//! stationary backlog law — the tests below bound the KS distance
//! between the replay's empirical backlog distribution and the
//! stationary sampler's, and between the two models' pair-reorder
//! decay curves. Their RNG streams differ, so swapping models is a
//! declared output break (the survey's `--sim-version` switch).

use super::other;
use super::stationary::{CrossTrafficModel, StationarySampler};
use super::token::TokenStore;
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use crate::time::{serialization_delay, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::Packet;
use std::time::Duration;

/// Background cross-traffic injected into each striped queue.
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Poisson arrival rate of bursts, per queue, in bursts/second.
    pub bursts_per_sec: f64,
    /// Mean burst size in bytes (exponentially distributed).
    pub mean_burst_bytes: f64,
}

impl CrossTraffic {
    /// A moderately loaded backbone: enough imbalance that back-to-back
    /// minimum-size packets reorder ~10% of the time on a 2-way stripe at
    /// 1 Gbit/s (tuned for the Fig. 7 reproduction).
    pub fn backbone() -> Self {
        CrossTraffic {
            bursts_per_sec: 9_000.0,
            mean_burst_bytes: 2_000.0,
        }
    }

    /// Offered load per queue as a fraction of `bits_per_sec`.
    pub fn utilization(&self, bits_per_sec: u64) -> f64 {
        self.bursts_per_sec * self.mean_burst_bytes * 8.0 / bits_per_sec as f64
    }
}

struct DirState {
    /// Per-queue time at which the queue drains empty.
    busy_until: Vec<SimTime>,
    /// Last lazy-update instant per queue.
    updated_at: Vec<SimTime>,
    /// Round-robin assignment counter for probe packets.
    rr: usize,
    rng: SmallRng,
    /// Reused arrival-offset scratch for the workload replay (the
    /// window is ≤ 100 ms < 2³² ns, so offsets fit in `u32`).
    scratch: Vec<u32>,
    /// Radix-sort double buffer.
    scratch_aux: Vec<u32>,
}

/// Byte-wise LSD radix sort for the arrival offsets — ~4x faster than
/// the comparison sort at the replay's typical batch sizes (hundreds),
/// and the only piece of the replay that isn't forced by the RNG
/// stream. Falls back to `sort_unstable` for small batches.
fn radix_sort_u32(v: &mut [u32], aux: &mut Vec<u32>) {
    if v.len() < 64 {
        v.sort_unstable();
        return;
    }
    aux.clear();
    aux.resize(v.len(), 0);
    let mut in_v = true;
    for shift in [0u32, 8, 16, 24] {
        let (src, dst): (&[u32], &mut [u32]) = if in_v { (v, aux) } else { (aux, v) };
        let mut counts = [0u32; 256];
        for &x in src {
            counts[((x >> shift) & 0xff) as usize] += 1;
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let t = *c;
            *c = sum;
            sum += t;
        }
        for &x in src {
            let b = ((x >> shift) & 0xff) as usize;
            dst[counts[b] as usize] = x;
            counts[b] += 1;
        }
        in_v = !in_v;
    }
    // Four passes: the sorted result ends back in `v`.
}

/// N-way per-packet striping pipe with Poisson cross-traffic.
pub struct StripingLink {
    n: usize,
    bits_per_sec: u64,
    /// Exact ns-per-byte multiplier (see `link::exact_ns_per_byte`),
    /// used on the per-arrival replay path.
    ns_per_byte: Option<u64>,
    cross: Option<CrossTraffic>,
    /// The O(1) stationary sampler; `Some` iff cross traffic is on and
    /// the model is [`CrossTrafficModel::Stationary`].
    sampler: Option<StationarySampler>,
    /// Cross-traffic arrivals older than this are ignored during lazy
    /// updates (the stationary backlog is orders of magnitude shorter).
    max_window: Duration,
    dirs: [DirState; 2],
    pending: TokenStore<(Port, Packet)>,
    /// Observability: probes that found a nonzero queue.
    pub queued_probes: u64,
}

impl StripingLink {
    /// Build an `n`-way stripe of `bits_per_sec` links whose
    /// cross-traffic backlog is produced by `model`.
    pub fn new(
        n: usize,
        bits_per_sec: u64,
        cross: Option<CrossTraffic>,
        model: CrossTrafficModel,
        master_seed: u64,
        label: &str,
    ) -> Self {
        assert!(n >= 1, "need at least one striped link");
        assert!(bits_per_sec > 0);
        if let Some(c) = cross {
            // The stability contract is model-independent: both the
            // replay recursion and the stationary draw describe the
            // same offered load, and neither admits ρ → 1.
            let util = c.utilization(bits_per_sec);
            assert!(
                util < 0.95,
                "cross traffic utilization {util:.2} would make queues unstable"
            );
        }
        let sampler = match (cross, model) {
            (Some(c), CrossTrafficModel::Stationary) => {
                Some(StationarySampler::new(c, bits_per_sec))
            }
            _ => None,
        };
        let mk = |tag: &str| DirState {
            busy_until: vec![SimTime::ZERO; n],
            updated_at: vec![SimTime::ZERO; n],
            rr: 0,
            rng: rng::stream(master_seed, &format!("{label}.{tag}")),
            scratch: Vec::new(),
            scratch_aux: Vec::new(),
        };
        StripingLink {
            n,
            ns_per_byte: crate::link::exact_ns_per_byte(bits_per_sec),
            bits_per_sec,
            cross,
            sampler,
            max_window: Duration::from_millis(100),
            dirs: [mk("fwd"), mk("rev")],
            pending: TokenStore::new(),
            queued_probes: 0,
        }
    }

    /// Largest rate Knuth's method samples exactly: `exp(-lambda)`
    /// must stay a *normal* `f64` (underflow begins at λ ≈ 708.4;
    /// by λ ≈ 744.4 it is exactly 0.0 and the historical loop
    /// terminated when its running product underflowed instead — a
    /// silent bias toward k ≈ 744 whatever the true rate). Backbone
    /// cross traffic reaches λ = 900 on a capped 100 ms window, so the
    /// overload branch below is live, not theoretical.
    const KNUTH_MAX_LAMBDA: f64 = 708.0;

    /// Sample a Poisson count. Knuth's method (exact) for rates up to
    /// [`Self::KNUTH_MAX_LAMBDA`]; beyond that a normal approximation
    /// `k = max(0, round(λ + √λ·z))` — at λ > 708 the relative error
    /// of the Gaussian limit is far below the equivalence tolerances
    /// this module tests, while the historical underflow path was
    /// biased low by ~17% at λ = 900.
    fn poisson(rng: &mut SmallRng, lambda: f64) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > Self::KNUTH_MAX_LAMBDA {
            // Box–Muller from two uniforms; u1 strictly positive so
            // ln(u1) is finite.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            return (lambda + lambda.sqrt() * z).round().max(0.0) as u32;
        }
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                // With λ ≤ KNUTH_MAX_LAMBDA the probability of reaching
                // here is below 2^-1000: loud in debug, and the release
                // fallback can no longer be silently hit by overload.
                debug_assert!(
                    false,
                    "Knuth poisson ran away at lambda {lambda} (bound {})",
                    Self::KNUTH_MAX_LAMBDA
                );
                return k;
            }
        }
    }

    /// Exponential burst size.
    fn exp_bytes(rng: &mut SmallRng, mean: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() * mean
    }

    /// Bring queue `q`'s workload up to date by replaying the Poisson
    /// cross-traffic that arrived since the last update (exact M/G/1
    /// workload recursion: V(t) = max(V(s) - (t-s), 0) + arrivals).
    fn lazy_update(&mut self, dir: usize, q: usize, now: SimTime) {
        let Some(cross) = self.cross else {
            return;
        };
        let st = &mut self.dirs[dir];
        let mut since = st.updated_at[q];
        if now.since(since) > self.max_window {
            since = SimTime::from_nanos(now.as_nanos() - self.max_window.as_nanos() as u64);
            // Anything before the window has drained (stationary backlog
            // ≪ window at the utilizations we allow).
            if st.busy_until[q] < since {
                st.busy_until[q] = since;
            }
        }
        let window = now.since(since);
        if window.is_zero() {
            st.updated_at[q] = now;
            return;
        }
        let lambda = cross.bursts_per_sec * window.as_secs_f64();
        let k = Self::poisson(&mut st.rng, lambda);
        if k > 0 {
            // Arrival instants, uniform in the window, processed in
            // order. Each `gen_range` draw is identical to the
            // historical `u64` form (same single `next_u64`, same
            // modulus); sorting `u32` offsets by radix produces the
            // same arrival sequence (equal instants commute in the
            // workload recursion below), and the scratch buffers make
            // the replay allocation-free.
            let window_ns = window.as_nanos().max(1) as u64;
            let mut times = std::mem::take(&mut st.scratch);
            times.clear();
            times.extend((0..k).map(|_| st.rng.gen_range(0..window_ns) as u32));
            radix_sort_u32(&mut times, &mut st.scratch_aux);
            let since_ns = since.as_nanos();
            for &off in &times {
                let at = SimTime::from_nanos(since_ns + u64::from(off));
                let bytes = Self::exp_bytes(&mut st.rng, cross.mean_burst_bytes);
                let work = crate::link::ser_delay_cached(
                    self.ns_per_byte,
                    bytes as usize + 1,
                    self.bits_per_sec,
                );
                st.busy_until[q] = st.busy_until[q].max(at) + work;
            }
            st.scratch = times;
        }
        st.updated_at[q] = now;
    }

    /// Bring queue `q`'s backlog up to the probe's arrival instant
    /// under the configured [`CrossTrafficModel`].
    ///
    /// The stationary path draws the cross-traffic workload `V` seen
    /// by this arrival and *lifts* the queue's busy horizon to
    /// `now + V` when the horizon isn't already later. Probe
    /// serialization left over from earlier arrivals (40-byte probes:
    /// ~0.3 µs against a ~19 µs backlog tail) and not-yet-drained
    /// previous draws keep their effect through the max, so same-queue
    /// FIFO ordering is preserved without double-counting backlog that
    /// the new draw already represents.
    fn advance(&mut self, dir: usize, q: usize, now: SimTime) {
        match self.sampler {
            Some(sampler) => {
                let st = &mut self.dirs[dir];
                let busy = now + Duration::from_nanos(sampler.sample_ns(&mut st.rng));
                if busy > st.busy_until[q] {
                    st.busy_until[q] = busy;
                }
            }
            None => self.lazy_update(dir, q, now),
        }
    }
}

impl Device for StripingLink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2, "striping pipe has two external ports");
        let now = ctx.now();
        // Choose the queue per-packet round-robin, then update its
        // cross-traffic workload to the present.
        let q = {
            let st = &mut self.dirs[dir];
            let q = st.rr % self.n;
            st.rr += 1;
            q
        };
        self.advance(dir, q, now);
        let st = &mut self.dirs[dir];
        let start = st.busy_until[q].max(now);
        if start > now {
            self.queued_probes += 1;
        }
        let depart = start + serialization_delay(pkt.wire_len(), self.bits_per_sec);
        st.busy_until[q] = depart;
        let token = self.pending.insert((other(port), pkt));
        ctx.set_timer(depart.since(now), token);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((port, pkt)) = self.pending.remove(token) {
            ctx.transmit(port, pkt);
        }
    }

    fn name(&self) -> &str {
        "striping-link"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{probe, rig, send_and_collect};
    use super::*;
    use proptest::prelude::*;

    const MODELS: [CrossTrafficModel; 2] =
        [CrossTrafficModel::Replay, CrossTrafficModel::Stationary];

    #[test]
    fn single_link_no_cross_traffic_is_fifo() {
        for model in MODELS {
            let pipe = StripingLink::new(1, 1_000_000_000, None, model, 1, "s");
            let (mut sim, src, _, _, tap) = rig(Box::new(pipe), 1);
            let order = send_and_collect(&mut sim, src, &tap, 100, Duration::ZERO);
            assert_eq!(order, (0..100).collect::<Vec<u32>>(), "{}", model.label());
        }
    }

    #[test]
    fn idle_multilink_preserves_order() {
        // With no cross traffic all queues are empty, so round-robin
        // assignment cannot reorder equal-size packets.
        for model in MODELS {
            let pipe = StripingLink::new(4, 1_000_000_000, None, model, 1, "s");
            let (mut sim, src, _, _, tap) = rig(Box::new(pipe), 1);
            let order = send_and_collect(&mut sim, src, &tap, 50, Duration::ZERO);
            assert_eq!(order, (0..50).collect::<Vec<u32>>(), "{}", model.label());
        }
    }

    /// Measures reordering probability of a back-to-back pair at a given
    /// gap by running many independent pair trials through one pipe.
    fn pair_reorder_rate(model: CrossTrafficModel, gap: Duration, trials: usize, seed: u64) -> f64 {
        let pipe = StripingLink::new(
            2,
            1_000_000_000,
            Some(CrossTraffic::backbone()),
            model,
            seed,
            "s",
        );
        let (mut sim, src, _, _, tap) = rig(Box::new(pipe), seed);
        let mut reordered = 0;
        for t in 0..trials {
            crate::capture::Trace::reset(&tap);
            sim.transmit_from(src, Port(0), probe((2 * t) as u16));
            sim.run_for(gap);
            sim.transmit_from(src, Port(0), probe((2 * t + 1) as u16));
            sim.run_for(Duration::from_millis(20));
            let order: Vec<u32> = tap
                .borrow()
                .iter()
                .map(|r| r.pkt.tcp().unwrap().seq.raw())
                .collect();
            assert_eq!(order.len(), 2, "striping must not lose packets");
            if order[0] > order[1] {
                reordered += 1;
            }
        }
        reordered as f64 / trials as f64
    }

    #[test]
    fn reordering_decays_with_gap() {
        for model in MODELS {
            let p0 = pair_reorder_rate(model, Duration::ZERO, 400, 11);
            let p50 = pair_reorder_rate(model, Duration::from_micros(50), 400, 12);
            let p250 = pair_reorder_rate(model, Duration::from_micros(250), 400, 13);
            let m = model.label();
            assert!(p0 > 0.02, "{m}: back-to-back pairs should reorder ({p0})");
            assert!(p0 > p50, "{m}: rate must decay with gap ({p0} vs {p50})");
            assert!(
                p50 >= p250,
                "{m}: rate must keep decaying ({p50} vs {p250})"
            );
            assert!(
                p250 < 0.03,
                "{m}: large gaps should rarely reorder ({p250})"
            );
        }
    }

    /// The tentpole's statistical-equivalence contract: swapping the
    /// replay for the stationary draw preserves the §IV-C decay curve.
    /// KS-style distance (the max absolute rate difference over the gap
    /// sweep, matched seeds per gap) stays within the two-sample noise
    /// band at 500 trials/point.
    #[test]
    fn decay_curves_agree_between_models() {
        let trials = 500;
        let mut max_diff = 0.0f64;
        for (i, gap_us) in [0u64, 25, 50, 100, 150, 250].into_iter().enumerate() {
            let gap = Duration::from_micros(gap_us);
            let seed = 900 + i as u64;
            let v1 = pair_reorder_rate(CrossTrafficModel::Replay, gap, trials, seed);
            let v2 = pair_reorder_rate(CrossTrafficModel::Stationary, gap, trials, seed);
            max_diff = max_diff.max((v1 - v2).abs());
        }
        // Two-sample binomial noise at n=500 and p~0.1 is ~2.6% at
        // 95%; 0.05 leaves headroom without letting the curves drift.
        assert!(
            max_diff < 0.05,
            "decay curves disagree: max |v1 - v2| = {max_diff}"
        );
    }

    /// Empirical two-sample KS statistic over `u64` samples.
    fn ks_distance(mut a: Vec<u64>, mut b: Vec<u64>) -> f64 {
        assert!(!a.is_empty() && !b.is_empty());
        a.sort_unstable();
        b.sort_unstable();
        let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
        while i < a.len() && j < b.len() {
            let x = a[i].min(b[j]);
            while i < a.len() && a[i] <= x {
                i += 1;
            }
            while j < b.len() && b[j] <= x {
                j += 1;
            }
            let diff = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
            d = d.max(diff);
        }
        d
    }

    /// Replay a queue's workload recursion at fixed sampling instants
    /// and record the backlog each instant sees (no probe work is
    /// enqueued, so this is the pure cross-traffic workload process).
    fn replay_backlogs(
        cross: CrossTraffic,
        samples: usize,
        spacing: Duration,
        seed: u64,
    ) -> Vec<u64> {
        let mut pipe = StripingLink::new(
            1,
            1_000_000_000,
            Some(cross),
            CrossTrafficModel::Replay,
            seed,
            "ks",
        );
        let burn_in = 64;
        let mut out = Vec::with_capacity(samples);
        let mut now = SimTime::ZERO;
        for i in 0..samples + burn_in {
            now += spacing;
            pipe.lazy_update(0, 0, now);
            if i >= burn_in {
                out.push(pipe.dirs[0].busy_until[0].since(now).as_nanos() as u64);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The satellite property: across cross-traffic parameters (at
        /// matched utilization, by construction — both models consume
        /// the same [`CrossTraffic`]), the stationary sampler's backlog
        /// distribution matches the replay's empirical one within a KS
        /// bound. Sampling instants are spaced several relaxation times
        /// apart so the replay's samples are near-independent.
        #[test]
        fn stationary_backlog_matches_replay_empirically(
            bursts_k in 3u64..10,
            burst_bytes in 800u64..3200,
            seed in 0u64..1000,
        ) {
            let cross = CrossTraffic {
                bursts_per_sec: bursts_k as f64 * 1000.0,
                mean_burst_bytes: burst_bytes as f64,
            };
            prop_assume!(cross.utilization(1_000_000_000) < 0.9);
            let n = 3000;
            let replay = replay_backlogs(cross, n, Duration::from_micros(400), seed);
            let sampler = StationarySampler::new(cross, 1_000_000_000);
            let mut rng = rng::stream(seed, "ks.stationary");
            let stationary: Vec<u64> = (0..n).map(|_| sampler.sample_ns(&mut rng)).collect();
            let d = ks_distance(replay, stationary);
            // Two-sample KS 99.9% critical value at n=m=3000 is
            // ~0.050; 0.07 adds headroom for the residual sample
            // correlation of the replay path.
            prop_assert!(d < 0.07, "KS distance {d} for {cross:?}");
        }
    }

    #[test]
    fn cross_traffic_utilization_sanity() {
        let c = CrossTraffic::backbone();
        let u = c.utilization(1_000_000_000);
        assert!(u > 0.05 && u < 0.6, "tuned utilization {u} out of band");
        // The stability contract is shared: the stationary sampler's
        // busy probability is the same utilization number the replay's
        // 0.95 constructor assert checks.
        let s = StationarySampler::new(c, 1_000_000_000);
        assert_eq!(s.rho(), u);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overloaded_cross_traffic() {
        StripingLink::new(
            2,
            1_000_000,
            Some(CrossTraffic {
                bursts_per_sec: 1000.0,
                mean_burst_bytes: 10_000.0,
            }),
            CrossTrafficModel::Replay,
            0,
            "s",
        );
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overloaded_cross_traffic_stationary() {
        // Same 0.95 stability assert, model-independent.
        StripingLink::new(
            2,
            1_000_000,
            Some(CrossTraffic {
                bursts_per_sec: 1000.0,
                mean_burst_bytes: 10_000.0,
            }),
            CrossTrafficModel::Stationary,
            0,
            "s",
        );
    }

    #[test]
    fn determinism() {
        for model in MODELS {
            let run = |seed| {
                let pipe = StripingLink::new(
                    2,
                    1_000_000_000,
                    Some(CrossTraffic::backbone()),
                    model,
                    seed,
                    "s",
                );
                let (mut sim, src, _, _, tap) = rig(Box::new(pipe), seed);
                send_and_collect(&mut sim, src, &tap, 64, Duration::from_micros(5))
            };
            assert_eq!(run(21), run(21), "{}", model.label());
        }
    }

    #[test]
    fn poisson_small_rates_are_knuth_exact_and_unbiased() {
        let mut r = rng::stream(5, "poisson.small");
        let lambda = 20.0;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| f64::from(StripingLink::poisson(&mut r, lambda)))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.2, "Knuth branch biased: {mean}");
    }

    #[test]
    fn poisson_overload_branch_is_unbiased() {
        // λ = 900 is the backbone's capped-window rate. exp(-900)
        // underflows to 0.0, so the historical Knuth loop terminated
        // when its product underflowed — around k ≈ 744 regardless of
        // λ. The normal-approximation branch restores the mean.
        let lambda = 900.0;
        assert!(lambda > StripingLink::KNUTH_MAX_LAMBDA);
        assert_eq!((-lambda).exp(), 0.0, "premise: termination underflows");
        let mut r = rng::stream(5, "poisson.overload");
        let n = 20_000;
        let mean = (0..n)
            .map(|_| f64::from(StripingLink::poisson(&mut r, lambda)))
            .sum::<f64>()
            / n as f64;
        // Standard error is √λ/√n ≈ 0.21; the historical bias was -156.
        assert!(
            (mean - lambda).abs() < 1.0,
            "overload branch biased: mean {mean}, want ~{lambda}"
        );
    }

    #[test]
    fn large_packets_reorder_less_than_small() {
        // §IV-C: serialization delay spreads leading edges; with equal
        // leading-edge spacing, bigger packets take longer to serialize
        // and thus effectively see a larger gap at the stripe.
        for model in MODELS {
            let rate_small = pair_reorder_rate(model, Duration::ZERO, 500, 31);
            // Same experiment with 1500-byte packets.
            let pipe = StripingLink::new(
                2,
                1_000_000_000,
                Some(CrossTraffic::backbone()),
                model,
                32,
                "s",
            );
            let (mut sim, src, _, _, tap) = rig(Box::new(pipe), 32);
            let mut reordered = 0;
            let trials = 500;
            for t in 0..trials {
                crate::capture::Trace::reset(&tap);
                let mk = |n: u16| {
                    reorder_wire::PacketBuilder::tcp()
                        .src(reorder_wire::Ipv4Addr4::new(10, 0, 0, 1), 1000)
                        .dst(reorder_wire::Ipv4Addr4::new(10, 0, 0, 2), 80)
                        .seq(u32::from(n))
                        .flags(reorder_wire::TcpFlags::ACK)
                        .pad_to(1500)
                        .build()
                };
                sim.transmit_from(src, Port(0), mk(2 * t));
                // Leading edges separated by the 1500B serialization time at
                // the ingress link rate — i.e. sent back-to-back.
                sim.run_for(serialization_delay(1500, 1_000_000_000));
                sim.transmit_from(src, Port(0), mk(2 * t + 1));
                sim.run_for(Duration::from_millis(20));
                let order: Vec<u32> = tap
                    .borrow()
                    .iter()
                    .map(|r| r.pkt.tcp().unwrap().seq.raw())
                    .collect();
                // Divide by `trials` below, so every trial must yield a
                // verdict — a lost pair would silently deflate the rate.
                assert_eq!(order.len(), 2, "striping must not lose packets");
                if order[0] > order[1] {
                    reordered += 1;
                }
            }
            let rate_big = reordered as f64 / trials as f64;
            assert!(
                rate_big < rate_small,
                "{}: 1500B rate {rate_big} should be below 40B rate {rate_small}",
                model.label()
            );
        }
    }
}
