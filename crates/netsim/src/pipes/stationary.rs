//! O(1) stationary cross-traffic workload sampler for the striping
//! pipe — campaign format v2.
//!
//! The replay model in [`super::striping`] reconstructs every Poisson
//! cross-traffic burst since a queue's last update (an exact M/G/1
//! workload recursion, ~2λ RNG draws per replayed window). But the
//! §IV-C mechanism only needs the queue backlog *at the instant a
//! probe arrives* — "queues drain at a constant rate", so whether two
//! probes exchange depends on the depth imbalance they sample, not on
//! the arrival history that produced it. By PASTA, a Poisson-fed
//! queue's backlog at an arrival instant is distributed as the
//! stationary workload, which for exponential burst sizes has the
//! Pollaczek–Khinchine closed form
//!
//! ```text
//! P(V = 0)  = 1 − ρ                      (the idle atom)
//! P(V > x)  = ρ · exp(−η x),  η = (1 − ρ) / E[S]
//! ```
//!
//! where `ρ` is the offered utilization and `E[S]` the mean burst
//! service time. (An M/G/1 queue with exponential service *is* M/M/1
//! in workload, so the form is exact, not an approximation; the same
//! stationary-workload view underlies the re-sequencing-delay analysis
//! of Mohammadpour & Le Boudec and the O(1)-state data-plane sketches
//! of Zheng et al.) One inverse-transform draw therefore replaces the
//! whole replay:
//!
//! ```text
//! u ~ U(0,1);   V = 0           if u ≥ ρ
//!               V = ln(ρ/u)/η   otherwise
//! ```
//!
//! The draw is O(1) per probe arrival regardless of how long the queue
//! sat idle — the replay's capped-window worst case (~2,700 pinned
//! draws per 100 ms window at the backbone rates) disappears. The cost
//! is a *declared output break*: the RNG stream differs from the
//! replay's, so campaigns select the model through
//! [`CrossTrafficModel`] (survey `--sim-version`), and the replay
//! remains available for byte-compatibility with v1 reports.

use super::striping::CrossTraffic;
use rand::rngs::SmallRng;
use rand::Rng;

/// Which cross-traffic backlog model a [`super::StripingLink`] runs.
///
/// Both models describe the *same* M/G/1 queues (identical offered
/// load, identical stationary law — asserted by the striping module's
/// equivalence tests); they differ in how the backlog seen by a probe
/// is produced, and therefore in their RNG streams and cost:
///
/// * [`Replay`](CrossTrafficModel::Replay) — campaign v1: lazily
///   replay every Poisson burst since the queue's last update. Exact
///   sample paths (bursts persist across arrivals), O(λ·window) draws
///   per arrival.
/// * [`Stationary`](CrossTrafficModel::Stationary) — campaign v2: draw
///   the backlog directly from the stationary workload distribution.
///   O(1) draws per arrival; successive backlogs are independent
///   (which is also what the replay converges to once arrivals are
///   separated by more than the ~1/η relaxation time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossTrafficModel {
    /// Per-arrival Poisson burst replay (campaign v1).
    Replay,
    /// Stationary Pollaczek–Khinchine workload draw (campaign v2, the
    /// default).
    #[default]
    Stationary,
}

impl CrossTrafficModel {
    /// Short label for reports and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            CrossTrafficModel::Replay => "replay",
            CrossTrafficModel::Stationary => "stationary",
        }
    }
}

/// Precomputed stationary-workload sampler for one striped queue
/// configuration (all queues of a stripe share it — they are i.i.d.).
#[derive(Debug, Clone, Copy)]
pub struct StationarySampler {
    /// Offered utilization ρ = λ·E[S] (also the busy probability).
    rho: f64,
    /// ln ρ, precomputed for the inverse transform (`f64::NEG_INFINITY`
    /// when ρ = 0, in which case the tail branch is unreachable).
    ln_rho: f64,
    /// Mean of the exponential tail, 1/η = E[S]/(1−ρ), in nanoseconds.
    tail_mean_ns: f64,
}

impl StationarySampler {
    /// Build the sampler for `cross` traffic feeding queues that drain
    /// at `bits_per_sec`.
    ///
    /// # Panics
    ///
    /// When the offered utilization is ≥ 1 (no stationary distribution
    /// exists); [`super::StripingLink::new`] already rejects ≥ 0.95 for
    /// either model.
    pub fn new(cross: CrossTraffic, bits_per_sec: u64) -> Self {
        let rho = cross.utilization(bits_per_sec);
        assert!(
            (0.0..1.0).contains(&rho),
            "utilization {rho} admits no stationary workload"
        );
        // Mean burst service time in ns. The replay serializes
        // `floor(B) + 1` bytes for an Exp(mean) draw B — the +1 is a
        // sub-permille shift at backbone burst sizes, absorbed by the
        // equivalence tolerance.
        let mean_service_ns = cross.mean_burst_bytes * 8e9 / bits_per_sec as f64;
        StationarySampler {
            rho,
            ln_rho: rho.ln(),
            tail_mean_ns: mean_service_ns / (1.0 - rho),
        }
    }

    /// The busy probability ρ (equals
    /// [`CrossTraffic::utilization`] — the stability contract is shared
    /// between models).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Mean of the nonzero-backlog tail, nanoseconds (1/η) — the
    /// e-folding gap of the §IV-C reordering decay.
    pub fn tail_mean_ns(&self) -> f64 {
        self.tail_mean_ns
    }

    /// Draw a stationary backlog, in nanoseconds. Exactly one `f64`
    /// draw from `rng` per call, whatever the outcome.
    pub fn sample_ns(&self, rng: &mut SmallRng) -> u64 {
        // Strictly positive u keeps ln(u) finite; the resulting V is
        // bounded by (745 + ln ρ)·tail_mean — microseconds-scale here,
        // far below SimTime's range.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u >= self.rho {
            return 0;
        }
        ((self.ln_rho - u.ln()) * self.tail_mean_ns) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn backbone_sampler() -> StationarySampler {
        StationarySampler::new(CrossTraffic::backbone(), 1_000_000_000)
    }

    #[test]
    fn rho_matches_utilization() {
        let c = CrossTraffic::backbone();
        let s = StationarySampler::new(c, 1_000_000_000);
        assert_eq!(s.rho(), c.utilization(1_000_000_000));
    }

    #[test]
    fn atom_and_tail_match_closed_form() {
        let s = backbone_sampler();
        let mut r = rng::stream(7, "pk");
        let n = 200_000;
        let mut zeros = 0u64;
        let mut sum = 0.0f64;
        let mut above_tail_mean = 0u64;
        for _ in 0..n {
            let v = s.sample_ns(&mut r) as f64;
            if v == 0.0 {
                zeros += 1;
            } else {
                if v > s.tail_mean_ns() {
                    above_tail_mean += 1;
                }
                sum += v;
            }
        }
        let busy = 1.0 - zeros as f64 / n as f64;
        assert!(
            (busy - s.rho()).abs() < 0.01,
            "busy probability {busy} vs rho {}",
            s.rho()
        );
        // Conditional tail is Exp(1/tail_mean): its mean and its
        // e^-1 survival both identify the distribution scale.
        let nonzero = n - zeros;
        let cond_mean = sum / nonzero as f64;
        assert!(
            (cond_mean / s.tail_mean_ns() - 1.0).abs() < 0.05,
            "conditional mean {cond_mean} vs {}",
            s.tail_mean_ns()
        );
        let surv = above_tail_mean as f64 / nonzero as f64;
        assert!(
            (surv - (-1.0f64).exp()).abs() < 0.02,
            "P(V > tail_mean | V > 0) = {surv}, want ~e^-1"
        );
    }

    #[test]
    fn one_draw_per_sample() {
        // The O(1) guarantee, stated as an RNG-stream property: k
        // samples advance the stream by exactly k draws.
        let s = backbone_sampler();
        let mut a = rng::stream(3, "x");
        let mut b = rng::stream(3, "x");
        for _ in 0..100 {
            let _ = s.sample_ns(&mut a);
            let _: f64 = b.gen_range(f64::MIN_POSITIVE..1.0);
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "streams must stay in step");
    }

    #[test]
    fn zero_rate_traffic_never_queues() {
        let s = StationarySampler::new(
            CrossTraffic {
                bursts_per_sec: 0.0,
                mean_burst_bytes: 2_000.0,
            },
            1_000_000_000,
        );
        let mut r = rng::stream(1, "idle");
        assert_eq!(s.rho(), 0.0);
        for _ in 0..64 {
            assert_eq!(s.sample_ns(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no stationary workload")]
    fn overload_rejected() {
        StationarySampler::new(
            CrossTraffic {
                bursts_per_sec: 70_000.0,
                mean_burst_bytes: 2_000.0,
            },
            1_000_000_000,
        );
    }

    #[test]
    fn model_labels() {
        assert_eq!(CrossTrafficModel::Replay.label(), "replay");
        assert_eq!(CrossTrafficModel::Stationary.label(), "stationary");
        assert_eq!(CrossTrafficModel::default(), CrossTrafficModel::Stationary);
    }
}
