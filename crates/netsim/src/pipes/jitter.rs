//! Random per-packet extra delay. Large jitter relative to packet
//! spacing is itself a reordering process (delay-based, as opposed to the
//! queue-imbalance mechanism of the striping pipe), so this pipe doubles
//! as a second reordering model for cross-validation.

use super::other;
use super::token::TokenStore;
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::Packet;
use std::time::Duration;

/// Adds a uniform random delay in `[min, max]` to each packet,
/// independently per direction.
pub struct DelayJitter {
    min: Duration,
    max: Duration,
    rngs: [SmallRng; 2],
    pending: TokenStore<(Port, Packet)>,
}

impl DelayJitter {
    /// Uniform extra delay in `[min, max]` for both directions.
    pub fn new(min: Duration, max: Duration, master_seed: u64, label: &str) -> Self {
        assert!(min <= max, "min delay must not exceed max");
        DelayJitter {
            min,
            max,
            rngs: [
                rng::stream(master_seed, &format!("{label}.fwd")),
                rng::stream(master_seed, &format!("{label}.rev")),
            ],
            pending: TokenStore::new(),
        }
    }
}

impl Device for DelayJitter {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2);
        let extra = if self.max > self.min {
            let span = (self.max - self.min).as_nanos() as u64;
            self.min + Duration::from_nanos(self.rngs[dir].gen_range(0..=span))
        } else {
            self.min
        };
        let token = self.pending.insert((other(port), pkt));
        ctx.set_timer(extra, token);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((port, pkt)) = self.pending.remove(token) {
            ctx.transmit(port, pkt);
        }
    }

    fn name(&self) -> &str {
        "delay-jitter"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{rig, send_and_collect};
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn constant_delay_preserves_order() {
        let d = Duration::from_millis(2);
        let (mut sim, src, _, _, tap) = rig(Box::new(DelayJitter::new(d, d, 1, "j")), 1);
        let order = send_and_collect(&mut sim, src, &tap, 50, Duration::ZERO);
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn constant_delay_shifts_arrival() {
        let d = Duration::from_millis(3);
        let (mut sim, src, _, _, tap) = rig(Box::new(DelayJitter::new(d, d, 1, "j")), 1);
        sim.transmit_from(src, Port(0), super::super::testutil::probe(0));
        sim.run_until_idle(SimTime::from_secs(1));
        let t = tap.borrow()[0].time;
        assert!(t >= SimTime::from_millis(3));
        assert!(t < SimTime::from_millis(4));
    }

    #[test]
    fn wide_jitter_reorders_close_packets() {
        let (mut sim, src, _, _, tap) = rig(
            Box::new(DelayJitter::new(
                Duration::ZERO,
                Duration::from_millis(5),
                9,
                "j",
            )),
            9,
        );
        let order = send_and_collect(&mut sim, src, &tap, 200, Duration::from_micros(10));
        assert_eq!(order.len(), 200, "jitter must not lose packets");
        let inversions = order.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 20, "wide jitter should reorder ({inversions})");
    }

    #[test]
    #[should_panic(expected = "min delay must not exceed max")]
    fn bad_range_rejected() {
        DelayJitter::new(Duration::from_millis(2), Duration::from_millis(1), 0, "j");
    }
}
