//! Transparent two-port forwarder — the identity pipe, useful as a
//! monitoring point and as the no-op arm of A/B scenarios.

use super::other;
use crate::engine::{Ctx, Device, Port};
use reorder_wire::Packet;

/// Forwards everything between ports 0 and 1 unchanged.
#[derive(Debug, Default)]
pub struct Forwarder {
    /// Packets forwarded (observability).
    pub forwarded: u64,
}

impl Forwarder {
    /// New transparent forwarder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Device for Forwarder {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        self.forwarded += 1;
        ctx.transmit(other(port), pkt);
    }

    fn name(&self) -> &str {
        "forwarder"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{rig, send_and_collect};
    use super::*;
    use std::time::Duration;

    #[test]
    fn preserves_order_and_content() {
        let (mut sim, src, _, _, tap) = rig(Box::new(Forwarder::new()), 1);
        let order = send_and_collect(&mut sim, src, &tap, 50, Duration::ZERO);
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn preserves_order_with_gaps() {
        let (mut sim, src, _, _, tap) = rig(Box::new(Forwarder::new()), 1);
        let order = send_and_collect(&mut sim, src, &tap, 10, Duration::from_micros(3));
        assert_eq!(order, (0..10).collect::<Vec<u32>>());
    }
}
