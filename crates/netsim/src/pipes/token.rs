//! [`TokenStore`]: the in-flight parcel table shared by the delaying
//! pipes (jitter, striping, multipath, wireless ARQ).
//!
//! Every such pipe hands a packet to the engine's timer machinery and
//! needs it back when the timer fires, keyed by a monotonically
//! allocated token. A `HashMap<u64, _>` hashes on both sides of every
//! packet; this store exploits the monotone tokens instead — a ring of
//! slots offset by the oldest live token — so insert and remove are
//! plain index arithmetic. Removal order is arbitrary (jitter and ARQ
//! retries complete out of order); drained front slots advance the
//! base, keeping memory bounded by the in-flight window.

use std::collections::VecDeque;

/// O(1) token-indexed store for in-flight items.
pub(crate) struct TokenStore<T> {
    base: u64,
    slots: VecDeque<Option<T>>,
}

impl<T> TokenStore<T> {
    pub fn new() -> Self {
        TokenStore {
            base: 0,
            slots: VecDeque::new(),
        }
    }

    /// Store `item`, returning its token (monotonically increasing).
    pub fn insert(&mut self, item: T) -> u64 {
        let token = self.base + self.slots.len() as u64;
        self.slots.push_back(Some(item));
        token
    }

    /// Remove and return the item for `token`, if still present.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let idx = token.checked_sub(self.base)? as usize;
        let item = self.slots.get_mut(idx)?.take();
        // Advance the base over drained front slots so the ring stays
        // as short as the in-flight window.
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_out_of_order_removal() {
        let mut s = TokenStore::new();
        let a = s.insert("a");
        let b = s.insert("b");
        let c = s.insert("c");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(s.remove(b), Some("b"));
        assert_eq!(s.remove(b), None, "double remove");
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.slots.len(), 1, "front drained after a+b removed");
        assert_eq!(s.remove(c), Some("c"));
        assert!(s.slots.is_empty());
        let d = s.insert("d");
        assert_eq!(d, 3, "tokens never repeat");
        assert_eq!(s.remove(99), None);
        assert_eq!(s.remove(0), None, "stale token below base");
    }
}
