//! Multi-path routing — one of the reordering causes §V names
//! ("Packets may be reordered for many reasons, including ... multi-path
//! routing").
//!
//! Two (or more) routes with different one-way delays carry traffic
//! between the same endpoints. Per-flow splitting never reorders a
//! flow; per-packet splitting reorders any pair whose inter-arrival gap
//! is smaller than the delay difference of the routes they take —
//! producing a *step-shaped* gap profile (contrast with the striping
//! pipe's smooth exponential decay), which makes the two mechanisms
//! distinguishable by the paper's time-domain measurement.

use super::other;
use super::token::TokenStore;
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::Packet;
use std::time::Duration;

/// How packets are assigned to routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMode {
    /// Hash the flow 4-tuple: a flow sticks to one route (safe).
    PerFlow,
    /// Round-robin every packet (reorders; the §V hazard).
    PerPacket,
    /// Uniform random route per packet (hash-spraying hardware whose
    /// input includes fields that vary per packet).
    Random,
}

/// A set of parallel routes with distinct one-way delays. The pipe is
/// symmetric: both directions use the same route delays.
pub struct MultipathRoute {
    mode: SplitMode,
    delays: Vec<Duration>,
    rr: [usize; 2],
    rngs: [SmallRng; 2],
    pending: TokenStore<(Port, Packet)>,
    /// Observability: packets per route.
    pub per_route: Vec<u64>,
}

impl MultipathRoute {
    /// Build with one delay per route (≥ 1 route). `master_seed` feeds
    /// the `Random` split mode; the other modes ignore it.
    pub fn new(mode: SplitMode, delays: Vec<Duration>) -> Self {
        Self::with_seed(mode, delays, 0, "multipath")
    }

    /// [`MultipathRoute::new`] with an explicit random stream.
    pub fn with_seed(
        mode: SplitMode,
        delays: Vec<Duration>,
        master_seed: u64,
        label: &str,
    ) -> Self {
        assert!(!delays.is_empty(), "need at least one route");
        let n = delays.len();
        MultipathRoute {
            mode,
            delays,
            rr: [0; 2],
            rngs: [
                rng::stream(master_seed, &format!("{label}.fwd")),
                rng::stream(master_seed, &format!("{label}.rev")),
            ],
            pending: TokenStore::new(),
            per_route: vec![0; n],
        }
    }

    /// Largest pairwise delay difference — the gap beyond which
    /// per-packet splitting can no longer reorder.
    pub fn max_skew(&self) -> Duration {
        let min = self.delays.iter().min().copied().unwrap_or_default();
        let max = self.delays.iter().max().copied().unwrap_or_default();
        max - min
    }

    fn route_for(&mut self, dir: usize, pkt: &Packet) -> usize {
        match self.mode {
            SplitMode::PerFlow => match pkt.flow() {
                Some(f) => {
                    // Hash direction-insensitively so both directions of
                    // a flow take the same route, like ECMP on a
                    // symmetric topology.
                    let mut key = [f, f.reversed()];
                    key.sort();
                    (key[0].stable_hash() % self.delays.len() as u64) as usize
                }
                None => 0,
            },
            SplitMode::PerPacket => {
                let r = self.rr[dir] % self.delays.len();
                self.rr[dir] += 1;
                r
            }
            SplitMode::Random => self.rngs[dir].gen_range(0..self.delays.len()),
        }
    }
}

impl Device for MultipathRoute {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2, "multipath pipe has two external ports");
        let r = self.route_for(dir, &pkt);
        self.per_route[r] += 1;
        let token = self.pending.insert((other(port), pkt));
        ctx.set_timer(self.delays[r], token);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((port, pkt)) = self.pending.remove(token) {
            ctx.transmit(port, pkt);
        }
    }

    fn name(&self) -> &str {
        "multipath-route"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{probe, rig, send_and_collect};
    use super::*;
    use crate::time::SimTime;

    fn two_routes(mode: SplitMode) -> MultipathRoute {
        MultipathRoute::new(
            mode,
            vec![Duration::from_micros(100), Duration::from_micros(180)],
        )
    }

    #[test]
    fn per_flow_never_reorders() {
        let (mut sim, src, _, _, tap) = rig(Box::new(two_routes(SplitMode::PerFlow)), 1);
        let order = send_and_collect(&mut sim, src, &tap, 50, Duration::ZERO);
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn per_packet_reorders_close_pairs() {
        // Routes differ by 80 us; back-to-back pairs land on different
        // routes, so every odd/even pair is exchanged.
        let (mut sim, src, _, _, tap) = rig(Box::new(two_routes(SplitMode::PerPacket)), 1);
        sim.transmit_from(src, Port(0), probe(0)); // route 0: 100 us
        sim.transmit_from(src, Port(0), probe(1)); // route 1: 180 us
        sim.run_until_idle(SimTime::from_secs(1));
        let order: Vec<u32> = tap
            .borrow()
            .iter()
            .map(|r| r.pkt.tcp().unwrap().seq.raw())
            .collect();
        assert_eq!(order, vec![0, 1], "first on the fast route: in order");

        // Now reversed assignment: send so the *first* packet takes the
        // slow route.
        crate::capture::Trace::reset(&tap);
        sim.transmit_from(src, Port(0), probe(2)); // rr continues: route 0
        sim.transmit_from(src, Port(0), probe(3)); // route 1
        sim.transmit_from(src, Port(0), probe(4)); // route 0 — but 3 is slow
        sim.run_until_idle(SimTime::from_secs(1));
        let order: Vec<u32> = tap
            .borrow()
            .iter()
            .map(|r| r.pkt.tcp().unwrap().seq.raw())
            .collect();
        // 2 (fast) then 4 (fast, sent after 3) then 3 (slow): 3 and 4
        // exchanged.
        assert_eq!(order, vec![2, 4, 3]);
    }

    #[test]
    fn gap_beyond_skew_cannot_reorder() {
        let (mut sim, src, _, _, tap) = rig(Box::new(two_routes(SplitMode::PerPacket)), 1);
        // 100 us gap > 80 us skew: order always preserved.
        let order = send_and_collect(&mut sim, src, &tap, 20, Duration::from_micros(100));
        assert_eq!(order, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn gap_below_skew_reorders_every_crossing_pair() {
        let (mut sim, src, _, _, tap) = rig(Box::new(two_routes(SplitMode::PerPacket)), 1);
        // 10 us gap << 80 us skew: every slow→fast adjacent pair swaps.
        let order = send_and_collect(&mut sim, src, &tap, 20, Duration::from_micros(10));
        // Count late arrivals (non-reversing-order rule): every slow-route
        // packet overtaken by later fast-route packets counts once.
        let mut max = 0u32;
        let mut late = 0;
        for &s in &order {
            if s < max {
                late += 1;
            } else {
                max = s;
            }
        }
        assert!(late >= 5, "expected many late packets, got {late}");
    }

    #[test]
    fn max_skew_reported() {
        assert_eq!(
            two_routes(SplitMode::PerPacket).max_skew(),
            Duration::from_micros(80)
        );
    }

    #[test]
    #[should_panic(expected = "at least one route")]
    fn empty_routes_rejected() {
        MultipathRoute::new(SplitMode::PerFlow, vec![]);
    }

    #[test]
    fn random_mode_reorders_about_a_quarter_of_close_pairs() {
        // P(first slow, second fast) = 1/4 with two equal-probability
        // routes; only that assignment reorders a close pair.
        let pipe = MultipathRoute::with_seed(
            SplitMode::Random,
            vec![Duration::from_micros(100), Duration::from_micros(180)],
            5,
            "m",
        );
        let (mut sim, src, _, _, tap) = rig(Box::new(pipe), 5);
        let mut reordered = 0;
        let trials = 400;
        for t in 0..trials {
            crate::capture::Trace::reset(&tap);
            sim.transmit_from(src, Port(0), probe((2 * t) as u16));
            sim.transmit_from(src, Port(0), probe((2 * t + 1) as u16));
            sim.run_for(Duration::from_millis(1));
            let order: Vec<u32> = tap
                .borrow()
                .iter()
                .map(|r| r.pkt.tcp().unwrap().seq.raw())
                .collect();
            assert_eq!(order.len(), 2);
            if order[0] > order[1] {
                reordered += 1;
            }
        }
        let rate = reordered as f64 / trials as f64;
        assert!((0.17..=0.33).contains(&rate), "rate {rate} not ≈ 0.25");
    }
}
