//! Hostile-host fault injection — the uncooperative tail of a real
//! survey population (§IV: firewalled, rate-limited, or dead hosts).
//!
//! A [`FaultGate`] sits directly in front of a host and applies one
//! [`FaultClass`]: silently dropping traffic (blackhole), answering
//! connection attempts with RST (reject), delaying everything
//! pathologically (tarpit), going dark after N delivered packets
//! (mid-measurement death), or dropping i.i.d. at a heavy rate. Like
//! every pipe it is seeded and deterministic, so a hostile population
//! is exactly reproducible.

use super::token::TokenStore;
use super::{other, UP};
use crate::engine::{Ctx, Device, Port};
use crate::rng;
use rand::rngs::SmallRng;
use rand::Rng;
use reorder_wire::{Packet, PacketBuilder, TcpFlags};
use std::time::Duration;

/// One way a host can be hostile to the survey. Composable with any
/// personality/mechanism: the gate perturbs the wire, not the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultClass {
    /// Every packet toward the host is silently dropped (firewall
    /// DROP): connection attempts time out.
    Blackhole,
    /// Connection attempts are answered with RST (firewall REJECT);
    /// everything else toward the host is dropped.
    RstReject,
    /// Traffic passes, but only after a pathological extra delay in
    /// each direction — longer than any reply timeout, so every
    /// exchange times out while the path technically "works".
    Tarpit {
        /// Extra one-way delay added to every packet.
        delay: Duration,
    },
    /// The host behaves normally until it has received `packets`
    /// packets, then goes dark in both directions (mid-measurement
    /// death).
    DeadAfter {
        /// Packets delivered toward the host before it dies.
        packets: u64,
    },
    /// Independent random loss at a rate heavy enough to starve
    /// measurements, in both directions.
    HeavyLoss {
        /// Per-packet drop probability.
        rate: f64,
    },
}

impl FaultClass {
    /// Short label for reports and breakdowns.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Blackhole => "blackhole",
            FaultClass::RstReject => "rst-reject",
            FaultClass::Tarpit { .. } => "tarpit",
            FaultClass::DeadAfter { .. } => "dead-after",
            FaultClass::HeavyLoss { .. } => "heavy-loss",
        }
    }
}

/// The in-path device applying one [`FaultClass`]. Port [`UP`] faces
/// the prober, [`super::DOWN`] the host; packets arriving on `UP` are
/// headed toward the host.
pub struct FaultGate {
    fault: FaultClass,
    rngs: [SmallRng; 2],
    /// Packets delivered toward the host so far (drives `DeadAfter`).
    delivered: u64,
    pending: TokenStore<(Port, Packet)>,
    /// Observability: dropped packet counts per direction.
    pub dropped: [u64; 2],
    /// Observability: RSTs crafted for rejected connection attempts.
    pub rejected: u64,
}

impl FaultGate {
    /// Gate applying `fault`, seeded from the scenario's master seed
    /// (only `HeavyLoss` draws randomness; the other classes are
    /// trivially deterministic).
    pub fn new(fault: FaultClass, master_seed: u64, label: &str) -> Self {
        if let FaultClass::HeavyLoss { rate } = fault {
            assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0, 1]");
        }
        FaultGate {
            fault,
            rngs: [
                rng::stream(master_seed, &format!("{label}.fwd")),
                rng::stream(master_seed, &format!("{label}.rev")),
            ],
            delivered: 0,
            pending: TokenStore::new(),
            dropped: [0; 2],
            rejected: 0,
        }
    }

    /// Craft the RST|ACK a rejecting firewall answers `pkt` with:
    /// source and destination swapped, sequence space taken from the
    /// offending segment exactly like a real stack's reset.
    fn rst_for(pkt: &Packet) -> Option<Packet> {
        let tcp = pkt.tcp()?;
        if tcp.flags.contains(TcpFlags::RST) {
            return None; // never RST a RST
        }
        let data_len = pkt.tcp_data().map(|d| d.len() as u32).unwrap_or(0);
        let seq = if tcp.flags.contains(TcpFlags::ACK) {
            tcp.ack
        } else {
            reorder_wire::SeqNum(0)
        };
        let ack = tcp.seq + data_len + u32::from(tcp.flags.contains(TcpFlags::SYN));
        Some(
            PacketBuilder::tcp()
                .src(pkt.ip.dst, tcp.dst_port)
                .dst(pkt.ip.src, tcp.src_port)
                .seq(seq)
                .ack(ack)
                .flags(TcpFlags::RST | TcpFlags::ACK)
                .window(0)
                .build(),
        )
    }
}

impl Device for FaultGate {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2);
        match self.fault {
            FaultClass::Blackhole => self.dropped[dir] += 1,
            FaultClass::RstReject => {
                if port == UP {
                    if let Some(rst) = Self::rst_for(&pkt) {
                        self.rejected += 1;
                        ctx.transmit(UP, rst);
                    }
                    self.dropped[dir] += 1;
                } else {
                    // Nothing establishes behind a rejecting firewall,
                    // but any stray host traffic passes untouched.
                    ctx.transmit(other(port), pkt);
                }
            }
            FaultClass::Tarpit { delay } => {
                let token = self.pending.insert((other(port), pkt));
                ctx.set_timer(delay, token);
            }
            FaultClass::DeadAfter { packets } => {
                if self.delivered >= packets {
                    self.dropped[dir] += 1;
                    return;
                }
                if port == UP {
                    self.delivered += 1;
                }
                ctx.transmit(other(port), pkt);
            }
            FaultClass::HeavyLoss { rate } => {
                if rate > 0.0 && self.rngs[dir].gen_bool(rate) {
                    self.dropped[dir] += 1;
                    return;
                }
                ctx.transmit(other(port), pkt);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((port, pkt)) = self.pending.remove(token) {
            ctx.transmit(port, pkt);
        }
    }

    fn name(&self) -> &str {
        "fault-gate"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{probe, rig, send_and_collect};
    use super::*;
    use crate::time::SimTime;
    use reorder_wire::{Ipv4Addr4, SeqNum};

    fn syn(n: u16) -> Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(10, 0, 0, 1), 1000 + n)
            .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
            .seq(u32::from(n))
            .flags(TcpFlags::SYN)
            .ipid(n)
            .build()
    }

    #[test]
    fn blackhole_swallows_everything() {
        let (mut sim, src, _, _, tap) = rig(
            Box::new(FaultGate::new(FaultClass::Blackhole, 1, "fault")),
            1,
        );
        let order = send_and_collect(&mut sim, src, &tap, 50, Duration::ZERO);
        assert!(order.is_empty(), "blackhole must deliver nothing");
    }

    #[test]
    fn rst_reject_answers_syn_with_rst() {
        let (mut sim, src, _, _, dst_tap) = rig(
            Box::new(FaultGate::new(FaultClass::RstReject, 1, "fault")),
            1,
        );
        let src_tap = sim.tap_rx(src);
        sim.transmit_from(src, Port(0), syn(7));
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(dst_tap.borrow().is_empty(), "SYN must not reach the host");
        let replies = src_tap.borrow();
        assert_eq!(replies.len(), 1, "exactly one RST back to the prober");
        let tcp = replies[0].pkt.tcp().unwrap();
        assert!(tcp.flags.contains(TcpFlags::RST | TcpFlags::ACK));
        assert_eq!(tcp.ack, SeqNum(8), "RST acks SYN+1");
        assert_eq!(tcp.src_port, 80, "reply comes 'from' the host");
    }

    #[test]
    fn tarpit_delays_but_delivers() {
        let delay = Duration::from_secs(30);
        let (mut sim, src, _, _, tap) = rig(
            Box::new(FaultGate::new(FaultClass::Tarpit { delay }, 1, "fault")),
            1,
        );
        sim.transmit_from(src, Port(0), probe(0));
        sim.run_until_idle(SimTime::from_secs(60));
        let arrivals = tap.borrow();
        assert_eq!(arrivals.len(), 1, "tarpit delays, never drops");
        assert!(arrivals[0].time >= SimTime::from_secs(30));
    }

    #[test]
    fn dead_after_forwards_then_goes_dark() {
        let (mut sim, src, _, _, tap) = rig(
            Box::new(FaultGate::new(
                FaultClass::DeadAfter { packets: 3 },
                1,
                "fault",
            )),
            1,
        );
        let order = send_and_collect(&mut sim, src, &tap, 10, Duration::ZERO);
        assert_eq!(order, vec![0, 1, 2], "exactly the first N survive");
    }

    #[test]
    fn heavy_loss_tracks_rate_deterministically() {
        let run = || {
            let (mut sim, src, _, _, tap) = rig(
                Box::new(FaultGate::new(
                    FaultClass::HeavyLoss { rate: 0.4 },
                    9,
                    "fault",
                )),
                9,
            );
            send_and_collect(&mut sim, src, &tap, 2000, Duration::ZERO)
        };
        let a = run();
        let rate = 1.0 - a.len() as f64 / 2000.0;
        assert!((0.35..=0.45).contains(&rate), "loss rate {rate}");
        assert_eq!(a, run(), "seeded loss is reproducible");
    }

    #[test]
    fn labels_are_stable() {
        for (fault, label) in [
            (FaultClass::Blackhole, "blackhole"),
            (FaultClass::RstReject, "rst-reject"),
            (
                FaultClass::Tarpit {
                    delay: Duration::from_secs(60),
                },
                "tarpit",
            ),
            (FaultClass::DeadAfter { packets: 8 }, "dead-after"),
            (FaultClass::HeavyLoss { rate: 0.5 }, "heavy-loss"),
        ] {
            assert_eq!(fault.label(), label);
        }
    }
}
