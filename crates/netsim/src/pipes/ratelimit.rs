//! Token-bucket policer. Models the ICMP rate-limiting that §II notes
//! "system and network operators alike increasingly" apply — one of the
//! reasons the Bennett et al. ICMP methodology is unreliable — and can
//! also police TCP probes to exercise the tests' loss handling.

use super::other;
use crate::engine::{Ctx, Device, Port};
use crate::time::SimTime;
use reorder_wire::{Packet, Protocol};
use std::time::Duration;

/// Which packets the policer applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoliceClass {
    /// Police everything.
    All,
    /// Police only ICMP (the common real-world configuration).
    IcmpOnly,
}

/// Token bucket: `capacity` tokens, refilled to full every `interval`.
/// Non-conforming packets are dropped.
pub struct RateLimiter {
    class: PoliceClass,
    capacity: u32,
    interval: Duration,
    tokens: [u32; 2],
    last_refill: [SimTime; 2],
    /// Observability: drops per direction.
    pub dropped: [u64; 2],
}

impl RateLimiter {
    /// New policer applying per direction independently.
    pub fn new(class: PoliceClass, capacity: u32, interval: Duration) -> Self {
        assert!(capacity > 0, "zero-capacity bucket blocks everything");
        assert!(!interval.is_zero(), "refill interval must be positive");
        RateLimiter {
            class,
            capacity,
            interval,
            tokens: [capacity; 2],
            last_refill: [SimTime::ZERO; 2],
            dropped: [0; 2],
        }
    }

    fn refill(&mut self, dir: usize, now: SimTime) {
        let elapsed = now.since(self.last_refill[dir]);
        if elapsed >= self.interval {
            self.tokens[dir] = self.capacity;
            self.last_refill[dir] = now;
        }
    }

    fn applies(&self, pkt: &Packet) -> bool {
        match self.class {
            PoliceClass::All => true,
            PoliceClass::IcmpOnly => pkt.ip.protocol == Protocol::Icmp,
        }
    }
}

impl Device for RateLimiter {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let dir = port.0;
        assert!(dir < 2);
        if !self.applies(&pkt) {
            ctx.transmit(other(port), pkt);
            return;
        }
        self.refill(dir, ctx.now());
        if self.tokens[dir] == 0 {
            self.dropped[dir] += 1;
            return;
        }
        self.tokens[dir] -= 1;
        ctx.transmit(other(port), pkt);
    }

    fn name(&self) -> &str {
        "rate-limiter"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{probe, rig};
    use super::*;
    use reorder_wire::{Ipv4Addr4, PacketBuilder};

    fn icmp(n: u16) -> Packet {
        PacketBuilder::icmp_echo(1, n)
            .src(Ipv4Addr4::new(10, 0, 0, 1), 0)
            .dst(Ipv4Addr4::new(10, 0, 0, 2), 0)
            .build()
    }

    #[test]
    fn burst_beyond_capacity_is_clipped() {
        let (mut sim, src, _, _, tap) = rig(
            Box::new(RateLimiter::new(
                PoliceClass::All,
                5,
                Duration::from_millis(100),
            )),
            1,
        );
        for i in 0..20u16 {
            sim.transmit_from(src, Port(0), probe(i));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(tap.borrow().len(), 5);
    }

    #[test]
    fn bucket_refills_after_interval() {
        let (mut sim, src, _, _, tap) = rig(
            Box::new(RateLimiter::new(
                PoliceClass::All,
                2,
                Duration::from_millis(10),
            )),
            1,
        );
        for i in 0..4u16 {
            sim.transmit_from(src, Port(0), probe(i));
        }
        sim.run_for(Duration::from_millis(20));
        for i in 4..8u16 {
            sim.transmit_from(src, Port(0), probe(i));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(tap.borrow().len(), 4); // 2 per burst
    }

    #[test]
    fn icmp_only_class_passes_tcp() {
        let (mut sim, src, _, _, tap) = rig(
            Box::new(RateLimiter::new(
                PoliceClass::IcmpOnly,
                1,
                Duration::from_secs(1),
            )),
            1,
        );
        for i in 0..5u16 {
            sim.transmit_from(src, Port(0), probe(i)); // TCP: unpoliced
            sim.transmit_from(src, Port(0), icmp(i)); // ICMP: policed to 1
        }
        sim.run_until_idle(SimTime::from_secs(2));
        let (tcp, icmp): (Vec<_>, Vec<_>) = tap
            .borrow()
            .iter()
            .cloned()
            .partition(|r| r.pkt.tcp().is_some());
        assert_eq!(tcp.len(), 5);
        assert_eq!(icmp.len(), 1);
    }
}
