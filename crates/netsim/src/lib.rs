//! # reorder-netsim
//!
//! A deterministic discrete-event network simulator — the substrate on
//! which the measurement techniques of *Measuring Packet Reordering*
//! (Bellardo & Savage, IMC 2002) are reproduced.
//!
//! The authors validated their tools against a FreeBSD router running a
//! modified dummynet and then probed live Internet hosts. This crate
//! supplies simulated equivalents of both environments:
//!
//! * an event engine with nanosecond resolution and strict determinism
//!   ([`Simulator`], [`Device`], [`SimTime`]),
//! * point-to-point links with bandwidth-derived serialization delay and
//!   propagation delay ([`LinkParams`]) — serialization delay is the
//!   mechanism behind the paper's §IV-C time-domain observations,
//! * in-path pipes: the modified-dummynet adjacent-swap reorderer, a
//!   per-packet striping link with Poisson cross traffic (the physical
//!   reordering model of §IV-C), a transparent per-flow load balancer
//!   (the Dual Connection Test's nemesis), random loss, jitter, and a
//!   token-bucket policer ([`pipes`]),
//! * capture taps providing the ground-truth traces of §IV-A
//!   ([`capture`]),
//! * a [`Mailbox`] endpoint that lets measurement code outside the event
//!   loop inject and collect raw packets, playing the role of the
//!   paper's packet-filter-based user-level probing (sting).
//!
//! Everything stochastic draws from labeled RNG streams derived from one
//! master seed ([`rng`]), so every experiment is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
pub mod capture;
pub mod engine;
pub mod link;
pub mod mailbox;
pub mod pcap;
pub mod pipes;
pub mod rng;
pub mod time;

pub use capture::{Dir, Trace, TraceHandle, TraceRecord};
pub use engine::{Ctx, Device, NodeId, Port, Simulator};
pub use link::{LinkParams, LinkState, Offer};
pub use mailbox::{drain, Mailbox, MailboxQueue, RxPacket};
pub use time::{serialization_delay, SimTime};
