//! The discrete-event engine: nodes, ports, links, timers, taps.
//!
//! Determinism is a hard requirement — every experiment in the paper is
//! reproduced from a seed — so the event queue breaks time ties by
//! insertion order, devices draw randomness only from labeled streams
//! (see [`crate::rng`]), and nothing reads the host clock.

use crate::capture::{Dir, TraceHandle, TraceRecord};
use crate::link::{LinkParams, LinkState, Offer};
use crate::time::SimTime;
use reorder_wire::Packet;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::time::Duration;

/// Identifies a node (device) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A port index local to a node. Devices define their own port
/// conventions (e.g. a pipe forwards port 0 ↔ port 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub usize);

/// The behavior of a simulated node.
///
/// Devices are purely reactive: they are invoked for packet deliveries
/// and timer expirations, and respond by calling methods on [`Ctx`].
pub trait Device {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Diagnostic name.
    fn name(&self) -> &str {
        "device"
    }
}

/// What a device may do while handling an event.
#[derive(Debug)]
enum Action {
    Transmit { port: Port, pkt: Packet },
    SetTimer { delay: Duration, token: u64 },
}

/// Execution context handed to a device during event handling.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action>,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node being invoked (useful for diagnostics).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue a packet for transmission out of `port`. Serialization and
    /// propagation delays of the attached link apply; transmissions
    /// issued within one event handler keep their issue order.
    pub fn transmit(&mut self, port: Port, pkt: Packet) {
        self.actions.push(Action::Transmit { port, pkt });
    }

    /// Arrange for [`Device::on_timer`] to be called `delay` from now
    /// with `token`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        node: NodeId,
        port: Port,
        pkt: Packet,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulator: owns every device, link and pending event.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    master_seed: u64,
    nodes: Vec<Option<Box<dyn Device>>>,
    names: Vec<String>,
    links: HashMap<(NodeId, Port), LinkEndpoint>,
    heap: BinaryHeap<Reverse<Event>>,
    rx_taps: HashMap<NodeId, Vec<TraceHandle>>,
    tx_taps: HashMap<NodeId, Vec<TraceHandle>>,
    scratch: Vec<Action>,
    /// Count of packets dropped by full link queues (all links).
    pub link_drops: u64,
}

struct LinkEndpoint {
    peer: (NodeId, Port),
    state: LinkState,
}

impl Simulator {
    /// Create a simulator whose stochastic devices will derive their
    /// random streams from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            master_seed,
            nodes: Vec::new(),
            names: Vec::new(),
            links: HashMap::new(),
            heap: BinaryHeap::new(),
            rx_taps: HashMap::new(),
            tx_taps: HashMap::new(),
            scratch: Vec::new(),
            link_drops: 0,
        }
    }

    /// The master seed (devices use it with [`crate::rng::stream`]).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a device; returns its id.
    pub fn add_node(&mut self, device: Box<dyn Device>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.names.push(device.name().to_string());
        self.nodes.push(Some(device));
        id
    }

    /// Diagnostic name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Connect `a`'s port `pa` to `b`'s port `pb` with symmetric link
    /// parameters. Panics if either port is already wired.
    pub fn connect(&mut self, a: NodeId, pa: Port, b: NodeId, pb: Port, params: LinkParams) {
        self.connect_asym(a, pa, b, pb, params, params);
    }

    /// Connect with distinct parameters per direction (`ab` applies to
    /// packets from `a` to `b`).
    pub fn connect_asym(
        &mut self,
        a: NodeId,
        pa: Port,
        b: NodeId,
        pb: Port,
        ab: LinkParams,
        ba: LinkParams,
    ) {
        let prev = self.links.insert(
            (a, pa),
            LinkEndpoint {
                peer: (b, pb),
                state: LinkState::new(ab),
            },
        );
        assert!(prev.is_none(), "port {pa:?} of node {a:?} already wired");
        let prev = self.links.insert(
            (b, pb),
            LinkEndpoint {
                peer: (a, pa),
                state: LinkState::new(ba),
            },
        );
        assert!(prev.is_none(), "port {pb:?} of node {b:?} already wired");
    }

    /// Record every packet *delivered to* `node` (any port) into the
    /// returned trace. This is the receive-order ground truth of §IV-A.
    pub fn tap_rx(&mut self, node: NodeId) -> TraceHandle {
        let h: TraceHandle = Rc::new(RefCell::new(Vec::new()));
        self.rx_taps.entry(node).or_default().push(h.clone());
        h
    }

    /// Record every packet *transmitted by* `node` (any port), stamped
    /// with the time the transmission was issued. This is the send-order
    /// ground truth used to validate reverse-path inferences.
    pub fn tap_tx(&mut self, node: NodeId) -> TraceHandle {
        let h: TraceHandle = Rc::new(RefCell::new(Vec::new()));
        self.tx_taps.entry(node).or_default().push(h.clone());
        h
    }

    /// Inject a packet as if `node` had transmitted it out of `port` at
    /// the current time. Used by external agents (the prober) that drive
    /// the simulation from outside the event loop.
    pub fn transmit_from(&mut self, node: NodeId, port: Port, pkt: Packet) {
        self.record_tx(node, port, &pkt);
        self.do_transmit(node, port, pkt);
    }

    /// Schedule a timer for `node` (external-agent counterpart of
    /// [`Ctx::set_timer`]).
    pub fn schedule_timer(&mut self, node: NodeId, delay: Duration, token: u64) {
        let time = self.now + delay;
        self.push(time, EventKind::Timer { node, token });
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Run until the queue is empty or the next event lies beyond
    /// `horizon`; the clock then advances to `horizon` (so repeated calls
    /// make steady progress even with no traffic).
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.time > horizon {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.dispatch(ev.kind);
        }
        if horizon > self.now && horizon != SimTime::MAX {
            self.now = horizon;
        }
    }

    /// Run for `d` from the current time.
    pub fn run_for(&mut self, d: Duration) {
        let horizon = self.now + d;
        self.run_until(horizon);
    }

    /// Run until no events remain (the network is quiet). `limit` bounds
    /// runaway simulations; panics if exceeded, since that indicates a
    /// device generating unbounded traffic.
    pub fn run_until_idle(&mut self, limit: SimTime) {
        while let Some(t) = self.next_event_time() {
            assert!(t <= limit, "simulation still active at limit {limit}");
            self.run_until(t);
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    fn record_rx(&self, node: NodeId, port: Port, pkt: &Packet) {
        if let Some(taps) = self.rx_taps.get(&node) {
            for t in taps {
                t.borrow_mut().push(TraceRecord {
                    time: self.now,
                    node,
                    port,
                    dir: Dir::Rx,
                    pkt: pkt.clone(),
                });
            }
        }
    }

    fn record_tx(&self, node: NodeId, port: Port, pkt: &Packet) {
        if let Some(taps) = self.tx_taps.get(&node) {
            for t in taps {
                t.borrow_mut().push(TraceRecord {
                    time: self.now,
                    node,
                    port,
                    dir: Dir::Tx,
                    pkt: pkt.clone(),
                });
            }
        }
    }

    fn do_transmit(&mut self, node: NodeId, port: Port, pkt: Packet) {
        let Some(end) = self.links.get_mut(&(node, port)) else {
            panic!(
                "node {} ({node:?}) transmitted on unwired port {port:?}",
                self.names[node.0]
            );
        };
        match end.state.offer(self.now, pkt.wire_len()) {
            Offer::Arrives(at) => {
                let (peer, peer_port) = end.peer;
                self.push(
                    at,
                    EventKind::Deliver {
                        node: peer,
                        port: peer_port,
                        pkt,
                    },
                );
            }
            Offer::Dropped => {
                self.link_drops += 1;
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        let node = match &kind {
            EventKind::Deliver { node, .. } | EventKind::Timer { node, .. } => *node,
        };
        let mut dev = self.nodes[node.0].take().unwrap_or_else(|| {
            panic!("re-entrant dispatch on node {}", self.names[node.0]);
        });
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                actions: &mut actions,
            };
            match kind {
                EventKind::Deliver { port, pkt, .. } => {
                    self.record_rx(node, port, &pkt);
                    dev.on_packet(&mut ctx, port, pkt);
                }
                EventKind::Timer { token, .. } => dev.on_timer(&mut ctx, token),
            }
        }
        self.nodes[node.0] = Some(dev);
        for act in actions.drain(..) {
            match act {
                Action::Transmit { port, pkt } => {
                    self.record_tx(node, port, &pkt);
                    self.do_transmit(node, port, pkt);
                }
                Action::SetTimer { delay, token } => {
                    let time = self.now + delay;
                    self.push(time, EventKind::Timer { node, token });
                }
            }
        }
        self.scratch = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};

    /// Echoes every packet back out the port it arrived on, with src/dst
    /// swapped.
    struct Echo;
    impl Device for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
            let mut reply = pkt.clone();
            std::mem::swap(&mut reply.ip.src, &mut reply.ip.dst);
            ctx.transmit(port, reply);
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    /// Collects deliveries.
    struct Sink(Rc<RefCell<Vec<(SimTime, Packet)>>>);
    impl Device for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: Port, pkt: Packet) {
            self.0.borrow_mut().push((ctx.now(), pkt));
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    /// Emits `n` timers spaced 1 µs apart and records fire order.
    struct TimerBox(Rc<RefCell<Vec<u64>>>);
    impl Device for TimerBox {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: Port, _: Packet) {}
        fn on_timer(&mut self, _: &mut Ctx<'_>, token: u64) {
            self.0.borrow_mut().push(token);
        }
    }

    fn probe(n: u16) -> Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(10, 0, 0, 1), 1000)
            .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
            .seq(u32::from(n))
            .flags(TcpFlags::ACK)
            .ipid(n)
            .build()
    }

    #[test]
    fn echo_roundtrip_timing() {
        let mut sim = Simulator::new(0);
        let rx = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_node(Box::new(Sink(rx.clone())));
        let echo = sim.add_node(Box::new(Echo));
        // 8 Mbit/s = 1 byte/us; 100 us propagation.
        let params = LinkParams {
            bits_per_sec: 8_000_000,
            propagation: Duration::from_micros(100),
            queue_limit: None,
        };
        sim.connect(sink, Port(0), echo, Port(0), params);
        let pkt = probe(1); // 40 bytes
        sim.transmit_from(sink, Port(0), pkt);
        sim.run_until_idle(SimTime::from_secs(1));
        let got = rx.borrow();
        assert_eq!(got.len(), 1);
        // 40us ser + 100us prop each way = 280us total.
        assert_eq!(got[0].0, SimTime::from_micros(280));
        assert_eq!(got[0].1.ip.src, Ipv4Addr4::new(10, 0, 0, 2));
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let mut sim = Simulator::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let tb = sim.add_node(Box::new(TimerBox(order.clone())));
        for token in 0..10 {
            sim.schedule_timer(tb, Duration::from_micros(5), token);
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let tb = sim.add_node(Box::new(TimerBox(order.clone())));
        sim.schedule_timer(tb, Duration::from_micros(10), 1);
        sim.schedule_timer(tb, Duration::from_micros(30), 2);
        sim.run_until(SimTime::from_micros(20));
        assert_eq!(*order.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        sim.run_until(SimTime::from_micros(40));
        assert_eq!(*order.borrow(), vec![1, 2]);
    }

    #[test]
    fn taps_record_both_directions() {
        let mut sim = Simulator::new(0);
        let rxbuf = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_node(Box::new(Sink(rxbuf)));
        let echo = sim.add_node(Box::new(Echo));
        sim.connect(sink, Port(0), echo, Port(0), LinkParams::lan());
        let echo_rx = sim.tap_rx(echo);
        let echo_tx = sim.tap_tx(echo);
        sim.transmit_from(sink, Port(0), probe(7));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(echo_rx.borrow().len(), 1);
        assert_eq!(echo_tx.borrow().len(), 1);
        assert_eq!(echo_rx.borrow()[0].dir, Dir::Rx);
        assert_eq!(echo_tx.borrow()[0].dir, Dir::Tx);
        assert!(echo_tx.borrow()[0].time >= echo_rx.borrow()[0].time);
    }

    #[test]
    #[should_panic(expected = "unwired port")]
    fn transmit_on_unwired_port_panics() {
        let mut sim = Simulator::new(0);
        let n = sim.add_node(Box::new(Echo));
        sim.transmit_from(n, Port(3), probe(1));
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node(Box::new(Echo));
        let b = sim.add_node(Box::new(Echo));
        let c = sim.add_node(Box::new(Echo));
        sim.connect(a, Port(0), b, Port(0), LinkParams::lan());
        sim.connect(a, Port(0), c, Port(0), LinkParams::lan());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run() -> Vec<(SimTime, u16)> {
            let mut sim = Simulator::new(99);
            let rx = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.add_node(Box::new(Sink(rx.clone())));
            let echo = sim.add_node(Box::new(Echo));
            sim.connect(sink, Port(0), echo, Port(0), LinkParams::wan());
            for i in 0..20 {
                sim.transmit_from(sink, Port(0), probe(i));
            }
            sim.run_until_idle(SimTime::from_secs(5));
            let trace: Vec<(SimTime, u16)> = rx
                .borrow()
                .iter()
                .map(|(t, p)| (*t, p.ip.ident.raw()))
                .collect();
            trace
        }
        assert_eq!(run(), run());
    }
}
