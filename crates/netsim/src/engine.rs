//! The discrete-event engine: nodes, ports, links, timers, taps.
//!
//! Determinism is a hard requirement — every experiment in the paper is
//! reproduced from a seed — so the event queue breaks time ties by
//! insertion order, devices draw randomness only from labeled streams
//! (see [`crate::rng`]), and nothing reads the host clock.

use crate::calendar::CalendarQueue;
use crate::capture::{Dir, TraceHandle, TraceRecord};
use crate::link::{LinkParams, LinkState, Offer};
use crate::time::SimTime;
use reorder_wire::Packet;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Identifies a node (device) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A port index local to a node. Devices define their own port
/// conventions (e.g. a pipe forwards port 0 ↔ port 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub usize);

/// The behavior of a simulated node.
///
/// Devices are purely reactive: they are invoked for packet deliveries
/// and timer expirations, and respond by calling methods on [`Ctx`].
pub trait Device {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Diagnostic name.
    fn name(&self) -> &str {
        "device"
    }
}

/// What a device may do while handling an event.
#[derive(Debug)]
enum Action {
    Transmit { port: Port, pkt: Packet },
    SetTimer { delay: Duration, token: u64 },
}

/// Execution context handed to a device during event handling.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action>,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node being invoked (useful for diagnostics).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue a packet for transmission out of `port`. Serialization and
    /// propagation delays of the attached link apply; transmissions
    /// issued within one event handler keep their issue order.
    pub fn transmit(&mut self, port: Port, pkt: Packet) {
        self.actions.push(Action::Transmit { port, pkt });
    }

    /// Arrange for [`Device::on_timer`] to be called `delay` from now
    /// with `token`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        node: NodeId,
        port: Port,
        pkt: Packet,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
}

/// The simulator: owns every device, link and pending event.
///
/// Hot-path layout: events live in a calendar queue (the private
/// `calendar` module); links and taps are dense per-node tables
/// indexed by `NodeId`/`Port`, so the per-event path does no hashing.
/// [`Simulator::reset`] recycles every allocation for the next run —
/// the pooling fast path campaign workers ride.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    master_seed: u64,
    nodes: Vec<Option<Box<dyn Device>>>,
    names: Vec<String>,
    /// `links[node][port]` — dense, grown by `connect_asym`.
    links: Vec<Vec<Option<LinkEndpoint>>>,
    queue: CalendarQueue<EventKind>,
    /// `rx_taps[node]` / `tx_taps[node]` — dense, grown by `add_node`.
    rx_taps: Vec<Vec<TraceHandle>>,
    tx_taps: Vec<Vec<TraceHandle>>,
    scratch: Vec<Action>,
    events: u64,
    /// Count of packets dropped by full link queues (all links).
    pub link_drops: u64,
}

struct LinkEndpoint {
    peer: (NodeId, Port),
    state: LinkState,
}

impl Simulator {
    /// Create a simulator whose stochastic devices will derive their
    /// random streams from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            master_seed,
            nodes: Vec::new(),
            names: Vec::new(),
            links: Vec::new(),
            queue: CalendarQueue::new(),
            rx_taps: Vec::new(),
            tx_taps: Vec::new(),
            scratch: Vec::new(),
            events: 0,
            link_drops: 0,
        }
    }

    /// Return the simulator to the just-constructed state under a new
    /// master seed, retaining every allocation (event-queue buckets,
    /// node/link/tap tables, scratch). A reset simulator is
    /// indistinguishable from `Simulator::new(seed)` to everything
    /// built on it — the pooled-construction determinism tests assert
    /// byte-identical campaign output — but skips the allocator.
    pub fn reset(&mut self, master_seed: u64) {
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.master_seed = master_seed;
        self.nodes.clear();
        self.names.clear();
        self.links.clear();
        self.queue.clear();
        self.rx_taps.clear();
        self.tx_taps.clear();
        self.events = 0;
        self.link_drops = 0;
    }

    /// Events dispatched since construction (or the last
    /// [`Simulator::reset`]) — the denominator of events/sec in the
    /// perf harness.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Events currently queued (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Event pushes that missed the calendar queue's wheel window and
    /// fell back to the ordered overflow heap, since construction (or
    /// the last [`Simulator::reset`]). A telemetry counter: overflow
    /// pushes cost a heap insert instead of an O(1) bucket append, so
    /// a high ratio against [`Simulator::events_processed`] means the
    /// wheel width no longer matches the workload's event horizon.
    pub fn overflow_events(&self) -> u64 {
        self.queue.overflow_pushes()
    }

    /// The master seed (devices use it with [`crate::rng::stream`]).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a device; returns its id.
    pub fn add_node(&mut self, device: Box<dyn Device>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.names.push(device.name().to_string());
        self.nodes.push(Some(device));
        self.links.push(Vec::new());
        self.rx_taps.push(Vec::new());
        self.tx_taps.push(Vec::new());
        id
    }

    /// Diagnostic name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Connect `a`'s port `pa` to `b`'s port `pb` with symmetric link
    /// parameters. Panics if either port is already wired.
    pub fn connect(&mut self, a: NodeId, pa: Port, b: NodeId, pb: Port, params: LinkParams) {
        self.connect_asym(a, pa, b, pb, params, params);
    }

    /// Connect with distinct parameters per direction (`ab` applies to
    /// packets from `a` to `b`).
    pub fn connect_asym(
        &mut self,
        a: NodeId,
        pa: Port,
        b: NodeId,
        pb: Port,
        ab: LinkParams,
        ba: LinkParams,
    ) {
        self.wire(a, pa, b, pb, ab);
        self.wire(b, pb, a, pa, ba);
    }

    fn wire(&mut self, from: NodeId, port: Port, to: NodeId, to_port: Port, params: LinkParams) {
        let ports = &mut self.links[from.0];
        if ports.len() <= port.0 {
            ports.resize_with(port.0 + 1, || None);
        }
        assert!(
            ports[port.0].is_none(),
            "port {port:?} of node {from:?} already wired"
        );
        ports[port.0] = Some(LinkEndpoint {
            peer: (to, to_port),
            state: LinkState::new(params),
        });
    }

    /// Record every packet *delivered to* `node` (any port) into the
    /// returned trace. This is the receive-order ground truth of §IV-A.
    pub fn tap_rx(&mut self, node: NodeId) -> TraceHandle {
        let h: TraceHandle = Rc::new(RefCell::new(Vec::new()));
        self.rx_taps[node.0].push(h.clone());
        h
    }

    /// Record every packet *transmitted by* `node` (any port), stamped
    /// with the time the transmission was issued. This is the send-order
    /// ground truth used to validate reverse-path inferences.
    pub fn tap_tx(&mut self, node: NodeId) -> TraceHandle {
        let h: TraceHandle = Rc::new(RefCell::new(Vec::new()));
        self.tx_taps[node.0].push(h.clone());
        h
    }

    /// Inject a packet as if `node` had transmitted it out of `port` at
    /// the current time. Used by external agents (the prober) that drive
    /// the simulation from outside the event loop.
    pub fn transmit_from(&mut self, node: NodeId, port: Port, pkt: Packet) {
        self.record_tx(node, port, &pkt);
        self.do_transmit(node, port, pkt);
    }

    /// Schedule a timer for `node` (external-agent counterpart of
    /// [`Ctx::set_timer`]).
    pub fn schedule_timer(&mut self, node: NodeId, delay: Duration, token: u64) {
        let time = self.now + delay;
        self.push(time, EventKind::Timer { node, token });
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|(t, _)| t)
    }

    /// Run until the queue is empty or the next event lies beyond
    /// `horizon`; the clock then advances to `horizon` (so repeated calls
    /// make steady progress even with no traffic).
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some((t, _)) = self.queue.peek_key() {
            if t > horizon {
                break;
            }
            let (time, _, kind) = self.queue.pop().expect("peeked");
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.dispatch(kind);
        }
        if horizon > self.now && horizon != SimTime::MAX {
            self.now = horizon;
        }
    }

    /// Run for `d` from the current time.
    pub fn run_for(&mut self, d: Duration) {
        let horizon = self.now + d;
        self.run_until(horizon);
    }

    /// Run until no events remain (the network is quiet). `limit` bounds
    /// runaway simulations; panics if exceeded, since that indicates a
    /// device generating unbounded traffic.
    pub fn run_until_idle(&mut self, limit: SimTime) {
        while let Some(t) = self.next_event_time() {
            assert!(t <= limit, "simulation still active at limit {limit}");
            self.run_until(t);
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(self.now, time, seq, kind);
    }

    fn record_rx(&self, node: NodeId, port: Port, pkt: &Packet) {
        for t in &self.rx_taps[node.0] {
            t.borrow_mut().push(TraceRecord {
                time: self.now,
                node,
                port,
                dir: Dir::Rx,
                pkt: pkt.clone(),
            });
        }
    }

    fn record_tx(&self, node: NodeId, port: Port, pkt: &Packet) {
        for t in &self.tx_taps[node.0] {
            t.borrow_mut().push(TraceRecord {
                time: self.now,
                node,
                port,
                dir: Dir::Tx,
                pkt: pkt.clone(),
            });
        }
    }

    fn do_transmit(&mut self, node: NodeId, port: Port, pkt: Packet) {
        let Some(end) = self.links[node.0].get_mut(port.0).and_then(Option::as_mut) else {
            panic!(
                "node {} ({node:?}) transmitted on unwired port {port:?}",
                self.names[node.0]
            );
        };
        match end.state.offer(self.now, pkt.wire_len()) {
            Offer::Arrives(at) => {
                let (peer, peer_port) = end.peer;
                self.push(
                    at,
                    EventKind::Deliver {
                        node: peer,
                        port: peer_port,
                        pkt,
                    },
                );
            }
            Offer::Dropped => {
                self.link_drops += 1;
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.events += 1;
        let node = match &kind {
            EventKind::Deliver { node, .. } | EventKind::Timer { node, .. } => *node,
        };
        let mut dev = self.nodes[node.0].take().unwrap_or_else(|| {
            panic!("re-entrant dispatch on node {}", self.names[node.0]);
        });
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                actions: &mut actions,
            };
            match kind {
                EventKind::Deliver { port, pkt, .. } => {
                    self.record_rx(node, port, &pkt);
                    dev.on_packet(&mut ctx, port, pkt);
                }
                EventKind::Timer { token, .. } => dev.on_timer(&mut ctx, token),
            }
        }
        self.nodes[node.0] = Some(dev);
        for act in actions.drain(..) {
            match act {
                Action::Transmit { port, pkt } => {
                    self.record_tx(node, port, &pkt);
                    self.do_transmit(node, port, pkt);
                }
                Action::SetTimer { delay, token } => {
                    let time = self.now + delay;
                    self.push(time, EventKind::Timer { node, token });
                }
            }
        }
        self.scratch = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_wire::{Ipv4Addr4, PacketBuilder, TcpFlags};

    /// Echoes every packet back out the port it arrived on, with src/dst
    /// swapped.
    struct Echo;
    impl Device for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
            let mut reply = pkt.clone();
            std::mem::swap(&mut reply.ip.src, &mut reply.ip.dst);
            ctx.transmit(port, reply);
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    /// Collects deliveries.
    struct Sink(Rc<RefCell<Vec<(SimTime, Packet)>>>);
    impl Device for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: Port, pkt: Packet) {
            self.0.borrow_mut().push((ctx.now(), pkt));
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    /// Emits `n` timers spaced 1 µs apart and records fire order.
    struct TimerBox(Rc<RefCell<Vec<u64>>>);
    impl Device for TimerBox {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: Port, _: Packet) {}
        fn on_timer(&mut self, _: &mut Ctx<'_>, token: u64) {
            self.0.borrow_mut().push(token);
        }
    }

    fn probe(n: u16) -> Packet {
        PacketBuilder::tcp()
            .src(Ipv4Addr4::new(10, 0, 0, 1), 1000)
            .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
            .seq(u32::from(n))
            .flags(TcpFlags::ACK)
            .ipid(n)
            .build()
    }

    #[test]
    fn echo_roundtrip_timing() {
        let mut sim = Simulator::new(0);
        let rx = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_node(Box::new(Sink(rx.clone())));
        let echo = sim.add_node(Box::new(Echo));
        // 8 Mbit/s = 1 byte/us; 100 us propagation.
        let params = LinkParams {
            bits_per_sec: 8_000_000,
            propagation: Duration::from_micros(100),
            queue_limit: None,
        };
        sim.connect(sink, Port(0), echo, Port(0), params);
        let pkt = probe(1); // 40 bytes
        sim.transmit_from(sink, Port(0), pkt);
        sim.run_until_idle(SimTime::from_secs(1));
        let got = rx.borrow();
        assert_eq!(got.len(), 1);
        // 40us ser + 100us prop each way = 280us total.
        assert_eq!(got[0].0, SimTime::from_micros(280));
        assert_eq!(got[0].1.ip.src, Ipv4Addr4::new(10, 0, 0, 2));
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let mut sim = Simulator::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let tb = sim.add_node(Box::new(TimerBox(order.clone())));
        for token in 0..10 {
            sim.schedule_timer(tb, Duration::from_micros(5), token);
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let tb = sim.add_node(Box::new(TimerBox(order.clone())));
        sim.schedule_timer(tb, Duration::from_micros(10), 1);
        sim.schedule_timer(tb, Duration::from_micros(30), 2);
        sim.run_until(SimTime::from_micros(20));
        assert_eq!(*order.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        sim.run_until(SimTime::from_micros(40));
        assert_eq!(*order.borrow(), vec![1, 2]);
    }

    #[test]
    fn taps_record_both_directions() {
        let mut sim = Simulator::new(0);
        let rxbuf = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_node(Box::new(Sink(rxbuf)));
        let echo = sim.add_node(Box::new(Echo));
        sim.connect(sink, Port(0), echo, Port(0), LinkParams::lan());
        let echo_rx = sim.tap_rx(echo);
        let echo_tx = sim.tap_tx(echo);
        sim.transmit_from(sink, Port(0), probe(7));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(echo_rx.borrow().len(), 1);
        assert_eq!(echo_tx.borrow().len(), 1);
        assert_eq!(echo_rx.borrow()[0].dir, Dir::Rx);
        assert_eq!(echo_tx.borrow()[0].dir, Dir::Tx);
        assert!(echo_tx.borrow()[0].time >= echo_rx.borrow()[0].time);
    }

    #[test]
    #[should_panic(expected = "unwired port")]
    fn transmit_on_unwired_port_panics() {
        let mut sim = Simulator::new(0);
        let n = sim.add_node(Box::new(Echo));
        sim.transmit_from(n, Port(3), probe(1));
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node(Box::new(Echo));
        let b = sim.add_node(Box::new(Echo));
        let c = sim.add_node(Box::new(Echo));
        sim.connect(a, Port(0), b, Port(0), LinkParams::lan());
        sim.connect(a, Port(0), c, Port(0), LinkParams::lan());
    }

    #[test]
    fn reset_sim_is_indistinguishable_from_fresh() {
        // The pooling contract: building the same scenario on a reset
        // simulator yields the exact event stream of a fresh one.
        fn drive(sim: &mut Simulator) -> Vec<(SimTime, u16)> {
            let rx = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.add_node(Box::new(Sink(rx.clone())));
            let echo = sim.add_node(Box::new(Echo));
            sim.connect(sink, Port(0), echo, Port(0), LinkParams::wan());
            let h = sim.tap_rx(echo);
            for i in 0..30 {
                sim.transmit_from(sink, Port(0), probe(i));
            }
            sim.run_until_idle(SimTime::from_secs(5));
            assert_eq!(h.borrow().len(), 30);
            let trace = rx
                .borrow()
                .iter()
                .map(|(t, p)| (*t, p.ip.ident.raw()))
                .collect();
            trace
        }
        let mut fresh = Simulator::new(123);
        let fresh_trace = drive(&mut fresh);
        let fresh_events = fresh.events_processed();

        // Dirty a simulator with an unrelated run (leftover events
        // still queued), then reset and rebuild.
        let mut pooled = Simulator::new(7);
        {
            let rx = Rc::new(RefCell::new(Vec::new()));
            let sink = pooled.add_node(Box::new(Sink(rx)));
            let echo = pooled.add_node(Box::new(Echo));
            pooled.connect(sink, Port(0), echo, Port(0), LinkParams::lan());
            pooled.transmit_from(sink, Port(0), probe(9));
            pooled.run_for(Duration::from_micros(10)); // leave events pending
        }
        pooled.reset(123);
        assert_eq!(pooled.now(), SimTime::ZERO);
        assert_eq!(pooled.events_processed(), 0);
        assert_eq!(pooled.master_seed(), 123);
        let pooled_trace = drive(&mut pooled);
        assert_eq!(pooled_trace, fresh_trace);
        assert_eq!(pooled.events_processed(), fresh_events);
    }

    #[test]
    fn events_processed_counts_dispatches() {
        let mut sim = Simulator::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        let tb = sim.add_node(Box::new(TimerBox(order)));
        for token in 0..7 {
            sim.schedule_timer(tb, Duration::from_micros(token), token);
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.events_processed(), 7);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run() -> Vec<(SimTime, u16)> {
            let mut sim = Simulator::new(99);
            let rx = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.add_node(Box::new(Sink(rx.clone())));
            let echo = sim.add_node(Box::new(Echo));
            sim.connect(sink, Port(0), echo, Port(0), LinkParams::wan());
            for i in 0..20 {
                sim.transmit_from(sink, Port(0), probe(i));
            }
            sim.run_until_idle(SimTime::from_secs(5));
            let trace: Vec<(SimTime, u16)> = rx
                .borrow()
                .iter()
                .map(|(t, p)| (*t, p.ip.ident.raw()))
                .collect();
            trace
        }
        assert_eq!(run(), run());
    }
}
